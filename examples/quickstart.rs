//! Quickstart: lock a circuit, attack it, verify the recovered key.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use polykey::attack::{verify_key, AttackSession, SimOracle};
use polykey::circuits::c17;
use polykey::locking::{LockScheme, Rll};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The victim design: ISCAS'85 c17 (5 inputs, 2 outputs, 6 NANDs).
    let original = c17();
    println!("original design : {original}");

    // 2. The designer locks it: 4 random XOR/XNOR key gates.
    let mut rng = rand::rngs::StdRng::seed_from_u64(2024);
    let locked = Rll::new(4).with_seed(2024).lock_random(&original, &mut rng)?;
    println!("locked design   : {}", locked.netlist);
    println!("correct key     : {}", locked.key);

    // 3. The attacker has the locked netlist + a working chip (the oracle).
    let mut oracle = SimOracle::new(&original)?;
    let report = AttackSession::builder().oracle(&mut oracle).build()?.run(&locked.netlist)?;
    let stats = report.stats();
    let key = report.key().expect("attack succeeds on RLL");
    println!(
        "attack          : {} DIPs, {} oracle queries, {:?}",
        stats.dips, stats.oracle_queries, stats.wall_time
    );
    println!("recovered key   : {key}");

    // 4. Formal verification: the recovered key unlocks the design.
    //    (It may differ from the designer's key bit-for-bit and still be
    //    functionally correct — that is the point of the paper.)
    assert!(verify_key(&original, &locked.netlist, key)?);
    println!("verification    : recovered key is functionally correct [ok]");
    Ok(())
}
