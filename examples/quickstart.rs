//! Quickstart: lock a circuit, attack it, verify the recovered key.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use polykey::attack::{sat_attack, verify_key, SatAttackConfig, SimOracle};
use polykey::circuits::c17;
use polykey::locking::lock_rll;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The victim design: ISCAS'85 c17 (5 inputs, 2 outputs, 6 NANDs).
    let original = c17();
    println!("original design : {original}");

    // 2. The designer locks it: 4 random XOR/XNOR key gates.
    let mut rng = rand::rngs::StdRng::seed_from_u64(2024);
    let locked = lock_rll(&original, 4, &mut rng)?;
    println!("locked design   : {}", locked.netlist);
    println!("correct key     : {}", locked.key);

    // 3. The attacker has the locked netlist + a working chip (the oracle).
    let mut oracle = SimOracle::new(&original)?;
    let outcome = sat_attack(&locked.netlist, &mut oracle, &SatAttackConfig::new())?;
    let key = outcome.key.as_ref().expect("attack succeeds on RLL");
    println!(
        "attack          : {} DIPs, {} oracle queries, {:?}",
        outcome.stats.dips, outcome.stats.oracle_queries, outcome.stats.wall_time
    );
    println!("recovered key   : {key}");

    // 4. Formal verification: the recovered key unlocks the design.
    //    (It may differ from the designer's key bit-for-bit and still be
    //    functionally correct — that is the point of the paper.)
    assert!(verify_key(&original, &locked.netlist, key)?);
    println!("verification    : recovered key is functionally correct [ok]");
    Ok(())
}
