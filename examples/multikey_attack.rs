//! The paper's full pipeline on a SAT-attack-resistant scheme:
//! SARLock-locked c432, multi-key attack (Algorithm 1) with live progress
//! events, MUX recombination (Fig. 1b), and formal equivalence of the
//! recombined design.
//!
//! ```text
//! cargo run --release --example multikey_attack
//! ```

use polykey::attack::{
    verify_key, verify_key_on_subspace, AttackSession, ProgressEvent, SimOracle,
};
use polykey::circuits::Iscas85;
use polykey::encode::{check_equivalence, EquivResult};
use polykey::locking::{Key, LockScheme, Sarlock};
use polykey::netlist::simplify;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let original = Iscas85::C432.build();
    println!("victim design: {original}");

    // SARLock with an 8-bit key: the classic SAT attack needs ~2^8 DIPs.
    let key_width = 8;
    let correct = Key::from_u64(0b1011_0010, key_width);
    let locked = Sarlock::new(key_width).lock(&original, &correct)?;
    println!("locked with SARLock |K| = {key_width}, correct key {correct}");

    // Baseline for comparison: the conventional one-key SAT attack.
    let mut oracle = SimOracle::new(&original)?;
    let baseline =
        AttackSession::builder().oracle(&mut oracle).build()?.run(&locked.netlist)?;
    let baseline_stats = baseline.stats();
    println!(
        "\nbaseline SAT attack : {} DIPs in {:?}",
        baseline_stats.dips, baseline_stats.wall_time
    );

    // Algorithm 1 with N = 3: eight parallel sub-attacks, each on a
    // cofactored + re-synthesized netlist, streaming progress events.
    // `dip_batch(64)` makes every sub-attack harvest up to 64 DIPs per
    // epoch and answer them in one packed oracle pass.
    let mut oracle = SimOracle::new(&original)?;
    let report = AttackSession::builder()
        .oracle(&mut oracle)
        .split_effort(3)
        .dip_batch(64)
        .on_progress(|event| {
            if let ProgressEvent::TermFinished { pattern, dips, wall_time, .. } = event {
                eprintln!("  [progress] term {pattern:03b} done: {dips} DIPs in {wall_time:?}");
            }
        })
        .build()?
        .run(&locked.netlist)?;
    assert!(report.is_complete());
    let outcome = report.as_multi_key().expect("N > 0");
    println!("\nmulti-key attack (N = 3, {} terms):", outcome.reports.len());
    let split_names: Vec<&str> =
        report.split_inputs().iter().map(|&id| locked.netlist.node_name(id)).collect();
    println!("  split ports (fan-out cone analysis): {split_names:?}");
    for term in &outcome.reports {
        println!(
            "  term {:03b}: {} DIPs, {} gates (from {}), {:?}",
            term.pattern, term.dips, term.gates_after, term.gates_before, term.wall_time
        );
    }
    println!(
        "  max term time {:?} vs baseline {:?}",
        report.stats().max_subtask_time(),
        baseline_stats.wall_time
    );
    println!(
        "  oracle traffic: {} DIPs answered in {} round-trips (baseline: {} in {})",
        report.stats().oracle_queries,
        report.stats().oracle_rounds,
        baseline_stats.oracle_queries,
        baseline_stats.oracle_rounds
    );

    // Most sub-keys are globally *incorrect* — but each unlocks its
    // sub-space. Verify both facts formally.
    let positions: Vec<usize> = report
        .split_inputs()
        .iter()
        .map(|id| locked.netlist.inputs().iter().position(|p| p == id).expect("input"))
        .collect();
    let mut globally_wrong = 0;
    for sub in report.sub_keys() {
        let forced: Vec<(usize, bool)> = positions
            .iter()
            .enumerate()
            .map(|(j, &pos)| (pos, sub.pattern >> j & 1 == 1))
            .collect();
        assert!(
            verify_key_on_subspace(&original, &locked.netlist, &sub.key, &forced)?,
            "every sub-key must unlock its own sub-space"
        );
        if !verify_key(&original, &locked.netlist, &sub.key)? {
            globally_wrong += 1;
        }
    }
    println!(
        "\nsub-keys: {} of {} are globally incorrect, yet all unlock their sub-space",
        globally_wrong,
        report.sub_keys().len()
    );

    // Fig. 1(b): recombine with a MUX tree and prove global equivalence.
    let recombined = report.recombine(&locked.netlist)?;
    let (recombined, stats) = simplify(&recombined)?;
    println!(
        "\nrecombined keyless design: {} gates (after re-synthesis, was {})",
        stats.gates_after, stats.gates_before
    );
    assert_eq!(check_equivalence(&original, &recombined)?, EquivResult::Equivalent);
    println!("formal check: recombined design ≡ original   [the one-key premise is broken]");

    // Adaptive splitting: instead of fixing N, give every term a DIP
    // budget. A term that exhausts it is subdivided one port at a time
    // into a prefix tree, so the splitting effort lands exactly where the
    // hardness is (for SARLock on its comparator ports: uniformly, until
    // each leaf fits its budget).
    let mut oracle = SimOracle::new(&original)?;
    let adaptive = AttackSession::builder()
        .oracle(&mut oracle)
        .split_effort(1)
        .term_dip_budget(24)
        .dip_batch(64)
        .build()?
        .run(&locked.netlist)?;
    assert!(adaptive.is_complete());
    let tree = adaptive.as_multi_key().expect("N > 0");
    println!(
        "\nadaptive attack (root N = 1, budget 24 DIPs/term): {} leaves at depth {}, \
         {} resplits, max leaf {} DIPs",
        tree.reports.len(),
        tree.max_depth(),
        tree.resplit_reports.len(),
        tree.reports.iter().map(|r| r.dips).max().unwrap_or(0)
    );
    let recombined_tree = adaptive.recombine(&locked.netlist)?;
    assert_eq!(check_equivalence(&original, &recombined_tree)?, EquivResult::Equivalent);
    println!("formal check: the adaptive prefix tree recombines to the original, too");
    Ok(())
}
