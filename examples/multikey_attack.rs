//! The paper's full pipeline on a SAT-attack-resistant scheme:
//! SARLock-locked c432, multi-key attack (Algorithm 1), MUX recombination
//! (Fig. 1b), and formal equivalence of the recombined design.
//!
//! ```text
//! cargo run --release --example multikey_attack
//! ```

use polykey::attack::{
    multi_key_attack, recombine_multikey, sat_attack, verify_key, verify_key_on_subspace,
    MultiKeyConfig, SatAttackConfig, SimOracle,
};
use polykey::circuits::Iscas85;
use polykey::encode::{check_equivalence, EquivResult};
use polykey::locking::{lock_sarlock_with_key, Key, SarlockConfig};
use polykey::netlist::simplify;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let original = Iscas85::C432.build();
    println!("victim design: {original}");

    // SARLock with an 8-bit key: the classic SAT attack needs ~2^8 DIPs.
    let key_width = 8;
    let correct = Key::from_u64(0b1011_0010, key_width);
    let locked =
        lock_sarlock_with_key(&original, &SarlockConfig::new(key_width), &correct)?;
    println!("locked with SARLock |K| = {key_width}, correct key {correct}");

    // Baseline for comparison: the conventional one-key SAT attack.
    let mut oracle = SimOracle::new(&original)?;
    let baseline = sat_attack(&locked.netlist, &mut oracle, &SatAttackConfig::new())?;
    println!(
        "\nbaseline SAT attack : {} DIPs in {:?}",
        baseline.stats.dips, baseline.stats.wall_time
    );

    // Algorithm 1 with N = 3: eight parallel sub-attacks, each on a
    // cofactored + re-synthesized netlist.
    let config = MultiKeyConfig::with_split_effort(3);
    let outcome = multi_key_attack(&locked.netlist, &original, &config)?;
    assert!(outcome.is_complete());
    println!("\nmulti-key attack (N = 3, {} terms):", outcome.reports.len());
    let split_names: Vec<&str> = outcome
        .split_inputs
        .iter()
        .map(|&id| locked.netlist.node_name(id))
        .collect();
    println!("  split ports (fan-out cone analysis): {split_names:?}");
    for report in &outcome.reports {
        println!(
            "  term {:03b}: {} DIPs, {} gates (from {}), {:?}",
            report.pattern, report.dips, report.gates_after, report.gates_before,
            report.wall_time
        );
    }
    println!(
        "  max term time {:?} vs baseline {:?}",
        outcome.max_task_time(),
        baseline.stats.wall_time
    );

    // Most sub-keys are globally *incorrect* — but each unlocks its
    // sub-space. Verify both facts formally.
    let positions: Vec<usize> = outcome
        .split_inputs
        .iter()
        .map(|id| locked.netlist.inputs().iter().position(|p| p == id).expect("input"))
        .collect();
    let mut globally_wrong = 0;
    for sub in &outcome.keys {
        let forced: Vec<(usize, bool)> = positions
            .iter()
            .enumerate()
            .map(|(j, &pos)| (pos, sub.pattern >> j & 1 == 1))
            .collect();
        assert!(
            verify_key_on_subspace(&original, &locked.netlist, &sub.key, &forced)?,
            "every sub-key must unlock its own sub-space"
        );
        if !verify_key(&original, &locked.netlist, &sub.key)? {
            globally_wrong += 1;
        }
    }
    println!(
        "\nsub-keys: {} of {} are globally incorrect, yet all unlock their sub-space",
        globally_wrong,
        outcome.keys.len()
    );

    // Fig. 1(b): recombine with a MUX tree and prove global equivalence.
    let recombined = recombine_multikey(&locked.netlist, &outcome.split_inputs, &outcome.keys)?;
    let (recombined, stats) = simplify(&recombined)?;
    println!(
        "\nrecombined keyless design: {} gates (after re-synthesis, was {})",
        stats.gates_after, stats.gates_before
    );
    assert_eq!(check_equivalence(&original, &recombined)?, EquivResult::Equivalent);
    println!("formal check: recombined design ≡ original   [the one-key premise is broken]");
    Ok(())
}
