//! Working with ISCAS `.bench` files: parse, analyze, lock, re-synthesize
//! and write back. Drop in real ISCAS'85 files to run the attacks on the
//! original benchmarks instead of the bundled stand-ins.
//!
//! ```text
//! cargo run --release --example bench_io            # uses built-in c17
//! cargo run --release --example bench_io -- my.bench
//! ```

use std::io::BufReader;

use polykey::circuits::c17;
use polykey::locking::{Key, LockScheme, Sarlock};
use polykey::netlist::analysis::NetlistStats;
use polykey::netlist::{parse_bench, simplify, write_bench, Netlist};
use rand::SeedableRng as _;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Load a netlist: from a file if given, else the built-in c17.
    let netlist: Netlist = match std::env::args().nth(1) {
        Some(path) => {
            let file = std::fs::File::open(&path)?;
            let name = path.trim_end_matches(".bench").to_string();
            parse_bench(BufReader::new(file), &name)?
        }
        None => c17(),
    };
    println!("parsed: {netlist}");
    println!("stats : {}", NetlistStats::of(&netlist)?);

    // Lock it (deterministically) and show the locked stats.
    let kw = netlist.inputs().len().min(4);
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let key = Key::random(kw, &mut rng);
    let locked = Sarlock::new(kw).lock(&netlist, &key)?;
    println!("locked: {}", locked.netlist);

    // Round-trip the locked design through the .bench format.
    let mut text = Vec::new();
    write_bench(&mut text, &locked.netlist)?;
    println!("\n--- locked design in .bench format ---");
    print!("{}", String::from_utf8_lossy(&text));
    let reparsed = parse_bench(&text[..], locked.netlist.name())?;
    assert_eq!(reparsed.key_inputs().len(), kw);

    // Re-synthesis demo: simplification is a no-op on an already-tight
    // netlist but sweeps redundancy from generated ones.
    let (simplified, stats) = simplify(&reparsed)?;
    println!("--- after re-synthesis: {} (was {} gates) ---", simplified, stats.gates_before);
    Ok(())
}
