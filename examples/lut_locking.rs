//! LUT-based insertion (the Table 2 workload): lock a real arithmetic
//! circuit with a two-stage LUT module, then compare the baseline SAT
//! attack against the parallel multi-key attack.
//!
//! ```text
//! cargo run --release --example lut_locking
//! ```

use polykey::attack::{AttackSession, SimOracle};
use polykey::circuits::arith::multiplier;
use polykey::encode::{check_equivalence, EquivResult};
use polykey::locking::{LockScheme, LutLock};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An 8×8 array multiplier (a small sibling of ISCAS c6288).
    let original = multiplier(8);
    println!("victim design: {original}");

    // Two-stage LUT module: 2 × 3-input stage-1 LUTs + 3-input stage-2
    // LUT = 24 key bits over 7 tapped nets (a scaled-down version of the
    // paper's 14-input / ~150-key module; run table2 --full for that).
    let scheme = LutLock::small().with_seed(88);
    let mut rng = rand::rngs::StdRng::seed_from_u64(88);
    let locked = scheme.lock_random(&original, &mut rng)?;
    println!(
        "locked with a 2-stage LUT: {} key bits, {} gates (was {})",
        locked.key.len(),
        locked.netlist.num_gates(),
        original.num_gates()
    );

    // Baseline: conventional SAT attack. LUT insertion makes each
    // iteration's miter big, which is exactly its defense mechanism.
    let mut oracle = SimOracle::new(&original)?;
    let baseline = AttackSession::builder()
        .oracle(&mut oracle)
        .record_dips(false)
        .build()?
        .run(&locked.netlist)?;
    let baseline_stats = baseline.stats();
    let cnf_vars = baseline.as_single_key().expect("N = 0").stats.cnf_vars;
    println!(
        "\nbaseline SAT attack: {} DIPs, {:?}, {} CNF vars",
        baseline_stats.dips, baseline_stats.wall_time, cnf_vars
    );

    // The multi-key attack with N = 2 (4 parallel terms).
    let mut oracle = SimOracle::new(&original)?;
    let report = AttackSession::builder()
        .oracle(&mut oracle)
        .split_effort(2)
        .record_dips(false)
        .build()?
        .run(&locked.netlist)?;
    assert!(report.is_complete());
    let stats = report.stats();
    let terms = stats.subtask_wall_times.len() as u32;
    let mean: std::time::Duration =
        stats.subtask_wall_times.iter().sum::<std::time::Duration>() / terms;
    println!(
        "multi-key attack (N = 2): max term {:?}, mean {:?} — vs baseline {:?}",
        stats.max_subtask_time(),
        mean,
        baseline_stats.wall_time
    );

    // Recombine and verify formally.
    let unlocked = report.recombine(&locked.netlist)?;
    assert_eq!(check_equivalence(&original, &unlocked)?, EquivResult::Equivalent);
    println!("\nrecombined design formally equivalent to the original  [ok]");
    Ok(())
}
