//! LUT-based insertion (the Table 2 workload): lock a real arithmetic
//! circuit with a two-stage LUT module, then compare the baseline SAT
//! attack against the parallel multi-key attack.
//!
//! ```text
//! cargo run --release --example lut_locking
//! ```

use polykey::attack::{
    multi_key_attack, recombine_multikey, sat_attack, MultiKeyConfig, SatAttackConfig,
    SimOracle,
};
use polykey::circuits::arith::multiplier;
use polykey::encode::{check_equivalence, EquivResult};
use polykey::locking::{lock_lut, LutConfig};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An 8×8 array multiplier (a small sibling of ISCAS c6288).
    let original = multiplier(8);
    println!("victim design: {original}");

    // Two-stage LUT module: 2 × 3-input stage-1 LUTs + 3-input stage-2
    // LUT = 24 key bits over 7 tapped nets (a scaled-down version of the
    // paper's 14-input / ~150-key module; run table2 --full for that).
    let config = LutConfig::small();
    let mut rng = rand::rngs::StdRng::seed_from_u64(88);
    let locked = lock_lut(&original, &config, &mut rng)?;
    println!(
        "locked with a 2-stage LUT: {} key bits, {} gates (was {})",
        locked.key.len(),
        locked.netlist.num_gates(),
        original.num_gates()
    );

    // Baseline: conventional SAT attack. LUT insertion makes each
    // iteration's miter big, which is exactly its defense mechanism.
    let mut oracle = SimOracle::new(&original)?;
    let mut base_cfg = SatAttackConfig::new();
    base_cfg.record_dips = false;
    let baseline = sat_attack(&locked.netlist, &mut oracle, &base_cfg)?;
    println!(
        "\nbaseline SAT attack: {} DIPs, {:?}, {} CNF vars",
        baseline.stats.dips, baseline.stats.wall_time, baseline.stats.cnf_vars
    );

    // The multi-key attack with N = 2 (4 parallel terms).
    let mut mk_cfg = MultiKeyConfig::with_split_effort(2);
    mk_cfg.sat.record_dips = false;
    let outcome = multi_key_attack(&locked.netlist, &original, &mk_cfg)?;
    assert!(outcome.is_complete());
    println!(
        "multi-key attack (N = 2): max term {:?}, mean {:?} — vs baseline {:?}",
        outcome.max_task_time(),
        outcome.mean_task_time(),
        baseline.stats.wall_time
    );

    // Recombine and verify formally.
    let unlocked = recombine_multikey(&locked.netlist, &outcome.split_inputs, &outcome.keys)?;
    assert_eq!(check_equivalence(&original, &unlocked)?, EquivResult::Equivalent);
    println!("\nrecombined design formally equivalent to the original  [ok]");
    Ok(())
}
