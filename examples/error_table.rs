//! Reproduces the paper's Fig. 1(a): the SARLock error-distribution table,
//! and demonstrates why it defeats the one-key SAT attack — and why it
//! does not defeat the multi-key attack.
//!
//! ```text
//! cargo run --release --example error_table
//! ```

use polykey::attack::{AttackSession, SimOracle};
use polykey::locking::{Key, LockScheme, Sarlock};
use polykey::netlist::{bits_of, GateKind, Netlist, Simulator};

fn majority3() -> Result<Netlist, Box<dyn std::error::Error>> {
    let mut nl = Netlist::new("maj3");
    let a = nl.add_input("a")?;
    let b = nl.add_input("b")?;
    let c = nl.add_input("c")?;
    let ab = nl.add_gate("ab", GateKind::And, &[a, b])?;
    let ac = nl.add_gate("ac", GateKind::And, &[a, c])?;
    let bc = nl.add_gate("bc", GateKind::And, &[b, c])?;
    let y = nl.add_gate("y", GateKind::Or, &[ab, ac, bc])?;
    nl.mark_output(y)?;
    Ok(nl)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let original = majority3()?;
    let correct = Key::new(vec![true, false, true]); // "101" read bit0-first
    let locked = Sarlock::new(3).lock(&original, &correct)?;

    // Build the error table by exhaustive simulation.
    let mut orig = Simulator::new(&original)?;
    let mut lsim = Simulator::new(&locked.netlist)?;
    println!("SARLock error distribution (|I| = |K| = 3, k* = {correct} bit0-first):\n");
    print!("input \\ key ");
    for k in 0..8u64 {
        print!(" {k:03b}");
    }
    println!();
    for i in 0..8u64 {
        let ibits = bits_of(i, 3);
        let want = orig.eval(&ibits, &[]);
        print!("       {}{}{}  ", ibits[2] as u8, ibits[1] as u8, ibits[0] as u8);
        for k in 0..8u64 {
            let got = lsim.eval(&ibits, &bits_of(k, 3));
            print!("  {} ", if got == want { '.' } else { 'X' });
        }
        println!();
    }

    // The consequence: one DIP eliminates one key, so the one-key SAT
    // attack pays ~2^|K| iterations.
    let mut oracle = SimOracle::new(&original)?;
    let report = AttackSession::builder().oracle(&mut oracle).build()?.run(&locked.netlist)?;
    println!(
        "\none-key SAT attack: {} DIPs for a {}-bit key (≈ 2^|K|)",
        report.stats().dips,
        locked.key.len()
    );
    let outcome = report.as_single_key().expect("N = 0");
    for (i, dip) in outcome.dip_patterns.iter().enumerate() {
        let as_num: u64 =
            dip.iter().enumerate().fold(0, |acc, (j, &b)| acc | (u64::from(b) << j));
        println!("  DIP {}: input {as_num:03b} (eliminates key {as_num:03b})", i + 1);
    }
    println!("\neach DIP kills exactly the key equal to it — the diagonal above.");
    Ok(())
}
