//! The scenario-diversity matrix the API redesign exists for: every
//! `LockScheme` × every splitting effort on c17, driven exclusively
//! through `AttackSession::builder()` — plus property tests for the `Key`
//! value type.

use proptest::prelude::*;

use polykey::attack::{AttackSession, Oracle, SimOracle};
use polykey::circuits::{c17, generate_random, RandomCircuitSpec};
use polykey::encode::{check_equivalence, EquivResult};
use polykey::locking::{AntiSat, Key, LockScheme, LutLock, Rll, Sarlock};
use polykey::netlist::bits_of;
use rand::SeedableRng;

/// Every scheme in the suite, sized for c17 (5 inputs).
fn schemes() -> Vec<Box<dyn LockScheme>> {
    vec![
        Box::new(Rll::new(4).with_seed(2024)),
        Box::new(Sarlock::new(4)),
        Box::new(AntiSat::new(2)),
        Box::new(LutLock::new(vec![2], 1).with_seed(2024)),
    ]
}

#[test]
fn session_matrix_recombines_every_scheme_at_every_effort() {
    let original = c17();
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    for scheme in schemes() {
        let locked = scheme
            .lock_random(&original, &mut rng)
            .unwrap_or_else(|_| panic!("{}", scheme.name()));
        for split_effort in 0..=2usize {
            let mut oracle = SimOracle::new(&original).expect("keyless oracle");
            let report = AttackSession::builder()
                .oracle(&mut oracle)
                .split_effort(split_effort)
                .build()
                .expect("oracle provided")
                .run(&locked.netlist)
                .expect("attack runs");
            assert!(report.is_complete(), "{} N={split_effort}", scheme.name());
            assert_eq!(
                report.sub_keys().len(),
                1 << split_effort,
                "{} N={split_effort}",
                scheme.name()
            );
            // The round-trip the paper is about: sub-space keys — possibly
            // each globally wrong — recombine into a keyless equivalent.
            let recombined = report.recombine(&locked.netlist).expect("recombine");
            assert!(recombined.key_inputs().is_empty());
            assert_eq!(
                check_equivalence(&original, &recombined).expect("equiv"),
                EquivResult::Equivalent,
                "{} N={split_effort}",
                scheme.name()
            );
        }
    }
}

#[test]
fn dip_batch_matrix_recovers_correct_keys_at_every_width() {
    // The batched and sequential pipelines must be interchangeable: for
    // every scheme and every batch width, the session succeeds and the
    // recombined design is formally equivalent to the original. The stats
    // contract holds throughout: queries count answered DIPs, rounds
    // collapse with the batch width, and width 1 is the classic loop.
    let original = c17();
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    for scheme in schemes() {
        let locked = scheme
            .lock_random(&original, &mut rng)
            .unwrap_or_else(|_| panic!("{}", scheme.name()));
        for dip_batch in [1usize, 4, 64] {
            for split_effort in [0usize, 1] {
                let mut oracle = SimOracle::new(&original).expect("keyless oracle");
                let report = AttackSession::builder()
                    .oracle(&mut oracle)
                    .split_effort(split_effort)
                    .dip_batch(dip_batch)
                    .build()
                    .expect("oracle provided")
                    .run(&locked.netlist)
                    .expect("attack runs");
                let label = format!("{} k={dip_batch} N={split_effort}", scheme.name());
                assert!(report.is_complete(), "{label}");
                let stats = report.stats();
                assert_eq!(stats.oracle_queries, stats.dips, "{label}");
                assert!(stats.oracle_rounds <= stats.oracle_queries, "{label}");
                if dip_batch == 1 {
                    assert_eq!(stats.oracle_rounds, stats.oracle_queries, "{label}");
                }
                let recombined = report.recombine(&locked.netlist).expect("recombine");
                assert_eq!(
                    check_equivalence(&original, &recombined).expect("equiv"),
                    EquivResult::Equivalent,
                    "{label}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `Oracle::query_batch` must agree with repeated `Oracle::query` on
    /// arbitrary circuits and pattern sets — including batches larger than
    /// one 64-bit simulator word.
    #[test]
    fn query_batch_agrees_with_repeated_query(
        seed in any::<u64>(),
        inputs in 1usize..=8,
        extra_gates in 0usize..=32,
        npatterns in 0usize..=130,
    ) {
        // The generator needs at least one gate per input.
        let spec = RandomCircuitSpec::new("qb", inputs, 2, inputs + extra_gates, seed);
        let circuit = generate_random(&spec);
        let patterns: Vec<Vec<bool>> = (0..npatterns)
            .map(|p| bits_of((seed.rotate_left(p as u32)) ^ p as u64, inputs))
            .collect();

        let mut sequential = SimOracle::new(&circuit).expect("keyless");
        let expected: Vec<Vec<bool>> =
            patterns.iter().map(|p| sequential.query(p)).collect();

        let mut batched = SimOracle::new(&circuit).expect("keyless");
        prop_assert_eq!(batched.query_batch(&patterns), expected);
        prop_assert_eq!(batched.queries(), npatterns as u64);
        prop_assert_eq!(batched.queries(), sequential.queries());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn key_u64_round_trips(value in any::<u64>(), len in 0usize..=64) {
        let masked = value & mask(len);
        let key = Key::from_u64(masked, len);
        prop_assert_eq!(key.len(), len);
        prop_assert_eq!(key.to_u64(), Some(masked));
        // Display is bit0-first and one char per bit.
        prop_assert_eq!(key.to_string().len(), len);
    }

    #[test]
    fn key_concat_round_trips(a in any::<u64>(), la in 0usize..=32, b in any::<u64>(), lb in 0usize..=32) {
        let ka = Key::from_u64(a & mask(la), la);
        let kb = Key::from_u64(b & mask(lb), lb);
        let joined = ka.concat(&kb);
        prop_assert_eq!(joined.len(), la + lb);
        // Bit-level split recovers both halves.
        prop_assert_eq!(&joined.bits()[..la], ka.bits());
        prop_assert_eq!(&joined.bits()[la..], kb.bits());
        // Numeric identity: joined = a | (b << la).
        let expected = (a & mask(la)) | ((b & mask(lb)) << la);
        prop_assert_eq!(joined.to_u64(), Some(expected));
    }

    #[test]
    fn key_bits_match_integer_bits(value in any::<u64>()) {
        let key = Key::from_u64(value, 64);
        for i in 0..64 {
            prop_assert_eq!(key.bit(i), value >> i & 1 == 1, "bit {}", i);
        }
        prop_assert_eq!(Key::new(key.bits().to_vec()), key);
    }
}

/// The low `len` bits set (handles `len = 0` and `len = 64`).
fn mask(len: usize) -> u64 {
    if len == 0 {
        0
    } else if len >= 64 {
        u64::MAX
    } else {
        (1u64 << len) - 1
    }
}
