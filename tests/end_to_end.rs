//! End-to-end integration tests spanning every crate: lock → attack →
//! recombine → formally verify, for each locking scheme.

use polykey::attack::{
    multi_key_attack, recombine_multikey, sat_attack, verify_key, AttackStatus,
    MultiKeyConfig, Oracle, SatAttackConfig, SimOracle, SplitStrategy,
};
use polykey::circuits::{arith, c17, generate_random, RandomCircuitSpec};
use polykey::encode::{check_equivalence, EquivResult};
use polykey::locking::{
    lock_antisat, lock_lut, lock_rll, lock_sarlock_with_key, AntisatConfig, Key, LutConfig,
    SarlockConfig,
};
use polykey::netlist::{pin_keys, simplify, Netlist};
use rand::SeedableRng;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

/// SAT-attacks the locked design and formally verifies the recovered key.
fn attack_and_verify(original: &Netlist, locked: &Netlist) {
    let mut oracle = SimOracle::new(original).expect("keyless oracle");
    let outcome =
        sat_attack(locked, &mut oracle, &SatAttackConfig::new()).expect("attack runs");
    assert_eq!(outcome.status, AttackStatus::Success);
    let key = outcome.key.expect("success implies key");
    assert!(
        verify_key(original, locked, &key).expect("verification runs"),
        "recovered key must be functionally correct"
    );
}

#[test]
fn sat_attack_breaks_rll_on_c17() {
    let original = c17();
    let locked = lock_rll(&original, 5, &mut rng(1)).expect("lockable");
    attack_and_verify(&original, &locked.netlist);
}

#[test]
fn sat_attack_breaks_sarlock_on_c17() {
    let original = c17();
    let locked =
        lock_sarlock_with_key(&original, &SarlockConfig::new(4), &Key::from_u64(11, 4))
            .expect("lockable");
    attack_and_verify(&original, &locked.netlist);
}

#[test]
fn sat_attack_breaks_antisat_on_adder() {
    let original = arith::ripple_adder(3);
    let locked = lock_antisat(&original, &AntisatConfig::new(3), &mut rng(7)).expect("lockable");
    attack_and_verify(&original, &locked.netlist);
}

#[test]
fn sat_attack_breaks_lut_on_parity() {
    let original = arith::parity(6);
    let cfg = LutConfig { stage1: vec![2], stage2_extra: 1 };
    let locked = lock_lut(&original, &cfg, &mut rng(3)).expect("lockable");
    attack_and_verify(&original, &locked.netlist);
}

#[test]
fn multikey_pipeline_on_every_scheme() {
    // For each scheme: Algorithm 1 with N = 2 + Fig. 1(b) recombination
    // must yield a netlist formally equivalent to the original.
    let original = generate_random(&RandomCircuitSpec::new("ep", 8, 3, 60, 404));
    let mut r = rng(12);
    let locked_designs: Vec<Netlist> = vec![
        lock_rll(&original, 6, &mut r).expect("rll").netlist,
        lock_sarlock_with_key(&original, &SarlockConfig::new(5), &Key::from_u64(19, 5))
            .expect("sarlock")
            .netlist,
        lock_antisat(&original, &AntisatConfig::new(3), &mut r).expect("antisat").netlist,
        lock_lut(&original, &LutConfig { stage1: vec![2], stage2_extra: 1 }, &mut r)
            .expect("lut")
            .netlist,
    ];
    for locked in locked_designs {
        let mut config = MultiKeyConfig::with_split_effort(2);
        config.parallel = true;
        let outcome = multi_key_attack(&locked, &original, &config).expect("attack runs");
        assert!(outcome.is_complete(), "{}", locked.name());
        let recombined = recombine_multikey(&locked, &outcome.split_inputs, &outcome.keys)
            .expect("recombine");
        assert_eq!(
            check_equivalence(&original, &recombined).expect("equiv check"),
            EquivResult::Equivalent,
            "{}",
            locked.name()
        );
    }
}

#[test]
fn table1_shape_holds_on_small_instance() {
    // The closed form behind Table 1: SARLock with |K| = k needs
    // ~2^k DIPs at N = 0 and ~2^(k-N) per term at splitting effort N,
    // when the split ports hit the comparator.
    let original = generate_random(&RandomCircuitSpec::new("t1", 10, 4, 80, 77));
    let kw = 6;
    let locked =
        lock_sarlock_with_key(&original, &SarlockConfig::new(kw), &Key::from_u64(45, kw))
            .expect("lockable");

    let mut max_dips_by_n = Vec::new();
    for n in 0..=3usize {
        let mut config = MultiKeyConfig::with_split_effort(n);
        config.strategy = SplitStrategy::FanoutCone;
        config.parallel = true;
        let outcome = multi_key_attack(&locked.netlist, &original, &config).expect("runs");
        assert!(outcome.is_complete());
        max_dips_by_n.push(outcome.reports.iter().map(|r| r.dips).max().unwrap());
    }
    // Baseline ≈ 2^6 - 1 = 63 (±1 from termination accounting).
    assert!(
        (62..=64).contains(&max_dips_by_n[0]),
        "baseline #DIP ≈ 2^{kw}: {max_dips_by_n:?}"
    );
    // Halving per level, approximately.
    for n in 1..max_dips_by_n.len() {
        let expected = (1u64 << (kw - n)) as f64;
        let got = max_dips_by_n[n] as f64;
        assert!(
            got <= expected * 1.25 + 2.0,
            "N={n}: #DIP {got} should be ≈ {expected}: {max_dips_by_n:?}"
        );
    }
}

#[test]
fn pin_keys_and_simplify_strip_all_key_logic_for_correct_key() {
    // Locking + correct key + re-synthesis returns (functionally) the
    // original; for SARLock the flip logic folds to constant 0.
    let original = arith::comparator(3);
    let locked =
        lock_sarlock_with_key(&original, &SarlockConfig::new(3), &Key::from_u64(2, 3))
            .expect("lockable");
    let pinned = pin_keys(&locked.netlist, locked.key.bits()).expect("pin");
    let (swept, _) = simplify(&pinned).expect("simplify");
    assert_eq!(
        check_equivalence(&original, &swept).expect("equiv"),
        EquivResult::Equivalent
    );
}

#[test]
fn oracle_query_counts_are_attack_iterations() {
    let original = c17();
    let locked = lock_rll(&original, 3, &mut rng(5)).expect("lockable");
    let mut oracle = SimOracle::new(&original).expect("oracle");
    let outcome =
        sat_attack(&locked.netlist, &mut oracle, &SatAttackConfig::new()).expect("runs");
    assert_eq!(outcome.stats.oracle_queries, outcome.stats.dips);
    assert_eq!(oracle.queries(), outcome.stats.dips);
}

#[test]
fn dip_patterns_are_real_distinguishing_inputs() {
    // Every recorded DIP must actually distinguish two keys that were
    // consistent at the time — at minimum, it must be a legal input vector
    // of the right width.
    let original = c17();
    let locked =
        lock_sarlock_with_key(&original, &SarlockConfig::new(4), &Key::from_u64(7, 4))
            .expect("lockable");
    let mut oracle = SimOracle::new(&original).expect("oracle");
    let outcome =
        sat_attack(&locked.netlist, &mut oracle, &SatAttackConfig::new()).expect("runs");
    assert!(outcome.is_success());
    assert_eq!(outcome.dip_patterns.len() as u64, outcome.stats.dips);
    for dip in &outcome.dip_patterns {
        assert_eq!(dip.len(), original.inputs().len());
    }
    // SARLock DIPs are distinct (each eliminates a distinct key).
    let mut unique = outcome.dip_patterns.clone();
    unique.sort();
    unique.dedup();
    assert_eq!(unique.len(), outcome.dip_patterns.len());
}
