//! End-to-end integration tests spanning every crate: lock → attack →
//! recombine → formally verify, with schemes as interchangeable parts
//! (`Vec<Box<dyn LockScheme>>`) and attacks driven exclusively through
//! `AttackSession::builder()`.

use polykey::attack::{
    verify_key, AttackSession, AttackStatus, Oracle, SimOracle, SplitStrategy,
};
use polykey::circuits::{arith, c17, generate_random, RandomCircuitSpec};
use polykey::encode::{check_equivalence, EquivResult};
use polykey::locking::{AntiSat, Key, LockScheme, LutLock, Rll, Sarlock};
use polykey::netlist::{pin_keys, simplify, Netlist};
use rand::SeedableRng;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

/// The scheme suite used by the cross-scheme tests.
fn scheme_suite(seed: u64) -> Vec<Box<dyn LockScheme>> {
    vec![
        Box::new(Rll::new(6).with_seed(seed)),
        Box::new(Sarlock::new(5)),
        Box::new(AntiSat::new(3)),
        Box::new(LutLock::new(vec![2], 1).with_seed(seed)),
    ]
}

/// SAT-attacks the locked design and formally verifies the recovered key.
fn attack_and_verify(original: &Netlist, locked: &Netlist) {
    let mut oracle = SimOracle::new(original).expect("keyless oracle");
    let report = AttackSession::builder()
        .oracle(&mut oracle)
        .build()
        .expect("oracle provided")
        .run(locked)
        .expect("attack runs");
    assert_eq!(report.status(), AttackStatus::Success);
    let key = report.key().expect("success implies key");
    assert!(
        verify_key(original, locked, key).expect("verification runs"),
        "recovered key must be functionally correct"
    );
}

#[test]
fn sat_attack_breaks_every_scheme_on_c17() {
    let original = c17();
    let schemes: Vec<Box<dyn LockScheme>> = vec![
        Box::new(Rll::new(5).with_seed(1)),
        Box::new(Sarlock::new(4)),
        Box::new(AntiSat::new(2)),
        Box::new(LutLock::new(vec![2], 1).with_seed(3)),
    ];
    for scheme in &schemes {
        let locked = scheme.lock_random(&original, &mut rng(7)).expect("lockable");
        attack_and_verify(&original, &locked.netlist);
    }
}

#[test]
fn sat_attack_breaks_antisat_on_adder() {
    let original = arith::ripple_adder(3);
    let locked = AntiSat::new(3).lock_random(&original, &mut rng(7)).expect("lockable");
    attack_and_verify(&original, &locked.netlist);
}

#[test]
fn sat_attack_breaks_lut_on_parity() {
    let original = arith::parity(6);
    let locked = LutLock::new(vec![2], 1)
        .with_seed(3)
        .lock_random(&original, &mut rng(3))
        .expect("lockable");
    attack_and_verify(&original, &locked.netlist);
}

#[test]
fn multikey_pipeline_on_every_scheme() {
    // For each scheme: Algorithm 1 with N = 2 + Fig. 1(b) recombination
    // must yield a netlist formally equivalent to the original.
    let original = generate_random(&RandomCircuitSpec::new("ep", 8, 3, 60, 404));
    let mut r = rng(12);
    for scheme in scheme_suite(12) {
        let locked = scheme
            .lock_random(&original, &mut r)
            .unwrap_or_else(|_| panic!("{}", scheme.name()));
        let mut oracle = SimOracle::new(&original).expect("oracle");
        let report = AttackSession::builder()
            .oracle(&mut oracle)
            .split_effort(2)
            .build()
            .expect("oracle provided")
            .run(&locked.netlist)
            .expect("attack runs");
        assert!(report.is_complete(), "{}", scheme.name());
        let recombined = report.recombine(&locked.netlist).expect("recombine");
        assert_eq!(
            check_equivalence(&original, &recombined).expect("equiv check"),
            EquivResult::Equivalent,
            "{}",
            scheme.name()
        );
    }
}

#[test]
fn table1_shape_holds_on_small_instance() {
    // The closed form behind Table 1: SARLock with |K| = k needs
    // ~2^k DIPs at N = 0 and ~2^(k-N) per term at splitting effort N,
    // when the split ports hit the comparator.
    let original = generate_random(&RandomCircuitSpec::new("t1", 10, 4, 80, 77));
    let kw = 6;
    let locked = Sarlock::new(kw).lock(&original, &Key::from_u64(45, kw)).expect("lockable");

    let mut max_dips_by_n = Vec::new();
    for n in 0..=3usize {
        let mut oracle = SimOracle::new(&original).expect("oracle");
        let report = AttackSession::builder()
            .oracle(&mut oracle)
            .split_effort(n)
            .strategy(SplitStrategy::FanoutCone)
            .build()
            .expect("oracle provided")
            .run(&locked.netlist)
            .expect("runs");
        assert!(report.is_complete());
        let max_dips = match report.as_multi_key() {
            Some(outcome) => outcome.reports.iter().map(|r| r.dips).max().unwrap(),
            None => report.stats().dips,
        };
        max_dips_by_n.push(max_dips);
    }
    // Baseline ≈ 2^6 - 1 = 63 (±1 from termination accounting).
    assert!((62..=64).contains(&max_dips_by_n[0]), "baseline #DIP ≈ 2^{kw}: {max_dips_by_n:?}");
    // Halving per level, approximately.
    for n in 1..max_dips_by_n.len() {
        let expected = (1u64 << (kw - n)) as f64;
        let got = max_dips_by_n[n] as f64;
        assert!(
            got <= expected * 1.25 + 2.0,
            "N={n}: #DIP {got} should be ≈ {expected}: {max_dips_by_n:?}"
        );
    }
}

#[test]
fn pin_keys_and_simplify_strip_all_key_logic_for_correct_key() {
    // Locking + correct key + re-synthesis returns (functionally) the
    // original; for SARLock the flip logic folds to constant 0.
    let original = arith::comparator(3);
    let locked = Sarlock::new(3).lock(&original, &Key::from_u64(2, 3)).expect("lockable");
    let pinned = pin_keys(&locked.netlist, locked.key.bits()).expect("pin");
    let (swept, _) = simplify(&pinned).expect("simplify");
    assert_eq!(check_equivalence(&original, &swept).expect("equiv"), EquivResult::Equivalent);
}

#[test]
fn oracle_query_counts_are_attack_iterations() {
    let original = c17();
    let locked =
        Rll::new(3).with_seed(5).lock_random(&original, &mut rng(5)).expect("lockable");
    let mut oracle = SimOracle::new(&original).expect("oracle");
    let report = AttackSession::builder()
        .oracle(&mut oracle)
        .build()
        .expect("oracle provided")
        .run(&locked.netlist)
        .expect("runs");
    let stats = report.stats();
    assert_eq!(stats.oracle_queries, stats.dips);
    assert_eq!(oracle.queries(), stats.dips);
}

#[test]
fn dip_patterns_are_real_distinguishing_inputs() {
    // Every recorded DIP must actually distinguish two keys that were
    // consistent at the time — at minimum, it must be a legal input vector
    // of the right width.
    let original = c17();
    let locked = Sarlock::new(4).lock(&original, &Key::from_u64(7, 4)).expect("lockable");
    let mut oracle = SimOracle::new(&original).expect("oracle");
    let report = AttackSession::builder()
        .oracle(&mut oracle)
        .build()
        .expect("oracle provided")
        .run(&locked.netlist)
        .expect("runs");
    assert!(report.is_complete());
    let outcome = report.as_single_key().expect("N = 0");
    assert_eq!(outcome.dip_patterns.len() as u64, outcome.stats.dips);
    for dip in &outcome.dip_patterns {
        assert_eq!(dip.len(), original.inputs().len());
    }
    // SARLock DIPs are distinct (each eliminates a distinct key).
    let mut unique = outcome.dip_patterns.clone();
    unique.sort();
    unique.dedup();
    assert_eq!(unique.len(), outcome.dip_patterns.len());
}
