//! Property-based tests over random netlists: simplification and I/O
//! round-trips must preserve circuit function.

use proptest::prelude::*;

use polykey_netlist::{
    bits_of, cofactor, cofactor_simplify, parse_bench, simplify, write_bench, GateKind,
    Netlist, NodeId, Simulator,
};

/// A recipe for one random gate.
#[derive(Clone, Debug)]
struct GateRecipe {
    kind_sel: u8,
    fanin_picks: Vec<u16>,
}

/// Builds a random combinational netlist from recipes: every gate reads
/// already-existing nodes, so the result is a DAG by construction.
fn build_random(num_inputs: usize, recipes: &[GateRecipe], num_outputs: usize) -> Netlist {
    let mut nl = Netlist::new("rand");
    let mut pool: Vec<NodeId> = Vec::new();
    for i in 0..num_inputs {
        pool.push(nl.add_input(format!("i{i}")).expect("fresh"));
    }
    for (g, recipe) in recipes.iter().enumerate() {
        let kind = match recipe.kind_sel % 9 {
            0 => GateKind::And,
            1 => GateKind::Nand,
            2 => GateKind::Or,
            3 => GateKind::Nor,
            4 => GateKind::Xor,
            5 => GateKind::Xnor,
            6 => GateKind::Not,
            7 => GateKind::Buf,
            _ => GateKind::Mux,
        };
        let arity = kind.arity().unwrap_or(2 + (recipe.kind_sel as usize / 16) % 2);
        let fanins: Vec<NodeId> = (0..arity)
            .map(|k| {
                let pick = recipe.fanin_picks.get(k).copied().unwrap_or(0) as usize;
                pool[pick % pool.len()]
            })
            .collect();
        let id = nl.add_gate(format!("g{g}"), kind, &fanins).expect("valid gate");
        pool.push(id);
    }
    let n = pool.len();
    for o in 0..num_outputs.min(n) {
        // Prefer late nodes as outputs to get deep cones.
        let id = pool[n - 1 - o];
        nl.mark_output(id).expect("distinct outputs");
    }
    nl
}

fn arb_netlist() -> impl Strategy<Value = Netlist> {
    let recipe = (any::<u8>(), proptest::collection::vec(any::<u16>(), 3))
        .prop_map(|(kind_sel, fanin_picks)| GateRecipe { kind_sel, fanin_picks });
    (2usize..6, proptest::collection::vec(recipe, 1..40), 1usize..4)
        .prop_map(|(inputs, recipes, outputs)| build_random(inputs, &recipes, outputs))
}

/// Exhaustive equivalence check for netlists with ≤ 12 input bits.
fn equivalent(a: &Netlist, b: &Netlist) -> bool {
    let ni = a.inputs().len();
    assert!(ni <= 12);
    assert_eq!(b.inputs().len(), ni);
    let mut sa = Simulator::new(a).expect("acyclic");
    let mut sb = Simulator::new(b).expect("acyclic");
    (0..(1u64 << ni)).all(|v| {
        let bits = bits_of(v, ni);
        sa.eval(&bits, &[]) == sb.eval(&bits, &[])
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn simplify_preserves_function(nl in arb_netlist()) {
        let (simp, stats) = simplify(&nl).expect("acyclic by construction");
        prop_assert!(equivalent(&nl, &simp));
        prop_assert!(stats.nodes_after <= stats.nodes_before + nl.outputs().len(),
            "simplification may only add output buffers");
        simp.validate().expect("simplified netlist is well-formed");
    }

    #[test]
    fn simplify_is_idempotent(nl in arb_netlist()) {
        let (s1, _) = simplify(&nl).expect("acyclic");
        let (s2, _) = simplify(&s1).expect("acyclic");
        prop_assert_eq!(s1.num_nodes(), s2.num_nodes());
        prop_assert!(equivalent(&s1, &s2));
    }

    #[test]
    fn bench_round_trip_preserves_function(nl in arb_netlist()) {
        let mut text = Vec::new();
        write_bench(&mut text, &nl).expect("write");
        let parsed = parse_bench(&text[..], nl.name()).expect("parse back");
        prop_assert!(equivalent(&nl, &parsed));
        prop_assert_eq!(nl.num_gates(), parsed.num_gates());
    }

    #[test]
    fn cofactor_matches_forced_simulation(nl in arb_netlist(), pin_bits in any::<u8>()) {
        let ni = nl.inputs().len();
        // Pin the first input to a value derived from pin_bits.
        let pin_value = pin_bits & 1 == 1;
        let target = nl.inputs()[0];
        let cof = cofactor(&nl, &[(target, pin_value)]).expect("valid pin");
        let (cs, _) = cofactor_simplify(&nl, &[(target, pin_value)]).expect("valid pin");

        let mut orig = Simulator::new(&nl).expect("acyclic");
        let mut pinned = Simulator::new(&cof).expect("acyclic");
        let mut simped = Simulator::new(&cs).expect("acyclic");
        for v in 0..(1u64 << ni) {
            let bits = bits_of(v, ni);
            let mut forced = bits.clone();
            forced[0] = pin_value;
            let want = orig.eval(&forced, &[]);
            prop_assert_eq!(&pinned.eval(&bits, &[]), &want);
            prop_assert_eq!(&simped.eval(&bits, &[]), &want);
        }
    }

    #[test]
    fn packed_simulation_matches_scalar(nl in arb_netlist(), seed in any::<u64>()) {
        let ni = nl.inputs().len();
        let mut sim = Simulator::new(&nl).expect("acyclic");
        // 64 pseudo-random patterns driven from the seed.
        let mut state = seed | 1;
        let mut patterns: Vec<Vec<bool>> = Vec::with_capacity(64);
        for _ in 0..64 {
            let mut bits = Vec::with_capacity(ni);
            for _ in 0..ni {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                bits.push(state >> 63 == 1);
            }
            patterns.push(bits);
        }
        let packed = polykey_netlist::pack_patterns(&patterns, ni);
        let packed_out = sim.eval_packed(&packed, &[]);
        for (p, pattern) in patterns.iter().enumerate() {
            let scalar = sim.eval(pattern, &[]);
            for (o, &w) in packed_out.iter().enumerate() {
                prop_assert_eq!(w >> p & 1 == 1, scalar[o]);
            }
        }
    }
}
