//! The gate-level netlist: a named DAG of logic gates.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::gate::GateKind;

/// Index of a node inside one [`Netlist`].
///
/// Ids are dense and creation-ordered; they are only meaningful with respect
/// to the netlist that produced them.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The dense 0-based index of the node.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    pub(crate) fn from_index(i: usize) -> NodeId {
        NodeId(i as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A single gate instance: its function and fanin list.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Node {
    kind: GateKind,
    fanins: Vec<NodeId>,
}

impl Node {
    /// The gate function.
    pub fn kind(&self) -> GateKind {
        self.kind
    }

    /// The fanin nodes, in argument order.
    pub fn fanins(&self) -> &[NodeId] {
        &self.fanins
    }
}

/// Errors raised by netlist construction and structural queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A signal name was defined twice.
    DuplicateName(String),
    /// A referenced signal does not exist.
    UnknownSignal(String),
    /// A gate was built with the wrong number of fanins.
    BadArity {
        /// Name of the offending gate.
        gate: String,
        /// The gate function.
        kind: GateKind,
        /// Fanins required (fixed-arity gates) or minimum (n-ary).
        expected: usize,
        /// Fanins supplied.
        got: usize,
    },
    /// A node id that does not belong to this netlist.
    InvalidNode(u32),
    /// The netlist contains a combinational cycle.
    Cycle {
        /// Name of a node on the cycle.
        involving: String,
    },
    /// The operation requires an input node but was given something else.
    NotAnInput {
        /// Name of the node.
        name: String,
    },
    /// Unsupported construct (e.g. sequential elements in a `.bench` file).
    Unsupported(String),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::DuplicateName(n) => write!(f, "duplicate signal name `{n}`"),
            NetlistError::UnknownSignal(n) => write!(f, "unknown signal `{n}`"),
            NetlistError::BadArity { gate, kind, expected, got } => {
                write!(f, "gate `{gate}` of type {kind} expects {expected} fanin(s), got {got}")
            }
            NetlistError::InvalidNode(i) => write!(f, "node id {i} is out of range"),
            NetlistError::Cycle { involving } => {
                write!(f, "combinational cycle involving `{involving}`")
            }
            NetlistError::NotAnInput { name } => write!(f, "node `{name}` is not an input"),
            NetlistError::Unsupported(what) => write!(f, "unsupported construct: {what}"),
        }
    }
}

impl Error for NetlistError {}

/// A combinational gate-level netlist.
///
/// Nodes are created in topological-friendly order through the public API
/// (fanins must already exist), carry unique names, and are classified into
/// primary inputs, key inputs (added by locking schemes) and internal gates.
/// Any node can be marked as a primary output.
///
/// # Examples
///
/// Build a half adder and simulate it:
///
/// ```
/// use polykey_netlist::{GateKind, Netlist, Simulator};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut nl = Netlist::new("half_adder");
/// let a = nl.add_input("a")?;
/// let b = nl.add_input("b")?;
/// let sum = nl.add_gate("sum", GateKind::Xor, &[a, b])?;
/// let carry = nl.add_gate("carry", GateKind::And, &[a, b])?;
/// nl.mark_output(sum)?;
/// nl.mark_output(carry)?;
///
/// let mut sim = Simulator::new(&nl)?;
/// assert_eq!(sim.eval(&[true, true], &[]), vec![false, true]);
/// assert_eq!(sim.eval(&[true, false], &[]), vec![true, false]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Netlist {
    name: String,
    nodes: Vec<Node>,
    names: Vec<String>,
    name_to_node: HashMap<String, NodeId>,
    primary_inputs: Vec<NodeId>,
    key_inputs: Vec<NodeId>,
    outputs: Vec<NodeId>,
}

impl Netlist {
    /// Creates an empty netlist with the given design name.
    pub fn new(name: impl Into<String>) -> Netlist {
        Netlist {
            name: name.into(),
            nodes: Vec::new(),
            names: Vec::new(),
            name_to_node: HashMap::new(),
            primary_inputs: Vec::new(),
            key_inputs: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// The design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the design.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Total number of nodes (inputs, constants and gates).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of logic gates (excluding inputs and constants).
    pub fn num_gates(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| !n.kind.is_input() && !matches!(n.kind, GateKind::Const(_)))
            .count()
    }

    /// The primary inputs, in declaration order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.primary_inputs
    }

    /// The key inputs, in declaration order.
    pub fn key_inputs(&self) -> &[NodeId] {
        &self.key_inputs
    }

    /// The primary outputs, in declaration order.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// The node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this netlist.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The unique signal name of a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this netlist.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.names[id.index()]
    }

    /// Looks a node up by signal name.
    pub fn find(&self, name: &str) -> Option<NodeId> {
        self.name_to_node.get(name).copied()
    }

    /// Iterates over all node ids in creation order.
    pub fn node_ids(&self) -> impl ExactSizeIterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    fn check_fresh_name(&self, name: &str) -> Result<(), NetlistError> {
        if self.name_to_node.contains_key(name) {
            Err(NetlistError::DuplicateName(name.to_string()))
        } else {
            Ok(())
        }
    }

    fn push_node(&mut self, name: String, node: Node) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.name_to_node.insert(name.clone(), id);
        self.names.push(name);
        self.nodes.push(node);
        id
    }

    /// Adds a primary input.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] if the name is taken.
    pub fn add_input(&mut self, name: impl Into<String>) -> Result<NodeId, NetlistError> {
        let name = name.into();
        self.check_fresh_name(&name)?;
        let id = self.push_node(name, Node { kind: GateKind::Input, fanins: Vec::new() });
        self.primary_inputs.push(id);
        Ok(id)
    }

    /// Adds a key input (the extra ports introduced by logic locking).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] if the name is taken.
    pub fn add_key_input(&mut self, name: impl Into<String>) -> Result<NodeId, NetlistError> {
        let name = name.into();
        self.check_fresh_name(&name)?;
        let id = self.push_node(name, Node { kind: GateKind::KeyInput, fanins: Vec::new() });
        self.key_inputs.push(id);
        Ok(id)
    }

    /// Adds a constant driver node.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] if the name is taken.
    pub fn add_const(
        &mut self,
        name: impl Into<String>,
        value: bool,
    ) -> Result<NodeId, NetlistError> {
        let name = name.into();
        self.check_fresh_name(&name)?;
        Ok(self.push_node(name, Node { kind: GateKind::Const(value), fanins: Vec::new() }))
    }

    /// Adds a gate whose fanins must already exist.
    ///
    /// # Errors
    ///
    /// - [`NetlistError::DuplicateName`] if the name is taken.
    /// - [`NetlistError::BadArity`] if the fanin count is invalid for `kind`
    ///   (n-ary gates need at least one fanin).
    /// - [`NetlistError::InvalidNode`] if a fanin id is out of range.
    pub fn add_gate(
        &mut self,
        name: impl Into<String>,
        kind: GateKind,
        fanins: &[NodeId],
    ) -> Result<NodeId, NetlistError> {
        let name = name.into();
        self.check_fresh_name(&name)?;
        match kind.arity() {
            Some(expected) if expected != fanins.len() => {
                return Err(NetlistError::BadArity {
                    gate: name,
                    kind,
                    expected,
                    got: fanins.len(),
                });
            }
            None if fanins.is_empty() => {
                return Err(NetlistError::BadArity { gate: name, kind, expected: 1, got: 0 });
            }
            _ => {}
        }
        if kind.is_input() {
            return Err(NetlistError::Unsupported(
                "use add_input/add_key_input for input nodes".into(),
            ));
        }
        for f in fanins {
            if f.index() >= self.nodes.len() {
                return Err(NetlistError::InvalidNode(f.0));
            }
        }
        Ok(self.push_node(name, Node { kind, fanins: fanins.to_vec() }))
    }

    /// Marks a node as a primary output. A node may be marked only once.
    ///
    /// # Errors
    ///
    /// - [`NetlistError::InvalidNode`] if the id is out of range.
    /// - [`NetlistError::DuplicateName`] if the node is already an output.
    pub fn mark_output(&mut self, id: NodeId) -> Result<(), NetlistError> {
        if id.index() >= self.nodes.len() {
            return Err(NetlistError::InvalidNode(id.0));
        }
        if self.outputs.contains(&id) {
            return Err(NetlistError::DuplicateName(self.node_name(id).to_string()));
        }
        self.outputs.push(id);
        Ok(())
    }

    /// Inserts a new gate *after* `target`: the gate takes `target` as its
    /// first fanin (plus `extra_fanins`), and every existing consumer of
    /// `target` — including the output list — is redirected to the new gate.
    ///
    /// This is the primitive locking schemes use to splice key gates into a
    /// wire. Inserting cannot create a cycle: the new gate only reads
    /// existing nodes.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Netlist::add_gate`].
    pub fn insert_after(
        &mut self,
        target: NodeId,
        name: impl Into<String>,
        kind: GateKind,
        extra_fanins: &[NodeId],
    ) -> Result<NodeId, NetlistError> {
        if target.index() >= self.nodes.len() {
            return Err(NetlistError::InvalidNode(target.0));
        }
        let mut fanins = Vec::with_capacity(1 + extra_fanins.len());
        fanins.push(target);
        fanins.extend_from_slice(extra_fanins);
        let new_id = self.add_gate(name, kind, &fanins)?;
        // Redirect all other consumers of `target` to the new gate.
        for (i, node) in self.nodes.iter_mut().enumerate() {
            if i == new_id.index() {
                continue;
            }
            for f in &mut node.fanins {
                if *f == target {
                    *f = new_id;
                }
            }
        }
        for out in &mut self.outputs {
            if *out == target {
                *out = new_id;
            }
        }
        Ok(new_id)
    }

    /// Replaces occurrences of fanin `old` with `new` in one gate.
    ///
    /// # Errors
    ///
    /// [`NetlistError::InvalidNode`] if any id is out of range,
    /// [`NetlistError::UnknownSignal`] if `old` is not a fanin of `gate`.
    pub fn replace_fanin(
        &mut self,
        gate: NodeId,
        old: NodeId,
        new: NodeId,
    ) -> Result<(), NetlistError> {
        for id in [gate, old, new] {
            if id.index() >= self.nodes.len() {
                return Err(NetlistError::InvalidNode(id.0));
            }
        }
        let node = &mut self.nodes[gate.index()];
        let mut found = false;
        for f in &mut node.fanins {
            if *f == old {
                *f = new;
                found = true;
            }
        }
        if found {
            Ok(())
        } else {
            Err(NetlistError::UnknownSignal(self.names[old.index()].clone()))
        }
    }

    /// Computes a topological order of all nodes (fanins before fanouts).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Cycle`] if the netlist is cyclic (possible
    /// only for netlists built by the parser, which allows forward
    /// references).
    pub fn topological_order(&self) -> Result<Vec<NodeId>, NetlistError> {
        let n = self.nodes.len();
        // Kahn's algorithm over *distinct* fanin edges (the fanout adjacency
        // is deduplicated, so repeated fanins like And(a, a) count once).
        let mut indegree = vec![0u32; n];
        let mut scratch: Vec<NodeId> = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            scratch.clear();
            scratch.extend_from_slice(&node.fanins);
            scratch.sort_unstable();
            scratch.dedup();
            indegree[i] = scratch.len() as u32;
        }
        let fanouts = self.fanout_adjacency();
        let mut order = Vec::with_capacity(n);
        let mut ready: Vec<NodeId> =
            (0..n).filter(|&i| indegree[i] == 0).map(NodeId::from_index).collect();
        while let Some(id) = ready.pop() {
            order.push(id);
            for &out in &fanouts[id.index()] {
                indegree[out.index()] -= 1;
                if indegree[out.index()] == 0 {
                    ready.push(out);
                }
            }
        }
        if order.len() != n {
            let stuck = (0..n)
                .find(|&i| indegree[i] > 0)
                .map(|i| self.names[i].clone())
                .unwrap_or_default();
            return Err(NetlistError::Cycle { involving: stuck });
        }
        Ok(order)
    }

    /// Builds the reverse adjacency: for each node, the list of nodes that
    /// read it (with multiplicity collapsed per edge occurrence).
    pub fn fanout_adjacency(&self) -> Vec<Vec<NodeId>> {
        let mut fanouts = vec![Vec::new(); self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            for f in &node.fanins {
                fanouts[f.index()].push(NodeId::from_index(i));
            }
        }
        for list in &mut fanouts {
            list.sort_unstable();
            list.dedup();
        }
        fanouts
    }

    /// Exhaustive structural validation: arity, id ranges, name table
    /// consistency, acyclicity, and output validity.
    ///
    /// The public construction API maintains these invariants; `validate` is
    /// a safety net for parser-produced or hand-mutated netlists.
    ///
    /// # Errors
    ///
    /// The first violated invariant, as a [`NetlistError`].
    pub fn validate(&self) -> Result<(), NetlistError> {
        if self.names.len() != self.nodes.len() {
            return Err(NetlistError::Unsupported("name table length mismatch".into()));
        }
        for (i, node) in self.nodes.iter().enumerate() {
            let name = &self.names[i];
            if self.name_to_node.get(name) != Some(&NodeId::from_index(i)) {
                return Err(NetlistError::DuplicateName(name.clone()));
            }
            match node.kind.arity() {
                Some(expected) if expected != node.fanins.len() => {
                    return Err(NetlistError::BadArity {
                        gate: name.clone(),
                        kind: node.kind,
                        expected,
                        got: node.fanins.len(),
                    });
                }
                None if node.fanins.is_empty() => {
                    return Err(NetlistError::BadArity {
                        gate: name.clone(),
                        kind: node.kind,
                        expected: 1,
                        got: 0,
                    });
                }
                _ => {}
            }
            for f in &node.fanins {
                if f.index() >= self.nodes.len() {
                    return Err(NetlistError::InvalidNode(f.0));
                }
            }
        }
        for &out in &self.outputs {
            if out.index() >= self.nodes.len() {
                return Err(NetlistError::InvalidNode(out.0));
            }
        }
        for &pi in self.primary_inputs.iter().chain(&self.key_inputs) {
            if !self.nodes[pi.index()].kind.is_input() {
                return Err(NetlistError::NotAnInput { name: self.names[pi.index()].clone() });
            }
        }
        self.topological_order()?;
        Ok(())
    }

    /// Parser-internal: overwrite a node's definition (used to resolve
    /// forward references). Callers must re-validate.
    pub(crate) fn set_node(&mut self, id: NodeId, kind: GateKind, fanins: Vec<NodeId>) {
        self.nodes[id.index()] = Node { kind, fanins };
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} inputs, {} keys, {} outputs, {} gates",
            self.name,
            self.primary_inputs.len(),
            self.key_inputs.len(),
            self.outputs.len(),
            self.num_gates()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c17_like() -> Netlist {
        let mut nl = Netlist::new("c17");
        let i1 = nl.add_input("G1").unwrap();
        let i2 = nl.add_input("G2").unwrap();
        let i3 = nl.add_input("G3").unwrap();
        let i6 = nl.add_input("G6").unwrap();
        let i7 = nl.add_input("G7").unwrap();
        let n10 = nl.add_gate("G10", GateKind::Nand, &[i1, i3]).unwrap();
        let n11 = nl.add_gate("G11", GateKind::Nand, &[i3, i6]).unwrap();
        let n16 = nl.add_gate("G16", GateKind::Nand, &[i2, n11]).unwrap();
        let n19 = nl.add_gate("G19", GateKind::Nand, &[n11, i7]).unwrap();
        let n22 = nl.add_gate("G22", GateKind::Nand, &[n10, n16]).unwrap();
        let n23 = nl.add_gate("G23", GateKind::Nand, &[n16, n19]).unwrap();
        nl.mark_output(n22).unwrap();
        nl.mark_output(n23).unwrap();
        nl
    }

    #[test]
    fn build_and_query() {
        let nl = c17_like();
        assert_eq!(nl.inputs().len(), 5);
        assert_eq!(nl.outputs().len(), 2);
        assert_eq!(nl.num_gates(), 6);
        assert_eq!(nl.num_nodes(), 11);
        assert_eq!(nl.find("G16"), Some(NodeId(7)));
        assert_eq!(nl.node_name(NodeId(7)), "G16");
        assert_eq!(nl.node(NodeId(7)).kind(), GateKind::Nand);
        assert!(nl.validate().is_ok());
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut nl = Netlist::new("t");
        nl.add_input("a").unwrap();
        assert!(matches!(nl.add_input("a"), Err(NetlistError::DuplicateName(_))));
        assert!(matches!(
            nl.add_gate("a", GateKind::And, &[NodeId(0)]),
            Err(NetlistError::DuplicateName(_))
        ));
    }

    #[test]
    fn arity_enforced() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a").unwrap();
        let b = nl.add_input("b").unwrap();
        assert!(matches!(
            nl.add_gate("g", GateKind::Not, &[a, b]),
            Err(NetlistError::BadArity { expected: 1, got: 2, .. })
        ));
        assert!(matches!(
            nl.add_gate("g", GateKind::And, &[]),
            Err(NetlistError::BadArity { .. })
        ));
        assert!(matches!(
            nl.add_gate("g", GateKind::Mux, &[a, b]),
            Err(NetlistError::BadArity { expected: 3, .. })
        ));
    }

    #[test]
    fn fanins_must_exist() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a").unwrap();
        assert!(matches!(
            nl.add_gate("g", GateKind::And, &[a, NodeId(42)]),
            Err(NetlistError::InvalidNode(42))
        ));
    }

    #[test]
    fn outputs_marked_once() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a").unwrap();
        nl.mark_output(a).unwrap();
        assert!(nl.mark_output(a).is_err());
        assert!(nl.mark_output(NodeId(9)).is_err());
    }

    #[test]
    fn insert_after_redirects_consumers() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a").unwrap();
        let b = nl.add_input("b").unwrap();
        let g = nl.add_gate("g", GateKind::And, &[a, b]).unwrap();
        let h = nl.add_gate("h", GateKind::Not, &[g]).unwrap();
        nl.mark_output(g).unwrap();
        nl.mark_output(h).unwrap();

        let k = nl.add_key_input("k0").unwrap();
        let x = nl.insert_after(g, "g_xor", GateKind::Xor, &[k]).unwrap();

        // The new gate reads g and k.
        assert_eq!(nl.node(x).fanins(), &[g, k]);
        // h now reads the new gate instead of g.
        assert_eq!(nl.node(h).fanins(), &[x]);
        // The output list follows too.
        assert_eq!(nl.outputs(), &[x, h]);
        assert!(nl.validate().is_ok());
    }

    #[test]
    fn replace_fanin_works() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a").unwrap();
        let b = nl.add_input("b").unwrap();
        let c = nl.add_input("c").unwrap();
        let g = nl.add_gate("g", GateKind::Or, &[a, b]).unwrap();
        nl.replace_fanin(g, a, c).unwrap();
        assert_eq!(nl.node(g).fanins(), &[c, b]);
        assert!(nl.replace_fanin(g, a, c).is_err(), "a no longer a fanin");
    }

    #[test]
    fn topological_order_respects_edges() {
        let nl = c17_like();
        let order = nl.topological_order().unwrap();
        let mut pos = vec![0usize; nl.num_nodes()];
        for (i, id) in order.iter().enumerate() {
            pos[id.index()] = i;
        }
        for id in nl.node_ids() {
            for f in nl.node(id).fanins() {
                assert!(pos[f.index()] < pos[id.index()], "{f} before {id}");
            }
        }
    }

    #[test]
    fn cycle_detected() {
        // Build a cycle through the parser-internal hook.
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a").unwrap();
        let g = nl.add_gate("g", GateKind::Not, &[a]).unwrap();
        let h = nl.add_gate("h", GateKind::Not, &[g]).unwrap();
        nl.set_node(g, GateKind::Not, vec![h]);
        assert!(matches!(nl.topological_order(), Err(NetlistError::Cycle { .. })));
        assert!(nl.validate().is_err());
    }

    #[test]
    fn key_inputs_are_separate() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a").unwrap();
        let k = nl.add_key_input("keyinput0").unwrap();
        assert_eq!(nl.inputs(), &[a]);
        assert_eq!(nl.key_inputs(), &[k]);
        assert_eq!(nl.node(k).kind(), GateKind::KeyInput);
    }

    #[test]
    fn display_summary() {
        let nl = c17_like();
        let s = nl.to_string();
        assert!(s.contains("c17"));
        assert!(s.contains("5 inputs"));
        assert!(s.contains("6 gates"));
    }

    #[test]
    fn error_messages_are_lowercase_and_informative() {
        let e = NetlistError::UnknownSignal("foo".into()).to_string();
        assert!(e.contains("foo"));
        let e = NetlistError::Cycle { involving: "g1".into() }.to_string();
        assert!(e.contains("g1"));
    }
}
