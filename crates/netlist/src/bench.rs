//! ISCAS `.bench` format reading and writing.
//!
//! The dialect understood here is the classic ISCAS'85 combinational subset:
//!
//! ```text
//! # comment
//! INPUT(G1)
//! OUTPUT(G22)
//! G10 = NAND(G1, G3)
//! ```
//!
//! plus three extensions used by the logic-locking ecosystem:
//!
//! - inputs whose name starts with `keyinput` (any case) are classified as
//!   key inputs, matching the convention of published locked benchmarks;
//! - an explicit `KEYINPUT(name)` declaration;
//! - `MUX`, `CONST0()` and `CONST1()` gates.
//!
//! Sequential elements (`DFF`) are rejected with a clear error: the attack
//! framework is combinational-only.

use std::error::Error;
use std::fmt;
use std::io::{self, BufRead, Write};

use crate::gate::GateKind;
use crate::netlist::{Netlist, NetlistError, NodeId};

/// Errors produced while parsing a `.bench` file.
#[derive(Debug)]
pub enum ParseBenchError {
    /// An I/O error from the underlying reader.
    Io(io::Error),
    /// A malformed line.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A structural error detected while assembling the netlist
    /// (duplicate names, unknown signals, cycles, bad arity, …).
    Netlist(NetlistError),
}

impl fmt::Display for ParseBenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseBenchError::Io(e) => write!(f, "i/o error reading bench: {e}"),
            ParseBenchError::Syntax { line, message } => {
                write!(f, "bench syntax error at line {line}: {message}")
            }
            ParseBenchError::Netlist(e) => write!(f, "bench structural error: {e}"),
        }
    }
}

impl Error for ParseBenchError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseBenchError::Io(e) => Some(e),
            ParseBenchError::Netlist(e) => Some(e),
            ParseBenchError::Syntax { .. } => None,
        }
    }
}

impl From<io::Error> for ParseBenchError {
    fn from(e: io::Error) -> ParseBenchError {
        ParseBenchError::Io(e)
    }
}

impl From<NetlistError> for ParseBenchError {
    fn from(e: NetlistError) -> ParseBenchError {
        ParseBenchError::Netlist(e)
    }
}

/// True if `name` follows the locked-benchmark key-input naming convention.
fn is_key_name(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    lower.starts_with("keyinput") || lower.starts_with("key_input")
}

/// Parses a `.bench` netlist. A mutable reference can be passed for
/// `reader` (e.g. `&mut file`).
///
/// Signals may be referenced before they are defined (forward references are
/// resolved at the end). The resulting netlist is fully validated.
///
/// # Errors
///
/// Returns [`ParseBenchError`] on I/O failure, malformed lines, unsupported
/// constructs (e.g. `DFF`), or structural problems (cycles, unknown
/// signals, duplicate definitions).
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n";
/// let nl = polykey_netlist::parse_bench(src.as_bytes(), "tiny")?;
/// assert_eq!(nl.inputs().len(), 2);
/// assert_eq!(nl.num_gates(), 1);
/// # Ok(())
/// # }
/// ```
pub fn parse_bench<R: BufRead>(reader: R, name: &str) -> Result<Netlist, ParseBenchError> {
    enum Decl {
        Input { name: String, key: bool },
        Output(String),
        Gate { name: String, kind: GateKind, fanins: Vec<String> },
    }

    let mut decls: Vec<(usize, Decl)> = Vec::new();
    for (line_no, line) in reader.lines().enumerate() {
        let line = line?;
        let line_no = line_no + 1;
        let code = match line.find('#') {
            Some(pos) => &line[..pos],
            None => &line[..],
        };
        let code = code.trim();
        if code.is_empty() {
            continue;
        }
        let syntax = |message: String| ParseBenchError::Syntax { line: line_no, message };

        if let Some(rest) = strip_keyword(code, "INPUT") {
            let signal = parse_parenthesized(rest).map_err(syntax)?;
            let key = is_key_name(&signal);
            decls.push((line_no, Decl::Input { name: signal, key }));
        } else if let Some(rest) = strip_keyword(code, "KEYINPUT") {
            let signal = parse_parenthesized(rest).map_err(syntax)?;
            decls.push((line_no, Decl::Input { name: signal, key: true }));
        } else if let Some(rest) = strip_keyword(code, "OUTPUT") {
            let signal = parse_parenthesized(rest).map_err(syntax)?;
            decls.push((line_no, Decl::Output(signal)));
        } else if let Some(eq) = code.find('=') {
            let lhs = code[..eq].trim();
            let rhs = code[eq + 1..].trim();
            if lhs.is_empty() {
                return Err(syntax("missing signal name before `=`".into()));
            }
            let open = rhs.find('(').ok_or_else(|| {
                syntax(format!("expected `KIND(args)` after `=`, got `{rhs}`"))
            })?;
            if !rhs.ends_with(')') {
                return Err(syntax("missing closing `)`".into()));
            }
            let kind_str = rhs[..open].trim();
            let kind = GateKind::from_bench_name(kind_str).ok_or_else(|| {
                if kind_str.eq_ignore_ascii_case("dff") {
                    ParseBenchError::Netlist(NetlistError::Unsupported(format!(
                        "sequential element `{kind_str}` at line {line_no} (combinational \
                         netlists only)"
                    )))
                } else {
                    syntax(format!("unknown gate kind `{kind_str}`"))
                }
            })?;
            let args = rhs[open + 1..rhs.len() - 1].trim();
            let fanins: Vec<String> = if args.is_empty() {
                Vec::new()
            } else {
                args.split(',').map(|s| s.trim().to_string()).collect()
            };
            if fanins.iter().any(String::is_empty) {
                return Err(syntax("empty fanin name".into()));
            }
            decls.push((line_no, Decl::Gate { name: lhs.to_string(), kind, fanins }));
        } else {
            return Err(syntax(format!("unrecognized line `{code}`")));
        }
    }

    // Pass 1: create all named nodes (gates as placeholders).
    let mut nl = Netlist::new(name);
    let mut gate_ids: Vec<(NodeId, GateKind, Vec<String>)> = Vec::new();
    for (_line, decl) in &decls {
        match decl {
            Decl::Input { name, key } => {
                if *key {
                    nl.add_key_input(name.clone())?;
                } else {
                    nl.add_input(name.clone())?;
                }
            }
            Decl::Output(_) => {}
            Decl::Gate { name, kind, fanins } => {
                // Placeholder; its definition is patched in pass 2 once all
                // names exist (forward references are legal in .bench).
                let id = nl.add_const(name.clone(), false)?;
                gate_ids.push((id, *kind, fanins.clone()));
            }
        }
    }
    // Pass 2: resolve fanins and patch definitions.
    for (id, kind, fanins) in gate_ids {
        let resolved: Result<Vec<NodeId>, ParseBenchError> = fanins
            .iter()
            .map(|f| {
                nl.find(f).ok_or_else(|| {
                    ParseBenchError::Netlist(NetlistError::UnknownSignal(f.clone()))
                })
            })
            .collect();
        nl.set_node(id, kind, resolved?);
    }
    // Outputs last: they may reference any named signal.
    for (_line, decl) in &decls {
        if let Decl::Output(signal) = decl {
            let id = nl.find(signal).ok_or_else(|| {
                ParseBenchError::Netlist(NetlistError::UnknownSignal(signal.clone()))
            })?;
            nl.mark_output(id)?;
        }
    }
    nl.validate()?;
    Ok(nl)
}

fn strip_keyword<'a>(code: &'a str, keyword: &str) -> Option<&'a str> {
    let head = code.get(..keyword.len())?;
    if head.eq_ignore_ascii_case(keyword) {
        let rest = &code[keyword.len()..];
        // Must be followed by an open paren (possibly after spaces) so that
        // a gate assignment like `INPUTX = AND(a, b)` is not misparsed.
        let trimmed = rest.trim_start();
        if trimmed.starts_with('(') {
            return Some(trimmed);
        }
    }
    None
}

fn parse_parenthesized(rest: &str) -> Result<String, String> {
    let inner = rest
        .strip_prefix('(')
        .and_then(|s| s.strip_suffix(')'))
        .ok_or_else(|| format!("expected `(signal)`, got `{rest}`"))?;
    let signal = inner.trim();
    if signal.is_empty() {
        return Err("empty signal name".into());
    }
    if signal.contains(',') {
        return Err(format!("expected a single signal, got `{signal}`"));
    }
    Ok(signal.to_string())
}

/// Writes a netlist in `.bench` format. A mutable reference can be passed
/// for `writer`.
///
/// Key inputs named with the `keyinput` convention are emitted as plain
/// `INPUT(...)` lines (maximally compatible with external tools and
/// re-classified on re-parse); other key inputs use the `KEYINPUT(...)`
/// extension. Gates are emitted in topological order.
///
/// # Errors
///
/// Propagates I/O errors, and [`NetlistError::Cycle`] (as
/// `io::ErrorKind::InvalidInput`) for cyclic netlists.
pub fn write_bench<W: Write>(mut writer: W, netlist: &Netlist) -> io::Result<()> {
    writeln!(writer, "# {}", netlist.name())?;
    writeln!(
        writer,
        "# {} inputs, {} key inputs, {} outputs, {} gates",
        netlist.inputs().len(),
        netlist.key_inputs().len(),
        netlist.outputs().len(),
        netlist.num_gates()
    )?;
    for &pi in netlist.inputs() {
        writeln!(writer, "INPUT({})", netlist.node_name(pi))?;
    }
    for &ki in netlist.key_inputs() {
        let name = netlist.node_name(ki);
        if is_key_name(name) {
            writeln!(writer, "INPUT({name})")?;
        } else {
            writeln!(writer, "KEYINPUT({name})")?;
        }
    }
    for &o in netlist.outputs() {
        writeln!(writer, "OUTPUT({})", netlist.node_name(o))?;
    }
    let order = netlist
        .topological_order()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
    for id in order {
        let node = netlist.node(id);
        let kind = node.kind();
        if kind.is_input() {
            continue;
        }
        let args: Vec<&str> = node.fanins().iter().map(|f| netlist.node_name(*f)).collect();
        writeln!(
            writer,
            "{} = {}({})",
            netlist.node_name(id),
            kind.bench_name().expect("non-input"),
            args.join(", ")
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{bits_of, Simulator};

    const C17: &str = "\
# c17 from the ISCAS'85 suite
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
";

    #[test]
    fn parse_c17() {
        let nl = parse_bench(C17.as_bytes(), "c17").expect("valid");
        assert_eq!(nl.inputs().len(), 5);
        assert_eq!(nl.outputs().len(), 2);
        assert_eq!(nl.num_gates(), 6);
        assert_eq!(nl.name(), "c17");
        // All inputs 0: G10=G11=1, G16=NAND(0,1)=1, G19=NAND(1,0)=1,
        // so G22=NAND(1,1)=0 and G23=NAND(1,1)=0.
        let mut sim = Simulator::new(&nl).unwrap();
        let out = sim.eval(&[false; 5], &[]);
        assert_eq!(out, vec![false, false]);
        // And with G2 = G3 = 1: G11 = NAND(1,0)=1... check one more point:
        // inputs (1,1,1,1,1): G10=0, G11=0, G16=1, G19=1, G22=1, G23=0.
        let out = sim.eval(&[true; 5], &[]);
        assert_eq!(out, vec![true, false]);
    }

    #[test]
    fn forward_references_ok() {
        let src = "INPUT(a)\nOUTPUT(y)\ny = NOT(z)\nz = NOT(a)\n";
        let nl = parse_bench(src.as_bytes(), "fwd").expect("forward refs are legal");
        let mut sim = Simulator::new(&nl).unwrap();
        assert_eq!(sim.eval(&[true], &[]), vec![true]);
    }

    #[test]
    fn keyinput_conventions() {
        let src = "INPUT(a)\nINPUT(keyinput0)\nKEYINPUT(k_explicit)\nOUTPUT(y)\n\
                   y = XOR(a, keyinput0)\n";
        let nl = parse_bench(src.as_bytes(), "locked").expect("valid");
        assert_eq!(nl.inputs().len(), 1);
        assert_eq!(nl.key_inputs().len(), 2);
    }

    #[test]
    fn rejects_dff() {
        let src = "INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n";
        let err = parse_bench(src.as_bytes(), "seq").expect_err("sequential");
        assert!(err.to_string().contains("sequential"), "{err}");
    }

    #[test]
    fn rejects_unknown_signal() {
        let src = "INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n";
        let err = parse_bench(src.as_bytes(), "t").expect_err("unknown");
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn rejects_cycle() {
        let src = "INPUT(a)\nOUTPUT(y)\ny = AND(a, z)\nz = NOT(y)\n";
        let err = parse_bench(src.as_bytes(), "t").expect_err("cycle");
        assert!(err.to_string().contains("cycle"), "{err}");
    }

    #[test]
    fn rejects_duplicate_definition() {
        let src = "INPUT(a)\na = NOT(a)\n";
        let err = parse_bench(src.as_bytes(), "t").expect_err("dup");
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn rejects_garbage_line() {
        let src = "INPUT(a)\nTHIS IS NOT BENCH\n";
        let err = parse_bench(src.as_bytes(), "t").expect_err("garbage");
        match err {
            ParseBenchError::Syntax { line, .. } => assert_eq!(line, 2),
            other => panic!("wrong error {other:?}"),
        }
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let src = "\n# full comment\nINPUT(a)  # trailing comment\nOUTPUT(y)\ny = NOT(a)\n";
        let nl = parse_bench(src.as_bytes(), "t").expect("valid");
        assert_eq!(nl.num_gates(), 1);
    }

    #[test]
    fn round_trip_preserves_function() {
        let nl = parse_bench(C17.as_bytes(), "c17").expect("valid");
        let mut text = Vec::new();
        write_bench(&mut text, &nl).expect("write");
        let nl2 = parse_bench(&text[..], "c17").expect("round trip");
        assert_eq!(nl.inputs().len(), nl2.inputs().len());
        assert_eq!(nl.outputs().len(), nl2.outputs().len());
        assert_eq!(nl.num_gates(), nl2.num_gates());
        let mut s1 = Simulator::new(&nl).unwrap();
        let mut s2 = Simulator::new(&nl2).unwrap();
        for v in 0..32u64 {
            let bits = bits_of(v, 5);
            assert_eq!(s1.eval(&bits, &[]), s2.eval(&bits, &[]), "pattern {v}");
        }
    }

    #[test]
    fn round_trip_with_keys_and_consts() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a").unwrap();
        let k = nl.add_key_input("keyinput0").unwrap();
        let k2 = nl.add_key_input("odd_key").unwrap();
        let c1 = nl.add_const("tie1", true).unwrap();
        let x = nl.add_gate("x", GateKind::Xor, &[a, k]).unwrap();
        let m = nl.add_gate("m", GateKind::Mux, &[k2, x, c1]).unwrap();
        nl.mark_output(m).unwrap();

        let mut text = Vec::new();
        write_bench(&mut text, &nl).expect("write");
        let nl2 = parse_bench(&text[..], "t").expect("parse");
        assert_eq!(nl2.key_inputs().len(), 2);
        let mut s1 = Simulator::new(&nl).unwrap();
        let mut s2 = Simulator::new(&nl2).unwrap();
        for v in 0..8u64 {
            let b = bits_of(v, 3);
            assert_eq!(s1.eval(&b[..1], &b[1..]), s2.eval(&b[..1], &b[1..]));
        }
    }

    #[test]
    fn case_insensitive_keywords() {
        let src = "input(a)\noutput(y)\ny = nand(a, a)\n";
        let nl = parse_bench(src.as_bytes(), "t").expect("valid");
        assert_eq!(nl.num_gates(), 1);
    }
}
