//! # polykey-netlist: gate-level netlists for logic-locking research
//!
//! The circuit substrate of the `polykey` suite:
//!
//! - a typed, validated, combinational netlist IR ([`Netlist`], [`GateKind`])
//!   with the wire-splicing primitive locking schemes need
//!   ([`Netlist::insert_after`]);
//! - ISCAS `.bench` reading and writing ([`parse_bench`], [`write_bench`]),
//!   including the `keyinput` conventions of published locked benchmarks;
//! - 64-way bit-parallel simulation ([`Simulator`]);
//! - structural analysis: fan-in/fan-out cones, key-controlled masks, logic
//!   levels ([`analysis`]);
//! - logic simplification used as the attack's re-synthesis step:
//!   [`cofactor`], [`simplify`] and [`cofactor_simplify`].
//!
//! # Examples
//!
//! ```
//! use polykey_netlist::{GateKind, Netlist, Simulator};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut nl = Netlist::new("mux2");
//! let s = nl.add_input("s")?;
//! let a = nl.add_input("a")?;
//! let b = nl.add_input("b")?;
//! let y = nl.add_gate("y", GateKind::Mux, &[s, a, b])?;
//! nl.mark_output(y)?;
//!
//! let mut sim = Simulator::new(&nl)?;
//! assert_eq!(sim.eval(&[false, true, false], &[]), vec![true]);
//! assert_eq!(sim.eval(&[true, true, false], &[]), vec![false]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
mod bench;
mod gate;
mod netlist;
mod sim;
mod transform;
mod verilog;

pub use bench::{parse_bench, write_bench, ParseBenchError};
pub use gate::GateKind;
pub use netlist::{Netlist, NetlistError, Node, NodeId};
pub use sim::{bits_of, bits_to_u64, pack_patterns, unpack_patterns, Simulator};
pub use transform::{cofactor, cofactor_simplify, pin_keys, simplify, SimplifyStats};
pub use verilog::write_verilog;
