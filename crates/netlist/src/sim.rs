//! Bit-parallel netlist simulation.
//!
//! The simulator evaluates 64 input patterns per pass by packing one pattern
//! per bit of a `u64` word, which is how the attack's oracle and all
//! correctness checks evaluate circuits.

use crate::gate::GateKind;
use crate::netlist::{Netlist, NetlistError, NodeId};

/// A reusable simulator bound to one netlist.
///
/// Construction computes and caches the topological order; each evaluation
/// reuses an internal value buffer, so repeated calls do not allocate.
///
/// # Examples
///
/// ```
/// use polykey_netlist::{GateKind, Netlist, Simulator};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut nl = Netlist::new("inv");
/// let a = nl.add_input("a")?;
/// let y = nl.add_gate("y", GateKind::Not, &[a])?;
/// nl.mark_output(y)?;
/// let mut sim = Simulator::new(&nl)?;
/// assert_eq!(sim.eval(&[false], &[]), vec![true]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Simulator<'a> {
    netlist: &'a Netlist,
    order: Vec<NodeId>,
    values: Vec<u64>,
    fanin_buf: Vec<u64>,
}

impl<'a> Simulator<'a> {
    /// Builds a simulator for `netlist`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Cycle`] for cyclic netlists.
    pub fn new(netlist: &'a Netlist) -> Result<Simulator<'a>, NetlistError> {
        let order = netlist.topological_order()?;
        Ok(Simulator {
            netlist,
            order,
            values: vec![0; netlist.num_nodes()],
            fanin_buf: Vec::with_capacity(8),
        })
    }

    /// The netlist this simulator is bound to.
    pub fn netlist(&self) -> &Netlist {
        self.netlist
    }

    /// Evaluates a single input pattern. Returns output values in output
    /// declaration order.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` or `keys` do not match the netlist's input and key
    /// port counts.
    pub fn eval(&mut self, inputs: &[bool], keys: &[bool]) -> Vec<bool> {
        let inputs_packed: Vec<u64> =
            inputs.iter().map(|&b| if b { u64::MAX } else { 0 }).collect();
        let keys_packed: Vec<u64> =
            keys.iter().map(|&b| if b { u64::MAX } else { 0 }).collect();
        self.eval_packed(&inputs_packed, &keys_packed).iter().map(|&w| w & 1 == 1).collect()
    }

    /// Evaluates 64 packed patterns at once: bit *i* of each word belongs to
    /// pattern *i*. Returns one word per output, in declaration order.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` or `keys` do not match the netlist's input and key
    /// port counts.
    pub fn eval_packed(&mut self, inputs: &[u64], keys: &[u64]) -> Vec<u64> {
        self.run_packed(inputs, keys);
        self.netlist.outputs().iter().map(|o| self.values[o.index()]).collect()
    }

    /// Like [`Simulator::eval_packed`] but exposes every node's value word,
    /// indexed by [`NodeId`]. Useful for error-distribution tables and
    /// internal-signal probing.
    pub fn node_values_packed(&mut self, inputs: &[u64], keys: &[u64]) -> &[u64] {
        self.run_packed(inputs, keys);
        &self.values
    }

    fn run_packed(&mut self, inputs: &[u64], keys: &[u64]) {
        let nl = self.netlist;
        assert_eq!(inputs.len(), nl.inputs().len(), "primary input width mismatch");
        assert_eq!(keys.len(), nl.key_inputs().len(), "key input width mismatch");
        for (i, &id) in nl.inputs().iter().enumerate() {
            self.values[id.index()] = inputs[i];
        }
        for (i, &id) in nl.key_inputs().iter().enumerate() {
            self.values[id.index()] = keys[i];
        }
        for &id in &self.order {
            let node = nl.node(id);
            match node.kind() {
                GateKind::Input | GateKind::KeyInput => {}
                kind => {
                    self.fanin_buf.clear();
                    for f in node.fanins() {
                        self.fanin_buf.push(self.values[f.index()]);
                    }
                    self.values[id.index()] = kind.eval_packed(&self.fanin_buf);
                }
            }
        }
    }
}

/// Packs boolean patterns (up to 64) into per-port words for
/// [`Simulator::eval_packed`]: `patterns[p][i]` is port `i` of pattern `p`,
/// and bit `p` of word `i` in the result carries it.
pub fn pack_patterns(patterns: &[Vec<bool>], width: usize) -> Vec<u64> {
    assert!(patterns.len() <= 64, "at most 64 patterns per packed word");
    let mut words = vec![0u64; width];
    for (p, pattern) in patterns.iter().enumerate() {
        assert_eq!(pattern.len(), width, "pattern width mismatch");
        for (i, &b) in pattern.iter().enumerate() {
            if b {
                words[i] |= 1 << p;
            }
        }
    }
    words
}

/// Unpacks per-port words (as produced by [`Simulator::eval_packed`]) back
/// into per-pattern boolean rows — the inverse of [`pack_patterns`] for the
/// first `count` patterns: row `p` element `i` is bit `p` of word `i`.
///
/// # Panics
///
/// Panics if `count` exceeds the 64 patterns a packed word can carry.
pub fn unpack_patterns(words: &[u64], count: usize) -> Vec<Vec<bool>> {
    assert!(count <= 64, "at most 64 patterns per packed word");
    (0..count).map(|p| words.iter().map(|&w| w >> p & 1 == 1).collect()).collect()
}

/// Expands a little-endian bit pattern of `width` bits from an integer:
/// bit `i` of `value` becomes element `i`.
pub fn bits_of(value: u64, width: usize) -> Vec<bool> {
    (0..width).map(|i| value >> i & 1 == 1).collect()
}

/// Folds a boolean slice back into an integer (inverse of [`bits_of`]).
///
/// # Panics
///
/// Panics if `bits` has more than 64 elements.
pub fn bits_to_u64(bits: &[bool]) -> u64 {
    assert!(bits.len() <= 64);
    bits.iter().enumerate().fold(0, |acc, (i, &b)| acc | (u64::from(b) << i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateKind;
    use crate::netlist::Netlist;

    fn full_adder() -> Netlist {
        let mut nl = Netlist::new("fa");
        let a = nl.add_input("a").unwrap();
        let b = nl.add_input("b").unwrap();
        let cin = nl.add_input("cin").unwrap();
        let ab = nl.add_gate("ab", GateKind::Xor, &[a, b]).unwrap();
        let sum = nl.add_gate("sum", GateKind::Xor, &[ab, cin]).unwrap();
        let and1 = nl.add_gate("and1", GateKind::And, &[a, b]).unwrap();
        let and2 = nl.add_gate("and2", GateKind::And, &[ab, cin]).unwrap();
        let cout = nl.add_gate("cout", GateKind::Or, &[and1, and2]).unwrap();
        nl.mark_output(sum).unwrap();
        nl.mark_output(cout).unwrap();
        nl
    }

    #[test]
    fn full_adder_truth_table() {
        let nl = full_adder();
        let mut sim = Simulator::new(&nl).unwrap();
        for pattern in 0..8u64 {
            let bits = bits_of(pattern, 3);
            let expected_sum = (pattern.count_ones() % 2) == 1;
            let expected_cout = pattern.count_ones() >= 2;
            let out = sim.eval(&bits, &[]);
            assert_eq!(out[0], expected_sum, "sum for {pattern:03b}");
            assert_eq!(out[1], expected_cout, "cout for {pattern:03b}");
        }
    }

    #[test]
    fn packed_agrees_with_scalar() {
        let nl = full_adder();
        let mut sim = Simulator::new(&nl).unwrap();
        // All 8 patterns in one packed evaluation.
        let patterns: Vec<Vec<bool>> = (0..8).map(|p| bits_of(p, 3)).collect();
        let packed_in = pack_patterns(&patterns, 3);
        let packed_out = sim.eval_packed(&packed_in, &[]);
        for (p, pattern) in patterns.iter().enumerate() {
            let scalar = sim.eval(pattern, &[]);
            for (o, &word) in packed_out.iter().enumerate() {
                assert_eq!(word >> p & 1 == 1, scalar[o], "pattern {p} output {o}");
            }
        }
    }

    #[test]
    fn unpack_inverts_pack() {
        let patterns: Vec<Vec<bool>> = (0..13).map(|p| bits_of(p * 5 % 32, 5)).collect();
        let words = pack_patterns(&patterns, 5);
        assert_eq!(unpack_patterns(&words, patterns.len()), patterns);
        // A shorter count unpacks a prefix.
        assert_eq!(unpack_patterns(&words, 3), patterns[..3].to_vec());
    }

    #[test]
    fn keys_are_separate_ports() {
        let mut nl = Netlist::new("locked_buf");
        let a = nl.add_input("a").unwrap();
        let k = nl.add_key_input("k").unwrap();
        let y = nl.add_gate("y", GateKind::Xor, &[a, k]).unwrap();
        nl.mark_output(y).unwrap();
        let mut sim = Simulator::new(&nl).unwrap();
        assert_eq!(sim.eval(&[true], &[false]), vec![true]);
        assert_eq!(sim.eval(&[true], &[true]), vec![false]);
    }

    #[test]
    #[should_panic(expected = "primary input width mismatch")]
    fn wrong_input_width_panics() {
        let nl = full_adder();
        let mut sim = Simulator::new(&nl).unwrap();
        let _ = sim.eval(&[true, false], &[]);
    }

    #[test]
    fn node_values_exposed() {
        let nl = full_adder();
        let mut sim = Simulator::new(&nl).unwrap();
        let vals = sim.node_values_packed(&[u64::MAX, u64::MAX, 0], &[]);
        let ab = nl.find("ab").unwrap();
        assert_eq!(vals[ab.index()], 0, "1 xor 1 = 0");
    }

    #[test]
    fn bits_round_trip() {
        for v in [0u64, 1, 5, 0b1011, 63] {
            assert_eq!(bits_to_u64(&bits_of(v, 6)), v);
        }
        assert_eq!(bits_of(5, 4), vec![true, false, true, false]);
    }

    #[test]
    fn constants_simulate() {
        let mut nl = Netlist::new("c");
        let one = nl.add_const("one", true).unwrap();
        let zero = nl.add_const("zero", false).unwrap();
        let y = nl.add_gate("y", GateKind::And, &[one, zero]).unwrap();
        nl.mark_output(y).unwrap();
        nl.mark_output(one).unwrap();
        let mut sim = Simulator::new(&nl).unwrap();
        assert_eq!(sim.eval(&[], &[]), vec![false, true]);
    }
}
