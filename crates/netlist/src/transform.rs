//! Netlist transformations: input cofactoring and logic simplification.
//!
//! Algorithm 1 of the paper pins `N` primary inputs to constants and then
//! re-synthesizes the netlist "to remove any redundant logic" before handing
//! it to the SAT attack. [`cofactor`] performs the pinning and
//! [`simplify`] performs the redundancy removal: constant folding,
//! double-negation and buffer collapsing, structural hashing (common
//! subexpression merging) and dead-logic elimination. The combined
//! [`cofactor_simplify`] is the `generate_conditional_netlist` step.
//!
//! All transformations preserve the netlist *interface*: the primary-input,
//! key-input and output lists keep their arity and order, so oracles and
//! attacks can treat original and transformed netlists interchangeably.

use std::collections::HashMap;

use crate::analysis::transitive_fanin;
use crate::gate::GateKind;
use crate::netlist::{Netlist, NetlistError, NodeId};

/// What a node of the old netlist became in the rebuilt netlist.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum Driver {
    Node(NodeId),
    Const(bool),
}

/// Size accounting for a simplification run.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SimplifyStats {
    /// Nodes before (including inputs).
    pub nodes_before: usize,
    /// Nodes after.
    pub nodes_after: usize,
    /// Gates before (excluding inputs/constants).
    pub gates_before: usize,
    /// Gates after.
    pub gates_after: usize,
}

impl SimplifyStats {
    /// Fraction of gates removed, in `[0, 1]`.
    pub fn gate_reduction(&self) -> f64 {
        if self.gates_before == 0 {
            0.0
        } else {
            1.0 - self.gates_after as f64 / self.gates_before as f64
        }
    }
}

/// Pins primary inputs to constants without any other rewriting.
///
/// The pinned inputs stay in the input list (so the interface is unchanged)
/// but no longer drive anything; their consumers read a constant node
/// instead. Use [`simplify`] afterwards — or [`cofactor_simplify`] — to
/// sweep the resulting dead logic.
///
/// # Errors
///
/// - [`NetlistError::NotAnInput`] if a pinned node is not a primary input.
/// - [`NetlistError::InvalidNode`] if a pinned id is out of range.
/// - [`NetlistError::Cycle`] if the netlist is cyclic.
pub fn cofactor(netlist: &Netlist, pins: &[(NodeId, bool)]) -> Result<Netlist, NetlistError> {
    for &(id, _) in pins {
        if id.index() >= netlist.num_nodes() {
            return Err(NetlistError::InvalidNode(id.index() as u32));
        }
        if !netlist.inputs().contains(&id) {
            return Err(NetlistError::NotAnInput { name: netlist.node_name(id).to_string() });
        }
    }
    let order = netlist.topological_order()?;
    let mut out = Netlist::new(format!("{}_cof", netlist.name()));
    let mut map: Vec<Option<NodeId>> = vec![None; netlist.num_nodes()];

    for &pi in netlist.inputs() {
        map[pi.index()] = Some(out.add_input(netlist.node_name(pi))?);
    }
    for &ki in netlist.key_inputs() {
        map[ki.index()] = Some(out.add_key_input(netlist.node_name(ki))?);
    }
    // Create one constant node per pinned input and redirect reads to it.
    for &(id, value) in pins {
        let name = fresh_name(&out, &format!("{}$pin", netlist.node_name(id)));
        let cid = out.add_const(name, value)?;
        map[id.index()] = Some(cid);
    }

    for id in order {
        let node = netlist.node(id);
        if node.kind().is_input() {
            continue;
        }
        let fanins: Vec<NodeId> =
            node.fanins().iter().map(|f| map[f.index()].expect("topo order")).collect();
        let new_id = match node.kind() {
            GateKind::Const(v) => out.add_const(netlist.node_name(id), v)?,
            kind => out.add_gate(netlist.node_name(id), kind, &fanins)?,
        };
        map[id.index()] = Some(new_id);
    }
    for &o in netlist.outputs() {
        let mapped = map[o.index()].expect("outputs are mapped");
        // A pinned input marked as output maps to its constant node, which
        // may coincide with another output's driver only via distinct nodes,
        // so marking cannot collide here.
        out.mark_output(mapped)?;
    }
    Ok(out)
}

/// Rewrites the netlist into an equivalent, usually smaller one:
/// constant folding, redundant-fanin removal, double-negation/buffer
/// collapsing, structural hashing, and dead-logic elimination.
///
/// The interface (inputs, key inputs, outputs: count and order) is
/// preserved. Output nodes keep their original names where possible.
///
/// # Errors
///
/// Returns [`NetlistError::Cycle`] if the netlist is cyclic.
pub fn simplify(netlist: &Netlist) -> Result<(Netlist, SimplifyStats), NetlistError> {
    let order = netlist.topological_order()?;
    let needed = transitive_fanin(netlist, netlist.outputs());
    let mut rb = Rebuilder::new(format!("{}_simp", netlist.name()));

    let mut map: Vec<Option<Driver>> = vec![None; netlist.num_nodes()];
    for &pi in netlist.inputs() {
        map[pi.index()] = Some(Driver::Node(rb.out.add_input(netlist.node_name(pi))?));
    }
    for &ki in netlist.key_inputs() {
        map[ki.index()] = Some(Driver::Node(rb.out.add_key_input(netlist.node_name(ki))?));
    }

    for id in order {
        let node = netlist.node(id);
        if node.kind().is_input() {
            continue;
        }
        if !needed[id.index()] {
            continue; // dead logic: don't rebuild
        }
        let fanins: Vec<Driver> =
            node.fanins().iter().map(|f| map[f.index()].expect("topo order")).collect();
        let name = netlist.node_name(id);
        let driver = rb.build(node.kind(), &fanins, name)?;
        map[id.index()] = Some(driver);
    }

    // Materialize outputs, preserving arity/order and names best-effort.
    for &o in netlist.outputs() {
        let name = netlist.node_name(o).to_string();
        let driver = map[o.index()].expect("output cone was rebuilt");
        let node = match driver {
            Driver::Const(v) => {
                let n = fresh_or(&rb.out, &name);
                rb.out.add_const(n, v)?
            }
            Driver::Node(n) => {
                if rb.out.outputs().contains(&n) {
                    // Two outputs collapsed onto one node: keep both ports by
                    // inserting an explicit buffer for the second.
                    let nm = fresh_or(&rb.out, &name);
                    rb.out.add_gate(nm, GateKind::Buf, &[n])?
                } else {
                    n
                }
            }
        };
        rb.out.mark_output(node)?;
    }

    // Folding can strand nodes that were live in the *input* cone (e.g. the
    // Not in And(a, ¬a) → 0); sweep them with a final dead-logic prune.
    let pruned = prune_dead(&rb.out)?;
    let stats = SimplifyStats {
        nodes_before: netlist.num_nodes(),
        nodes_after: pruned.num_nodes(),
        gates_before: netlist.num_gates(),
        gates_after: pruned.num_gates(),
    };
    Ok((pruned, stats))
}

/// Rebuilds a netlist keeping only the inputs and the transitive fanin of
/// its outputs (pure dead-logic elimination, no rewriting).
fn prune_dead(netlist: &Netlist) -> Result<Netlist, NetlistError> {
    let order = netlist.topological_order()?;
    let needed = transitive_fanin(netlist, netlist.outputs());
    let mut out = Netlist::new(netlist.name().to_string());
    let mut map: Vec<Option<NodeId>> = vec![None; netlist.num_nodes()];
    for &pi in netlist.inputs() {
        map[pi.index()] = Some(out.add_input(netlist.node_name(pi))?);
    }
    for &ki in netlist.key_inputs() {
        map[ki.index()] = Some(out.add_key_input(netlist.node_name(ki))?);
    }
    for id in order {
        let node = netlist.node(id);
        if node.kind().is_input() || !needed[id.index()] {
            continue;
        }
        let fanins: Vec<NodeId> =
            node.fanins().iter().map(|f| map[f.index()].expect("topo order")).collect();
        let new_id = match node.kind() {
            GateKind::Const(v) => out.add_const(netlist.node_name(id), v)?,
            kind => out.add_gate(netlist.node_name(id), kind, &fanins)?,
        };
        map[id.index()] = Some(new_id);
    }
    for &o in netlist.outputs() {
        out.mark_output(map[o.index()].expect("outputs are needed"))?;
    }
    Ok(out)
}

/// Hardwires every key input to the given constant value, producing a
/// *keyless* netlist (the "unlocked" circuit obtained by applying a key).
///
/// Unlike [`cofactor`], the pinned ports are removed from the interface:
/// the result has no key inputs and can be compared directly against an
/// original, never-locked design. Combine with [`simplify`] to sweep the
/// key logic away.
///
/// # Errors
///
/// - [`NetlistError::BadArity`] if `values` does not match the key count.
/// - [`NetlistError::Cycle`] if the netlist is cyclic.
pub fn pin_keys(netlist: &Netlist, values: &[bool]) -> Result<Netlist, NetlistError> {
    if values.len() != netlist.key_inputs().len() {
        return Err(NetlistError::BadArity {
            gate: "<key vector>".into(),
            kind: GateKind::KeyInput,
            expected: netlist.key_inputs().len(),
            got: values.len(),
        });
    }
    let order = netlist.topological_order()?;
    let mut out = Netlist::new(format!("{}_keyed", netlist.name()));
    let mut map: Vec<Option<NodeId>> = vec![None; netlist.num_nodes()];
    for &pi in netlist.inputs() {
        map[pi.index()] = Some(out.add_input(netlist.node_name(pi))?);
    }
    for (i, &ki) in netlist.key_inputs().iter().enumerate() {
        let name = fresh_or(&out, &format!("{}$pin", netlist.node_name(ki)));
        map[ki.index()] = Some(out.add_const(name, values[i])?);
    }
    for id in order {
        let node = netlist.node(id);
        if node.kind().is_input() {
            continue;
        }
        let fanins: Vec<NodeId> =
            node.fanins().iter().map(|f| map[f.index()].expect("topo order")).collect();
        let new_id = match node.kind() {
            GateKind::Const(v) => out.add_const(netlist.node_name(id), v)?,
            kind => out.add_gate(netlist.node_name(id), kind, &fanins)?,
        };
        map[id.index()] = Some(new_id);
    }
    for &o in netlist.outputs() {
        out.mark_output(map[o.index()].expect("outputs are mapped"))?;
    }
    Ok(out)
}

/// [`cofactor`] followed by [`simplify`]: the paper's
/// `generate_conditional_netlist` (Algorithm 1, line 4).
///
/// # Errors
///
/// As for [`cofactor`] and [`simplify`].
pub fn cofactor_simplify(
    netlist: &Netlist,
    pins: &[(NodeId, bool)],
) -> Result<(Netlist, SimplifyStats), NetlistError> {
    let pinned = cofactor(netlist, pins)?;
    simplify(&pinned)
}

/// Returns `base` if unused in `nl`, otherwise `base$2`, `base$3`, ….
fn fresh_or(nl: &Netlist, base: &str) -> String {
    if nl.find(base).is_none() {
        return base.to_string();
    }
    fresh_name(nl, base)
}

/// Returns a name derived from `base` that is unused in `nl`.
fn fresh_name(nl: &Netlist, base: &str) -> String {
    let mut i = 2usize;
    loop {
        let cand = format!("{base}${i}");
        if nl.find(&cand).is_none() {
            return cand;
        }
        i += 1;
    }
}

/// Incremental netlist rebuilder with folding and structural hashing.
struct Rebuilder {
    out: Netlist,
    strash: HashMap<(GateKind, Vec<NodeId>), NodeId>,
}

impl Rebuilder {
    fn new(name: String) -> Rebuilder {
        Rebuilder { out: Netlist::new(name), strash: HashMap::new() }
    }

    /// True if node `a` in the rebuilt netlist is `Not(b)`.
    fn is_not_of(&self, a: NodeId, b: NodeId) -> bool {
        let n = self.out.node(a);
        n.kind() == GateKind::Not && n.fanins()[0] == b
    }

    /// True if `a` and `b` are structurally complementary.
    fn complementary(&self, a: NodeId, b: NodeId) -> bool {
        self.is_not_of(a, b) || self.is_not_of(b, a)
    }

    /// Creates (or reuses via structural hashing) a gate node.
    fn emit(
        &mut self,
        kind: GateKind,
        mut fanins: Vec<NodeId>,
        name_hint: &str,
    ) -> Result<Driver, NetlistError> {
        if kind.is_symmetric() {
            fanins.sort_unstable();
        }
        let key = (kind, fanins.clone());
        if let Some(&existing) = self.strash.get(&key) {
            return Ok(Driver::Node(existing));
        }
        let name = fresh_or(&self.out, name_hint);
        let id = self.out.add_gate(name, kind, &fanins)?;
        self.strash.insert(key, id);
        Ok(Driver::Node(id))
    }

    /// Builds `Not(d)` with folding (`Not(Const)`, `Not(Not(x))`).
    fn make_not(&mut self, d: Driver, name_hint: &str) -> Result<Driver, NetlistError> {
        match d {
            Driver::Const(v) => Ok(Driver::Const(!v)),
            Driver::Node(x) => {
                let n = self.out.node(x);
                if n.kind() == GateKind::Not {
                    Ok(Driver::Node(n.fanins()[0]))
                } else {
                    self.emit(GateKind::Not, vec![x], name_hint)
                }
            }
        }
    }

    /// Folds and emits one gate of the old netlist.
    fn build(
        &mut self,
        kind: GateKind,
        fanins: &[Driver],
        name: &str,
    ) -> Result<Driver, NetlistError> {
        match kind {
            GateKind::Input | GateKind::KeyInput => unreachable!("inputs handled by caller"),
            GateKind::Const(v) => Ok(Driver::Const(v)),
            GateKind::Buf => Ok(fanins[0]),
            GateKind::Not => self.make_not(fanins[0], name),
            GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
                self.build_and_or(kind, fanins, name)
            }
            GateKind::Xor | GateKind::Xnor => self.build_parity(kind, fanins, name),
            GateKind::Mux => self.build_mux(fanins, name),
        }
    }

    fn build_and_or(
        &mut self,
        kind: GateKind,
        fanins: &[Driver],
        name: &str,
    ) -> Result<Driver, NetlistError> {
        let (is_and, inverting) = match kind {
            GateKind::And => (true, false),
            GateKind::Nand => (true, true),
            GateKind::Or => (false, false),
            GateKind::Nor => (false, true),
            _ => unreachable!(),
        };
        // For And: a false input dominates; true inputs are dropped.
        // For Or (the dual): swap the roles.
        let dominant = !is_and;
        let mut nodes: Vec<NodeId> = Vec::with_capacity(fanins.len());
        for &d in fanins {
            match d {
                Driver::Const(v) => {
                    if v == dominant {
                        return Ok(Driver::Const(dominant ^ inverting));
                    }
                    // neutral constant: drop
                }
                Driver::Node(x) => nodes.push(x),
            }
        }
        nodes.sort_unstable();
        nodes.dedup(); // x ∧ x = x, x ∨ x = x
                       // Complementary pair: x ∧ ¬x = 0, x ∨ ¬x = 1.
        for i in 0..nodes.len() {
            for j in (i + 1)..nodes.len() {
                if self.complementary(nodes[i], nodes[j]) {
                    return Ok(Driver::Const(dominant ^ inverting));
                }
            }
        }
        match nodes.len() {
            0 => Ok(Driver::Const(!dominant ^ inverting)),
            1 => {
                if inverting {
                    self.make_not(Driver::Node(nodes[0]), name)
                } else {
                    Ok(Driver::Node(nodes[0]))
                }
            }
            _ => {
                let out_kind = match (is_and, inverting) {
                    (true, false) => GateKind::And,
                    (true, true) => GateKind::Nand,
                    (false, false) => GateKind::Or,
                    (false, true) => GateKind::Nor,
                };
                self.emit(out_kind, nodes, name)
            }
        }
    }

    fn build_parity(
        &mut self,
        kind: GateKind,
        fanins: &[Driver],
        name: &str,
    ) -> Result<Driver, NetlistError> {
        let mut invert = kind == GateKind::Xnor;
        let mut nodes: Vec<NodeId> = Vec::with_capacity(fanins.len());
        for &d in fanins {
            match d {
                Driver::Const(v) => invert ^= v,
                Driver::Node(x) => nodes.push(x),
            }
        }
        // x ⊕ x cancels: keep each node iff it occurs an odd number of times.
        nodes.sort_unstable();
        let mut kept: Vec<NodeId> = Vec::with_capacity(nodes.len());
        let mut i = 0;
        while i < nodes.len() {
            let mut j = i;
            while j < nodes.len() && nodes[j] == nodes[i] {
                j += 1;
            }
            if (j - i) % 2 == 1 {
                kept.push(nodes[i]);
            }
            i = j;
        }
        // x ⊕ ¬x = 1: cancel complementary pairs.
        let mut nodes = kept;
        'outer: loop {
            for i in 0..nodes.len() {
                for j in (i + 1)..nodes.len() {
                    if self.complementary(nodes[i], nodes[j]) {
                        nodes.remove(j);
                        nodes.remove(i);
                        invert = !invert;
                        continue 'outer;
                    }
                }
            }
            break;
        }
        match nodes.len() {
            0 => Ok(Driver::Const(invert)),
            1 => {
                if invert {
                    self.make_not(Driver::Node(nodes[0]), name)
                } else {
                    Ok(Driver::Node(nodes[0]))
                }
            }
            _ => {
                let out_kind = if invert { GateKind::Xnor } else { GateKind::Xor };
                self.emit(out_kind, nodes, name)
            }
        }
    }

    fn build_mux(&mut self, fanins: &[Driver], name: &str) -> Result<Driver, NetlistError> {
        let (s, d0, d1) = (fanins[0], fanins[1], fanins[2]);
        match s {
            Driver::Const(b) => Ok(if b { d1 } else { d0 }),
            Driver::Node(sn) => {
                if d0 == d1 {
                    return Ok(d0);
                }
                match (d0, d1) {
                    (Driver::Const(a), Driver::Const(b)) => {
                        debug_assert_ne!(a, b, "equal consts handled above");
                        if b {
                            // Mux(s, 0, 1) = s
                            return Ok(s);
                        }
                        // Mux(s, 1, 0) = ¬s
                        self.make_not(s, name)
                    }
                    (Driver::Const(false), Driver::Node(y)) => {
                        // Mux(s, 0, y) = s ∧ y
                        self.build_and_or(
                            GateKind::And,
                            &[Driver::Node(sn), Driver::Node(y)],
                            name,
                        )
                    }
                    (Driver::Const(true), Driver::Node(y)) => {
                        // Mux(s, 1, y) = ¬s ∨ y
                        let ns = self.make_not(s, name)?;
                        self.build_and_or(GateKind::Or, &[ns, Driver::Node(y)], name)
                    }
                    (Driver::Node(x), Driver::Const(true)) => {
                        // Mux(s, x, 1) = s ∨ x
                        self.build_and_or(
                            GateKind::Or,
                            &[Driver::Node(sn), Driver::Node(x)],
                            name,
                        )
                    }
                    (Driver::Node(x), Driver::Const(false)) => {
                        // Mux(s, x, 0) = ¬s ∧ x
                        let ns = self.make_not(s, name)?;
                        self.build_and_or(GateKind::And, &[ns, Driver::Node(x)], name)
                    }
                    (Driver::Node(x), Driver::Node(y)) => {
                        if self.complementary(x, y) {
                            // Mux(s, x, ¬x) = s ⊕ x; Mux(s, ¬y, y) = s ⊕ ¬y.
                            return self.build_parity(
                                GateKind::Xor,
                                &[Driver::Node(sn), Driver::Node(x)],
                                name,
                            );
                        }
                        if x == sn {
                            // Mux(s, s, y) = s ∧ y
                            return self.build_and_or(
                                GateKind::And,
                                &[Driver::Node(sn), Driver::Node(y)],
                                name,
                            );
                        }
                        if y == sn {
                            // Mux(s, x, s) = s ∨ x
                            return self.build_and_or(
                                GateKind::Or,
                                &[Driver::Node(sn), Driver::Node(x)],
                                name,
                            );
                        }
                        let fanins = vec![sn, x, y];
                        self.emit(GateKind::Mux, fanins, name)
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{bits_of, Simulator};

    /// Exhaustively checks that two netlists with identical interfaces
    /// compute the same function (inputs + keys ≤ 16 bits).
    fn assert_equivalent(a: &Netlist, b: &Netlist) {
        assert_eq!(a.inputs().len(), b.inputs().len());
        assert_eq!(a.key_inputs().len(), b.key_inputs().len());
        assert_eq!(a.outputs().len(), b.outputs().len());
        let ni = a.inputs().len();
        let nk = a.key_inputs().len();
        assert!(ni + nk <= 16, "exhaustive check limited to 16 bits");
        let mut sa = Simulator::new(a).unwrap();
        let mut sb = Simulator::new(b).unwrap();
        for v in 0..(1u64 << (ni + nk)) {
            let bits = bits_of(v, ni + nk);
            let (i, k) = bits.split_at(ni);
            assert_eq!(sa.eval(i, k), sb.eval(i, k), "differs at {v:b}");
        }
    }

    fn example() -> Netlist {
        let mut nl = Netlist::new("ex");
        let a = nl.add_input("a").unwrap();
        let b = nl.add_input("b").unwrap();
        let c = nl.add_input("c").unwrap();
        let nb = nl.add_gate("nb", GateKind::Not, &[b]).unwrap();
        let nnb = nl.add_gate("nnb", GateKind::Not, &[nb]).unwrap();
        let g1 = nl.add_gate("g1", GateKind::And, &[a, nnb]).unwrap();
        let g2 = nl.add_gate("g2", GateKind::And, &[a, b]).unwrap(); // same as g1 after NotNot
        let g3 = nl.add_gate("g3", GateKind::Or, &[g1, g2]).unwrap(); // = g1
        let g4 = nl.add_gate("g4", GateKind::Xor, &[g3, c]).unwrap();
        let dead = nl.add_gate("dead", GateKind::Nand, &[a, c]).unwrap();
        let _ = dead;
        nl.mark_output(g4).unwrap();
        nl
    }

    #[test]
    fn simplify_preserves_function() {
        let nl = example();
        let (simp, stats) = simplify(&nl).unwrap();
        assert_equivalent(&nl, &simp);
        assert!(stats.gates_after < stats.gates_before);
        // NotNot collapsed, g1/g2 merged, g3 aliased, dead gate gone:
        // remaining gates are just the Xor (and possibly the Not b).
        assert!(simp.num_gates() <= 2, "got {}", simp.num_gates());
        assert!(simp.validate().is_ok());
    }

    #[test]
    fn simplify_is_idempotent_in_size() {
        let nl = example();
        let (s1, _) = simplify(&nl).unwrap();
        let (s2, _) = simplify(&s1).unwrap();
        assert_eq!(s1.num_nodes(), s2.num_nodes());
        assert_equivalent(&s1, &s2);
    }

    #[test]
    fn cofactor_pins_inputs() {
        let nl = example();
        let a = nl.find("a").unwrap();
        let cof = cofactor(&nl, &[(a, true)]).unwrap();
        // Interface unchanged.
        assert_eq!(cof.inputs().len(), nl.inputs().len());
        assert_eq!(cof.outputs().len(), 1);
        // The cofactored circuit ignores input a.
        let mut sim = Simulator::new(&cof).unwrap();
        let mut orig = Simulator::new(&nl).unwrap();
        for v in 0..8u64 {
            let bits = bits_of(v, 3);
            let mut forced = bits.clone();
            forced[0] = true;
            assert_eq!(sim.eval(&bits, &[]), orig.eval(&forced, &[]), "pattern {v:b}");
        }
        assert!(cof.validate().is_ok());
    }

    #[test]
    fn cofactor_rejects_non_inputs() {
        let nl = example();
        let g1 = nl.find("g1").unwrap();
        assert!(matches!(cofactor(&nl, &[(g1, false)]), Err(NetlistError::NotAnInput { .. })));
    }

    #[test]
    fn cofactor_simplify_shrinks() {
        let nl = example();
        let a = nl.find("a").unwrap();
        // a = 0 kills both And gates; the output degenerates to c.
        let (cs, stats) = cofactor_simplify(&nl, &[(a, false)]).unwrap();
        assert_eq!(cs.num_gates(), 0, "xor with constant-0 side folds to buffer/alias");
        assert!(stats.gate_reduction() > 0.9);
        let mut sim = Simulator::new(&cs).unwrap();
        // Output equals c regardless of a and b.
        for v in 0..8u64 {
            let bits = bits_of(v, 3);
            assert_eq!(sim.eval(&bits, &[])[0], bits[2]);
        }
    }

    #[test]
    fn and_with_complement_folds_to_false() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a").unwrap();
        let na = nl.add_gate("na", GateKind::Not, &[a]).unwrap();
        let g = nl.add_gate("g", GateKind::And, &[a, na]).unwrap();
        nl.mark_output(g).unwrap();
        let (s, _) = simplify(&nl).unwrap();
        assert_eq!(s.num_gates(), 0);
        let mut sim = Simulator::new(&s).unwrap();
        assert_eq!(sim.eval(&[true], &[]), vec![false]);
        assert_eq!(sim.eval(&[false], &[]), vec![false]);
    }

    #[test]
    fn xor_cancellation() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a").unwrap();
        let b = nl.add_input("b").unwrap();
        // a ⊕ b ⊕ a = b
        let g = nl.add_gate("g", GateKind::Xor, &[a, b, a]).unwrap();
        nl.mark_output(g).unwrap();
        let (s, _) = simplify(&nl).unwrap();
        assert_eq!(s.num_gates(), 0);
        assert_equivalent(&nl, &s);
    }

    #[test]
    fn xnor_with_complement() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a").unwrap();
        let b = nl.add_input("b").unwrap();
        let na = nl.add_gate("na", GateKind::Not, &[a]).unwrap();
        // Xnor(a, ¬a, b) = ¬(a ⊕ ¬a ⊕ b) = ¬(1 ⊕ b) = b
        let g = nl.add_gate("g", GateKind::Xnor, &[a, na, b]).unwrap();
        nl.mark_output(g).unwrap();
        let (s, _) = simplify(&nl).unwrap();
        assert_equivalent(&nl, &s);
        assert_eq!(s.num_gates(), 0);
    }

    #[test]
    fn mux_folds() {
        // Mux with constant select folds away entirely.
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a").unwrap();
        let b = nl.add_input("b").unwrap();
        let one = nl.add_const("one", true).unwrap();
        let m = nl.add_gate("m", GateKind::Mux, &[one, a, b]).unwrap();
        nl.mark_output(m).unwrap();
        let (s, _) = simplify(&nl).unwrap();
        assert_eq!(s.num_gates(), 0);
        let mut sim = Simulator::new(&s).unwrap();
        assert_eq!(sim.eval(&[false, true], &[]), vec![true], "selects b");
    }

    #[test]
    fn mux_of_complements_becomes_xor() {
        let mut nl = Netlist::new("t");
        let s = nl.add_input("s").unwrap();
        let x = nl.add_input("x").unwrap();
        let nx = nl.add_gate("nx", GateKind::Not, &[x]).unwrap();
        let m = nl.add_gate("m", GateKind::Mux, &[s, x, nx]).unwrap();
        nl.mark_output(m).unwrap();
        let (simp, _) = simplify(&nl).unwrap();
        assert_equivalent(&nl, &simp);
        assert_eq!(simp.num_gates(), 1, "one Xor gate");
    }

    #[test]
    fn outputs_sharing_a_driver_stay_distinct_ports() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a").unwrap();
        let b = nl.add_input("b").unwrap();
        let g1 = nl.add_gate("g1", GateKind::And, &[a, b]).unwrap();
        let g2 = nl.add_gate("g2", GateKind::And, &[b, a]).unwrap(); // merges with g1
        nl.mark_output(g1).unwrap();
        nl.mark_output(g2).unwrap();
        let (s, _) = simplify(&nl).unwrap();
        assert_eq!(s.outputs().len(), 2);
        assert_equivalent(&nl, &s);
    }

    #[test]
    fn constant_output_materialized() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a").unwrap();
        let na = nl.add_gate("na", GateKind::Not, &[a]).unwrap();
        let g = nl.add_gate("g", GateKind::Or, &[a, na]).unwrap();
        nl.mark_output(g).unwrap();
        let (s, _) = simplify(&nl).unwrap();
        assert_eq!(s.outputs().len(), 1);
        let mut sim = Simulator::new(&s).unwrap();
        assert_eq!(sim.eval(&[false], &[]), vec![true]);
    }

    #[test]
    fn interface_order_is_preserved() {
        let nl = example();
        let (s, _) = simplify(&nl).unwrap();
        for (x, y) in nl.inputs().iter().zip(s.inputs()) {
            assert_eq!(nl.node_name(*x), s.node_name(*y));
        }
    }
}

#[cfg(test)]
mod pin_keys_tests {
    use super::*;
    use crate::sim::{bits_of, Simulator};

    #[test]
    fn pin_keys_removes_key_ports() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a").unwrap();
        let k0 = nl.add_key_input("k0").unwrap();
        let k1 = nl.add_key_input("k1").unwrap();
        let x = nl.add_gate("x", GateKind::Xor, &[a, k0]).unwrap();
        let y = nl.add_gate("y", GateKind::Xnor, &[x, k1]).unwrap();
        nl.mark_output(y).unwrap();

        let keyed = pin_keys(&nl, &[true, false]).unwrap();
        assert!(keyed.key_inputs().is_empty());
        assert_eq!(keyed.inputs().len(), 1);
        let mut orig = Simulator::new(&nl).unwrap();
        let mut pinned = Simulator::new(&keyed).unwrap();
        for v in 0..2u64 {
            let bits = bits_of(v, 1);
            assert_eq!(pinned.eval(&bits, &[]), orig.eval(&bits, &[true, false]));
        }
    }

    #[test]
    fn pin_keys_checks_width() {
        let mut nl = Netlist::new("t");
        let _ = nl.add_input("a").unwrap();
        let _ = nl.add_key_input("k0").unwrap();
        assert!(matches!(pin_keys(&nl, &[]), Err(NetlistError::BadArity { .. })));
    }

    #[test]
    fn pin_keys_then_simplify_sweeps_key_logic() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a").unwrap();
        let k = nl.add_key_input("k").unwrap();
        let x = nl.add_gate("x", GateKind::Xor, &[a, k]).unwrap();
        nl.mark_output(x).unwrap();
        let keyed = pin_keys(&nl, &[false]).unwrap();
        let (simp, _) = simplify(&keyed).unwrap();
        // Xor with constant 0 folds to a plain wire.
        assert_eq!(simp.num_gates(), 0);
    }
}
