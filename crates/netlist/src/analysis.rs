//! Structural analysis: cones, levels, and netlist statistics.
//!
//! The multi-key attack's split-port selection (fan-out cone analysis, §4 of
//! the paper) is built from these primitives: it ranks primary inputs by how
//! many *key-controlled* gates lie in their transitive fanout.

use std::collections::HashMap;

use crate::gate::GateKind;
use crate::netlist::{Netlist, NetlistError, NodeId};

/// Computes the transitive-fanout membership mask of a seed set: entry `i`
/// is true iff node `i` is one of the seeds or reachable from them through
/// fanout edges.
pub fn transitive_fanout(netlist: &Netlist, seeds: &[NodeId]) -> Vec<bool> {
    let fanouts = netlist.fanout_adjacency();
    let mut mask = vec![false; netlist.num_nodes()];
    let mut stack: Vec<NodeId> = Vec::new();
    for &s in seeds {
        if !mask[s.index()] {
            mask[s.index()] = true;
            stack.push(s);
        }
    }
    while let Some(id) = stack.pop() {
        for &out in &fanouts[id.index()] {
            if !mask[out.index()] {
                mask[out.index()] = true;
                stack.push(out);
            }
        }
    }
    mask
}

/// Computes the transitive-fanin membership mask of a seed set (the cone of
/// influence): entry `i` is true iff node `i` is a seed or feeds one.
pub fn transitive_fanin(netlist: &Netlist, seeds: &[NodeId]) -> Vec<bool> {
    let mut mask = vec![false; netlist.num_nodes()];
    let mut stack: Vec<NodeId> = Vec::new();
    for &s in seeds {
        if !mask[s.index()] {
            mask[s.index()] = true;
            stack.push(s);
        }
    }
    while let Some(id) = stack.pop() {
        for &f in netlist.node(id).fanins() {
            if !mask[f.index()] {
                mask[f.index()] = true;
                stack.push(f);
            }
        }
    }
    mask
}

/// The mask of key-controlled nodes: everything in the transitive fanout of
/// any key input.
pub fn key_controlled_mask(netlist: &Netlist) -> Vec<bool> {
    transitive_fanout(netlist, netlist.key_inputs())
}

/// For every primary input, the number of key-controlled *gates* in its
/// transitive fanout cone — the ranking metric of the paper's fan-out cone
/// analysis. Returns `(input, count)` pairs in input declaration order.
pub fn key_cone_influence(netlist: &Netlist) -> Vec<(NodeId, usize)> {
    let key_mask = key_controlled_mask(netlist);
    netlist
        .inputs()
        .iter()
        .map(|&pi| {
            let cone = transitive_fanout(netlist, &[pi]);
            let count = netlist
                .node_ids()
                .filter(|&id| {
                    cone[id.index()]
                        && key_mask[id.index()]
                        && !netlist.node(id).kind().is_input()
                })
                .count();
            (pi, count)
        })
        .collect()
}

/// Computes each node's logic level: inputs and constants at level 0, every
/// gate one above its deepest fanin.
///
/// # Errors
///
/// Returns [`NetlistError::Cycle`] for cyclic netlists.
pub fn levels(netlist: &Netlist) -> Result<Vec<u32>, NetlistError> {
    let order = netlist.topological_order()?;
    let mut level = vec![0u32; netlist.num_nodes()];
    for id in order {
        let node = netlist.node(id);
        if !node.fanins().is_empty() {
            level[id.index()] =
                1 + node.fanins().iter().map(|f| level[f.index()]).max().expect("non-empty");
        }
    }
    Ok(level)
}

/// The combinational depth: the maximum level over all outputs.
///
/// # Errors
///
/// Returns [`NetlistError::Cycle`] for cyclic netlists.
pub fn depth(netlist: &Netlist) -> Result<u32, NetlistError> {
    let level = levels(netlist)?;
    Ok(netlist.outputs().iter().map(|o| level[o.index()]).max().unwrap_or(0))
}

/// Summary statistics of a netlist.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NetlistStats {
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of key inputs.
    pub key_inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Number of logic gates (excluding inputs and constants).
    pub gates: usize,
    /// Combinational depth.
    pub depth: u32,
    /// Gate counts per kind (display name → count).
    pub gates_by_kind: HashMap<&'static str, usize>,
}

impl NetlistStats {
    /// Gathers statistics for a netlist.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Cycle`] for cyclic netlists.
    pub fn of(netlist: &Netlist) -> Result<NetlistStats, NetlistError> {
        let mut gates_by_kind: HashMap<&'static str, usize> = HashMap::new();
        for id in netlist.node_ids() {
            let kind = netlist.node(id).kind();
            if let Some(name) = kind.bench_name() {
                if !matches!(kind, GateKind::Const(_)) {
                    *gates_by_kind.entry(name).or_insert(0) += 1;
                }
            }
        }
        Ok(NetlistStats {
            inputs: netlist.inputs().len(),
            key_inputs: netlist.key_inputs().len(),
            outputs: netlist.outputs().len(),
            gates: netlist.num_gates(),
            depth: depth(netlist)?,
            gates_by_kind,
        })
    }
}

impl std::fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} PI, {} key, {} PO, {} gates, depth {}",
            self.inputs, self.key_inputs, self.outputs, self.gates, self.depth
        )?;
        let mut kinds: Vec<_> = self.gates_by_kind.iter().collect();
        kinds.sort();
        for (name, count) in kinds {
            write!(f, ", {name}:{count}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateKind;

    /// a ──┐
    ///     AND ── NOT ── out
    /// b ──┘
    /// k ──XOR(out of cone of a? no: XOR reads the AND)
    fn sample() -> (Netlist, NodeId, NodeId, NodeId, NodeId, NodeId) {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a").unwrap();
        let b = nl.add_input("b").unwrap();
        let k = nl.add_key_input("k").unwrap();
        let g = nl.add_gate("g", GateKind::And, &[a, b]).unwrap();
        let x = nl.add_gate("x", GateKind::Xor, &[g, k]).unwrap();
        let y = nl.add_gate("y", GateKind::Not, &[x]).unwrap();
        nl.mark_output(y).unwrap();
        (nl, a, b, k, g, y)
    }

    #[test]
    fn fanout_cone_membership() {
        let (nl, a, _b, _k, g, y) = sample();
        let mask = transitive_fanout(&nl, &[a]);
        assert!(mask[a.index()]);
        assert!(mask[g.index()]);
        assert!(mask[y.index()]);
        let x = nl.find("x").unwrap();
        assert!(mask[x.index()]);
        let b = nl.find("b").unwrap();
        assert!(!mask[b.index()], "sibling input not in cone");
    }

    #[test]
    fn fanin_cone_membership() {
        let (nl, a, b, k, _g, y) = sample();
        let mask = transitive_fanin(&nl, &[y]);
        for id in [a, b, k, y] {
            assert!(mask[id.index()]);
        }
        // A dangling node is not in the output cone.
        let mut nl2 = nl.clone();
        let dangling = nl2.add_gate("dang", GateKind::Not, &[a]).unwrap();
        let mask2 = transitive_fanin(&nl2, &[y]);
        assert!(!mask2[dangling.index()]);
    }

    #[test]
    fn key_mask_covers_downstream_only() {
        let (nl, a, _b, k, g, y) = sample();
        let mask = key_controlled_mask(&nl);
        assert!(mask[k.index()]);
        assert!(mask[y.index()]);
        let x = nl.find("x").unwrap();
        assert!(mask[x.index()]);
        assert!(!mask[g.index()], "AND is upstream of the key gate");
        assert!(!mask[a.index()]);
    }

    #[test]
    fn influence_counts_key_controlled_gates() {
        let (nl, a, b, _k, _g, _y) = sample();
        let influence = key_cone_influence(&nl);
        let by_id: HashMap<NodeId, usize> = influence.into_iter().collect();
        // Both a and b reach x and y (2 key-controlled gates each).
        assert_eq!(by_id[&a], 2);
        assert_eq!(by_id[&b], 2);
    }

    #[test]
    fn levels_and_depth() {
        let (nl, a, _b, _k, g, y) = sample();
        let lv = levels(&nl).unwrap();
        assert_eq!(lv[a.index()], 0);
        assert_eq!(lv[g.index()], 1);
        assert_eq!(lv[y.index()], 3);
        assert_eq!(depth(&nl).unwrap(), 3);
    }

    #[test]
    fn stats_summary() {
        let (nl, ..) = sample();
        let stats = NetlistStats::of(&nl).unwrap();
        assert_eq!(stats.inputs, 2);
        assert_eq!(stats.key_inputs, 1);
        assert_eq!(stats.gates, 3);
        assert_eq!(stats.depth, 3);
        assert_eq!(stats.gates_by_kind["AND"], 1);
        let display = stats.to_string();
        assert!(display.contains("2 PI"));
        assert!(display.contains("AND:1"));
    }
}
