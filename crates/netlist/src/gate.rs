//! Gate types and their Boolean semantics.

use std::fmt;

/// The function computed by a netlist node.
///
/// `And`, `Nand`, `Or`, `Nor`, `Xor`, `Xnor` are n-ary (≥ 1 fanin; the
/// 1-input forms degenerate to `Buf`/`Not`). `Xor`/`Xnor` over more than two
/// fanins follow the ISCAS convention: parity and its complement.
/// `Mux` has exactly three fanins `(sel, d0, d1)` and selects `d1` when
/// `sel` is true.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum GateKind {
    /// A primary input (no fanins).
    Input,
    /// A key input added by a locking scheme (no fanins).
    KeyInput,
    /// A constant driver.
    Const(bool),
    /// Identity (1 fanin).
    Buf,
    /// Negation (1 fanin).
    Not,
    /// Conjunction.
    And,
    /// Negated conjunction.
    Nand,
    /// Disjunction.
    Or,
    /// Negated disjunction.
    Nor,
    /// Parity.
    Xor,
    /// Negated parity.
    Xnor,
    /// 2:1 multiplexer `(sel, d0, d1)`.
    Mux,
}

impl GateKind {
    /// The required fanin count, or `None` for n-ary gates.
    pub fn arity(self) -> Option<usize> {
        match self {
            GateKind::Input | GateKind::KeyInput | GateKind::Const(_) => Some(0),
            GateKind::Buf | GateKind::Not => Some(1),
            GateKind::Mux => Some(3),
            GateKind::And
            | GateKind::Nand
            | GateKind::Or
            | GateKind::Nor
            | GateKind::Xor
            | GateKind::Xnor => None,
        }
    }

    /// True for the gates whose value does not depend on fanin order.
    pub fn is_symmetric(self) -> bool {
        matches!(
            self,
            GateKind::And
                | GateKind::Nand
                | GateKind::Or
                | GateKind::Nor
                | GateKind::Xor
                | GateKind::Xnor
        )
    }

    /// True for inputs (primary or key).
    pub fn is_input(self) -> bool {
        matches!(self, GateKind::Input | GateKind::KeyInput)
    }

    /// True for gates that invert their "core" function
    /// (`Nand`/`Nor`/`Xnor`/`Not`).
    pub fn is_inverting(self) -> bool {
        matches!(self, GateKind::Nand | GateKind::Nor | GateKind::Xnor | GateKind::Not)
    }

    /// Evaluates the gate over boolean fanin values.
    ///
    /// # Panics
    ///
    /// Panics if the slice length is inconsistent with [`GateKind::arity`],
    /// or when evaluating an input (inputs have no local function).
    pub fn eval(self, fanins: &[bool]) -> bool {
        match self {
            GateKind::Input | GateKind::KeyInput => {
                panic!("inputs are not evaluated; supply their values externally")
            }
            GateKind::Const(v) => v,
            GateKind::Buf => fanins[0],
            GateKind::Not => !fanins[0],
            GateKind::And => fanins.iter().all(|&b| b),
            GateKind::Nand => !fanins.iter().all(|&b| b),
            GateKind::Or => fanins.iter().any(|&b| b),
            GateKind::Nor => !fanins.iter().any(|&b| b),
            GateKind::Xor => fanins.iter().fold(false, |acc, &b| acc ^ b),
            GateKind::Xnor => !fanins.iter().fold(false, |acc, &b| acc ^ b),
            GateKind::Mux => {
                if fanins[0] {
                    fanins[2]
                } else {
                    fanins[1]
                }
            }
        }
    }

    /// Evaluates the gate over 64 packed patterns at once (one per bit).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`GateKind::eval`].
    pub fn eval_packed(self, fanins: &[u64]) -> u64 {
        match self {
            GateKind::Input | GateKind::KeyInput => {
                panic!("inputs are not evaluated; supply their values externally")
            }
            GateKind::Const(v) => {
                if v {
                    u64::MAX
                } else {
                    0
                }
            }
            GateKind::Buf => fanins[0],
            GateKind::Not => !fanins[0],
            GateKind::And => fanins.iter().fold(u64::MAX, |acc, &w| acc & w),
            GateKind::Nand => !fanins.iter().fold(u64::MAX, |acc, &w| acc & w),
            GateKind::Or => fanins.iter().fold(0, |acc, &w| acc | w),
            GateKind::Nor => !fanins.iter().fold(0, |acc, &w| acc | w),
            GateKind::Xor => fanins.iter().fold(0, |acc, &w| acc ^ w),
            GateKind::Xnor => !fanins.iter().fold(0, |acc, &w| acc ^ w),
            GateKind::Mux => (fanins[0] & fanins[2]) | (!fanins[0] & fanins[1]),
        }
    }

    /// The `.bench` keyword for this gate, if it has one.
    pub fn bench_name(self) -> Option<&'static str> {
        match self {
            GateKind::Buf => Some("BUF"),
            GateKind::Not => Some("NOT"),
            GateKind::And => Some("AND"),
            GateKind::Nand => Some("NAND"),
            GateKind::Or => Some("OR"),
            GateKind::Nor => Some("NOR"),
            GateKind::Xor => Some("XOR"),
            GateKind::Xnor => Some("XNOR"),
            GateKind::Mux => Some("MUX"),
            GateKind::Const(false) => Some("CONST0"),
            GateKind::Const(true) => Some("CONST1"),
            GateKind::Input | GateKind::KeyInput => None,
        }
    }

    /// Parses a `.bench` gate keyword (case-insensitive; `BUFF` accepted).
    pub fn from_bench_name(name: &str) -> Option<GateKind> {
        match name.to_ascii_uppercase().as_str() {
            "BUF" | "BUFF" => Some(GateKind::Buf),
            "NOT" | "INV" => Some(GateKind::Not),
            "AND" => Some(GateKind::And),
            "NAND" => Some(GateKind::Nand),
            "OR" => Some(GateKind::Or),
            "NOR" => Some(GateKind::Nor),
            "XOR" => Some(GateKind::Xor),
            "XNOR" => Some(GateKind::Xnor),
            "MUX" => Some(GateKind::Mux),
            "CONST0" | "GND" => Some(GateKind::Const(false)),
            "CONST1" | "VDD" | "VCC" => Some(GateKind::Const(true)),
            _ => None,
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GateKind::Input => write!(f, "INPUT"),
            GateKind::KeyInput => write!(f, "KEYINPUT"),
            other => write!(f, "{}", other.bench_name().expect("non-input gates have names")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truth_tables_two_input() {
        let cases = [
            (GateKind::And, [false, false, false, true]),
            (GateKind::Nand, [true, true, true, false]),
            (GateKind::Or, [false, true, true, true]),
            (GateKind::Nor, [true, false, false, false]),
            (GateKind::Xor, [false, true, true, false]),
            (GateKind::Xnor, [true, false, false, true]),
        ];
        for (kind, expected) in cases {
            for (i, &want) in expected.iter().enumerate() {
                let a = i & 1 == 1;
                let b = i >> 1 & 1 == 1;
                assert_eq!(kind.eval(&[a, b]), want, "{kind} ({a},{b})");
            }
        }
    }

    #[test]
    fn nary_semantics() {
        assert!(GateKind::And.eval(&[true, true, true]));
        assert!(!GateKind::And.eval(&[true, false, true]));
        assert!(GateKind::Or.eval(&[false, false, true]));
        // Parity of three ones is one.
        assert!(GateKind::Xor.eval(&[true, true, true]));
        assert!(!GateKind::Xor.eval(&[true, true, false]));
        assert!(GateKind::Xnor.eval(&[true, true, false]));
    }

    #[test]
    fn mux_selects() {
        // (sel, d0, d1)
        assert!(!GateKind::Mux.eval(&[false, false, true]));
        assert!(GateKind::Mux.eval(&[true, false, true]));
        assert!(GateKind::Mux.eval(&[false, true, false]));
    }

    #[test]
    fn packed_matches_scalar() {
        for kind in [
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
        ] {
            for pattern in 0..16u64 {
                let a = pattern & 1 == 1;
                let b = pattern >> 1 & 1 == 1;
                let c = pattern >> 2 & 1 == 1;
                let scalar = kind.eval(&[a, b, c]);
                let packed = kind.eval_packed(&[
                    if a { u64::MAX } else { 0 },
                    if b { u64::MAX } else { 0 },
                    if c { u64::MAX } else { 0 },
                ]);
                assert_eq!(packed == u64::MAX, scalar, "{kind} {pattern:b}");
                assert!(packed == u64::MAX || packed == 0);
            }
        }
        // Mux packed.
        for pattern in 0..8u64 {
            let s = pattern & 1 == 1;
            let d0 = pattern >> 1 & 1 == 1;
            let d1 = pattern >> 2 & 1 == 1;
            let scalar = GateKind::Mux.eval(&[s, d0, d1]);
            let packed = GateKind::Mux.eval_packed(&[
                if s { u64::MAX } else { 0 },
                if d0 { u64::MAX } else { 0 },
                if d1 { u64::MAX } else { 0 },
            ]);
            assert_eq!(packed == u64::MAX, scalar);
        }
    }

    #[test]
    fn bench_name_round_trip() {
        for kind in [
            GateKind::Buf,
            GateKind::Not,
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
            GateKind::Mux,
            GateKind::Const(false),
            GateKind::Const(true),
        ] {
            let name = kind.bench_name().expect("named");
            assert_eq!(GateKind::from_bench_name(name), Some(kind));
        }
        assert_eq!(GateKind::from_bench_name("buff"), Some(GateKind::Buf));
        assert_eq!(GateKind::from_bench_name("DFF"), None);
    }

    #[test]
    fn arity_constraints() {
        assert_eq!(GateKind::Input.arity(), Some(0));
        assert_eq!(GateKind::Not.arity(), Some(1));
        assert_eq!(GateKind::Mux.arity(), Some(3));
        assert_eq!(GateKind::And.arity(), None);
        assert!(GateKind::Xor.is_symmetric());
        assert!(!GateKind::Mux.is_symmetric());
        assert!(GateKind::KeyInput.is_input());
    }
}
