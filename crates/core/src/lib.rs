//! # polykey-attack: the multi-key SAT attack on logic locking
//!
//! The core of the `polykey` suite: a faithful implementation of the DAC'24
//! late-breaking paper *"On the One-Key Premise of Logic Locking"*, together
//! with the classic oracle-guided SAT attack it builds on.
//!
//! ## The pieces
//!
//! - [`sat_attack`] — the baseline oracle-guided SAT attack
//!   (Subramanyan et al., HOST'15): miter refinement with distinguishing
//!   input patterns over an incremental CDCL solver.
//! - [`select_split_inputs`] — the paper's fan-out-cone split-port
//!   heuristic plus ablation strategies.
//! - [`multi_key_attack`] — Algorithm 1: cofactor the locked netlist on
//!   `2^N` split-port assignments, re-synthesize each term, and attack the
//!   terms independently (optionally in parallel).
//! - [`recombine_multikey`] — Fig. 1(b): a MUX tree over the split ports
//!   turns the sub-space keys into a keyless netlist equivalent to the
//!   original design.
//! - [`verify_key`] / [`verify_key_on_subspace`] — SAT-based key checks;
//!   [`random_sim_mismatches`] for quick probabilistic screening.
//! - [`Oracle`] / [`SimOracle`] / [`RestrictedOracle`] — the attacker's
//!   black-box chip access.
//!
//! ## End-to-end example
//!
//! ```
//! use polykey_attack::{multi_key_attack, recombine_multikey, MultiKeyConfig};
//! use polykey_encode::{check_equivalence, EquivResult};
//! use polykey_locking::{lock_sarlock_with_key, Key, SarlockConfig};
//! use polykey_netlist::{GateKind, Netlist};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A toy design, locked with SARLock (|K| = 3).
//! let mut nl = Netlist::new("toy");
//! let a = nl.add_input("a")?;
//! let b = nl.add_input("b")?;
//! let c = nl.add_input("c")?;
//! let g = nl.add_gate("g", GateKind::And, &[a, b])?;
//! let y = nl.add_gate("y", GateKind::Xor, &[g, c])?;
//! nl.mark_output(y)?;
//! let locked = lock_sarlock_with_key(&nl, &SarlockConfig::new(3), &Key::from_u64(5, 3))?;
//!
//! // Algorithm 1 with N = 1: two parallel sub-attacks.
//! let config = MultiKeyConfig::with_split_effort(1);
//! let outcome = multi_key_attack(&locked.netlist, &nl, &config)?;
//! assert!(outcome.is_complete());
//!
//! // Fig. 1(b): recombine the two (possibly wrong) keys — and prove the
//! // result equivalent to the original design.
//! let unlocked = recombine_multikey(&locked.netlist, &outcome.split_inputs, &outcome.keys)?;
//! assert_eq!(check_equivalence(&nl, &unlocked)?, EquivResult::Equivalent);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod approx;
mod error;
mod multikey;
mod oracle;
mod recombine;
mod sat_attack;
mod split;
mod verify;

pub use approx::{appsat_attack, AppSatConfig, AppSatOutcome};
pub use error::AttackError;
pub use multikey::{
    multi_key_attack, MultiKeyConfig, MultiKeyOutcome, SubKey, SubTaskReport,
};
pub use oracle::{Oracle, RestrictedOracle, SimOracle};
pub use recombine::recombine_multikey;
pub use sat_attack::{
    sat_attack, AttackStatus, SatAttackConfig, SatAttackOutcome, SatAttackStats,
};
pub use split::{select_split_inputs, SplitStrategy};
pub use verify::{random_sim_mismatches, verify_key, verify_key_on_subspace};
