//! # polykey-attack: the multi-key SAT attack on logic locking
//!
//! The core of the `polykey` suite: a faithful implementation of the DAC'24
//! late-breaking paper *"On the One-Key Premise of Logic Locking"*, together
//! with the classic oracle-guided SAT attack it builds on.
//!
//! ## The surface
//!
//! One builder drives every attack scenario:
//!
//! - [`AttackSession`] — configure oracle, splitting effort, worker
//!   threads, time budget, cancellation, and progress once; `run()`
//!   returns an [`AttackReport`] with uniform [`AttackStats`] whether the
//!   classic one-key SAT attack (`split_effort = 0`) or Algorithm 1's
//!   `2^N` parallel sub-attacks ran. With a per-term budget
//!   (`AttackSessionBuilder::term_dip_budget` /
//!   `AttackSessionBuilder::term_time_budget`) the engine splits
//!   **adaptively**: hard terms are subdivided one port at a time into a
//!   prefix *tree* of `(pattern, width)` sub-spaces, so easy regions
//!   finish shallow while the hard ones (the SARLock pattern term) get
//!   exactly as much splitting as they need.
//! - [`AttackReport::recombine`] — Fig. 1(b): a MUX tree over the split
//!   ports turns the sub-space keys into a keyless netlist equivalent to
//!   the original design.
//! - [`Oracle`] / [`SimOracle`] / [`RestrictedOracle`] — the attacker's
//!   black-box chip access; any `Send` implementation plugs into a
//!   session. [`Oracle::query_batch`] answers a whole batch of patterns
//!   per round-trip, and `AttackSessionBuilder::dip_batch` makes every
//!   attack harvest and answer its DIPs in such batches (a [`SimOracle`]
//!   serves 64 patterns per bit-parallel simulation pass).
//! - [`select_split_inputs`] — the paper's fan-out-cone split-port
//!   heuristic plus ablation strategies.
//! - [`verify_key`] / [`verify_key_on_subspace`] — SAT-based key checks;
//!   [`random_sim_mismatches`] for quick probabilistic screening.
//! - [`appsat_attack`] — an AppSAT-style approximate attack, for contrast
//!   with the paper's exact multi-key recovery.
//!
//! The pre-0.2 free functions [`sat_attack`] and [`multi_key_attack`]
//! remain as deprecated shims for one release; new code builds sessions.
//!
//! ## End-to-end example
//!
//! ```
//! use polykey_attack::{AttackSession, SimOracle};
//! use polykey_encode::{check_equivalence, EquivResult};
//! use polykey_locking::{Key, LockScheme, Sarlock};
//! use polykey_netlist::{GateKind, Netlist};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A toy design, locked with SARLock (|K| = 3).
//! let mut nl = Netlist::new("toy");
//! let a = nl.add_input("a")?;
//! let b = nl.add_input("b")?;
//! let c = nl.add_input("c")?;
//! let g = nl.add_gate("g", GateKind::And, &[a, b])?;
//! let y = nl.add_gate("y", GateKind::Xor, &[g, c])?;
//! nl.mark_output(y)?;
//! let locked = Sarlock::new(3).lock(&nl, &Key::from_u64(5, 3))?;
//!
//! // Algorithm 1 with N = 1: two parallel sub-attacks over one oracle.
//! let mut oracle = SimOracle::new(&nl)?;
//! let report = AttackSession::builder()
//!     .oracle(&mut oracle)
//!     .split_effort(1)
//!     .build()?
//!     .run(&locked.netlist)?;
//! assert!(report.is_complete());
//!
//! // Fig. 1(b): recombine the two (possibly wrong) keys — and prove the
//! // result equivalent to the original design.
//! let unlocked = report.recombine(&locked.netlist)?;
//! assert_eq!(check_equivalence(&nl, &unlocked)?, EquivResult::Equivalent);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod approx;
mod error;
mod multikey;
mod oracle;
mod recombine;
mod sat_attack;
mod session;
mod split;
mod verify;

pub use approx::{appsat_attack, AppSatConfig, AppSatOutcome};
pub use error::AttackError;
pub use multikey::{MultiKeyConfig, MultiKeyOutcome, SubKey, SubTaskReport, MAX_SPLIT_WIDTH};
pub use oracle::{Oracle, RestrictedOracle, SimOracle};
pub use recombine::recombine_multikey;
pub use sat_attack::{AttackStatus, SatAttackConfig, SatAttackOutcome, SatAttackStats};
pub use session::{
    AttackReport, AttackSession, AttackSessionBuilder, AttackStats, CancelToken, ProgressEvent,
};
pub use split::{select_split_inputs, SplitStrategy};
pub use verify::{random_sim_mismatches, verify_key, verify_key_on_subspace};

#[allow(deprecated)]
pub use multikey::multi_key_attack;
#[allow(deprecated)]
pub use sat_attack::sat_attack;
