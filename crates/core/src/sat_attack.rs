//! The oracle-guided SAT attack (Subramanyan, Ray, Malik — HOST'15).
//!
//! The attack loop:
//!
//! 1. Build a miter of two copies of the locked circuit sharing primary
//!    inputs, with independent key vectors `K1`, `K2`.
//! 2. Ask the solver for a *distinguishing input pattern* (DIP): an input on
//!    which some two keys consistent with everything observed so far
//!    disagree.
//! 3. Query the oracle at the DIP and constrain both key copies to
//!    reproduce the observed output (two more CNF copies of the circuit,
//!    with inputs pinned to the DIP so they fold down to key logic only).
//! 4. Repeat until the miter is unsatisfiable: every remaining key is
//!    functionally equivalent on all inputs; return one of them.
//!
//! The solver is used *incrementally*: learnt clauses carry over between
//! iterations, and the miter is kept behind an assumption literal so the
//! final key-extraction solve can ignore it.

use std::time::{Duration, Instant};

use polykey_encode::{
    assert_equal, assert_value, build_miter, encode, Binding, CnfValue, PortBinding,
};
use polykey_locking::Key;
use polykey_netlist::Netlist;
use polykey_sat::{SolveResult, Solver, SolverConfig, SolverStats};

use crate::error::AttackError;
use crate::oracle::Oracle;
use crate::session::CancelToken;

/// Shared run control the [`crate::AttackSession`] threads through every
/// engine call: an absolute deadline, a cancellation token, and a per-DIP
/// progress hook.
#[derive(Default)]
pub(crate) struct RunCtl<'c> {
    /// Absolute wall-clock deadline (merged with the per-config
    /// `time_limit`, whichever is earlier).
    pub deadline: Option<Instant>,
    /// Cooperative cancellation, checked once per DIP-refinement
    /// iteration (a running solver call completes first).
    pub cancel: Option<&'c CancelToken>,
    /// Called after each discovered DIP with the running DIP count.
    pub on_dip: Option<&'c (dyn Fn(u64) + Sync)>,
}

impl RunCtl<'_> {
    fn cancelled(&self) -> bool {
        self.cancel.is_some_and(CancelToken::is_cancelled)
    }
}

/// Tuning knobs for the SAT attack.
#[derive(Clone, Debug, Default)]
#[must_use]
pub struct SatAttackConfig {
    /// Stop after this many DIPs (None = unlimited).
    pub max_dips: Option<u64>,
    /// Wall-clock budget for the whole attack (None = unlimited).
    pub time_limit: Option<Duration>,
    /// Force these primary-input positions to fixed values in every DIP
    /// (used by the multi-key attack to stay inside one sub-space).
    pub force_inputs: Vec<(usize, bool)>,
    /// Solver configuration.
    pub solver: SolverConfig,
    /// Record every DIP pattern in the outcome (cheap; on by default).
    pub record_dips: bool,
    /// Encode per-DIP consistency constraints with inputs pinned as
    /// constants, folding each copy down to the key cone (`true`, the
    /// optimized default) — or as full circuit copies with unit clauses on
    /// the inputs (`false`), the textbook formulation of the original SAT
    /// attack and of the paper's tooling, whose per-iteration CNF growth is
    /// what makes LUT-based insertion expensive in Table 2.
    pub fold_dip_copies: bool,
    /// Soft DIP budget: stop with [`AttackStatus::BudgetExhausted`] after
    /// this many DIPs (None = no budget). Unlike [`SatAttackConfig::max_dips`]
    /// — a hard user-facing cap reported as [`AttackStatus::DipLimit`] —
    /// exhausting this budget is a *scheduling* signal: the adaptive
    /// multi-key engine reads it as "this term is too hard at its current
    /// depth, split it deeper". When both are set and reached together,
    /// the hard cap wins.
    pub dip_budget: Option<u64>,
    /// Soft wall-clock budget for this run: expiring it reports
    /// [`AttackStatus::BudgetExhausted`] (with partial stats) instead of
    /// [`AttackStatus::TimeLimit`], which remains reserved for the hard
    /// `time_limit` / session deadline. Used by the adaptive multi-key
    /// engine as the per-term resplit trigger.
    pub time_budget: Option<Duration>,
    /// Maximum DIPs harvested per oracle round-trip (values `0` and `1`
    /// both mean the classic one-DIP-per-round loop).
    ///
    /// With `dip_batch = k > 1`, each refinement epoch re-solves the miter
    /// under blocking clauses to collect up to `k` distinct DIPs, answers
    /// them all in a single [`Oracle::query_batch`] call, and only then
    /// asserts the consistency constraints. Oracles backed by the packed
    /// simulator serve up to 64 patterns per simulation pass, so `64`
    /// matches the simulator word width. The recovered key is functionally
    /// identical either way; the trade is more (cheap) solver calls and
    /// possibly redundant DIPs against far fewer (expensive) oracle
    /// round-trips — see `SatAttackStats::oracle_rounds`.
    pub dip_batch: usize,
}

impl SatAttackConfig {
    /// The default configuration: unlimited, recording DIPs, folding
    /// per-DIP copies, one DIP per oracle round.
    pub fn new() -> SatAttackConfig {
        SatAttackConfig {
            record_dips: true,
            fold_dip_copies: true,
            dip_batch: 1,
            ..Default::default()
        }
    }

    /// The textbook configuration: per-DIP constraints as full circuit
    /// copies (see [`SatAttackConfig::fold_dip_copies`]).
    pub fn textbook() -> SatAttackConfig {
        SatAttackConfig { fold_dip_copies: false, ..SatAttackConfig::new() }
    }
}

/// How a SAT attack run ended.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum AttackStatus {
    /// The key space was exhausted and a functionally correct key returned.
    Success,
    /// Stopped at the configured DIP limit.
    DipLimit,
    /// Stopped at the configured time limit.
    TimeLimit,
    /// Stopped at a *soft* per-run budget ([`SatAttackConfig::dip_budget`]
    /// / [`SatAttackConfig::time_budget`]) with partial stats intact. The
    /// adaptive multi-key scheduler reacts by splitting the term one port
    /// deeper and re-attacking both halves.
    BudgetExhausted,
    /// Stopped by a [`crate::CancelToken`].
    Cancelled,
    /// The sub-attack's worker panicked (e.g. a crashing oracle). The
    /// multi-key engine recovers the panic at the term boundary and
    /// reports the term as failed instead of taking down the session.
    Failed,
    /// No key is consistent with the oracle responses (wrong oracle or
    /// corrupted netlist).
    Inconsistent,
}

/// Work counters for one SAT attack run.
#[derive(Clone, Debug, Default)]
pub struct SatAttackStats {
    /// Distinguishing input patterns found (`#DIP` in the paper).
    pub dips: u64,
    /// Oracle queries issued (one per answered DIP, regardless of
    /// batching).
    pub oracle_queries: u64,
    /// Oracle round-trips: a batch of DIPs answered by one
    /// [`Oracle::query_batch`] call counts once. Equals `oracle_queries`
    /// when `dip_batch <= 1`; the gap between the two is exactly what
    /// batching saves.
    pub oracle_rounds: u64,
    /// DIP-refinement epochs: satisfiable outer miter solves, each of which
    /// harvested one batch of DIPs. Equals `oracle_rounds` under the
    /// current one-round-per-epoch engine; kept separate so the telemetry
    /// stays truthful if the pipelines ever diverge.
    pub epochs: u64,
    /// Total wall-clock time.
    pub wall_time: Duration,
    /// Final solver counters (cumulative over all iterations).
    pub solver: SolverStats,
    /// CNF variables at the end of the attack.
    pub cnf_vars: usize,
    /// CNF clauses at the end of the attack (original, excluding learnt).
    pub cnf_clauses: usize,
}

/// The result of a SAT attack run.
#[derive(Clone, Debug)]
pub struct SatAttackOutcome {
    /// Terminal status.
    pub status: AttackStatus,
    /// The recovered key (present on [`AttackStatus::Success`]).
    pub key: Option<Key>,
    /// The DIPs, in discovery order (if `record_dips` was set).
    pub dip_patterns: Vec<Vec<bool>>,
    /// Work counters.
    pub stats: SatAttackStats,
}

impl SatAttackOutcome {
    /// True iff the attack succeeded.
    pub fn is_success(&self) -> bool {
        self.status == AttackStatus::Success
    }
}

/// Runs the oracle-guided SAT attack against `locked`.
///
/// # Errors
///
/// - [`AttackError::OracleMismatch`] if the oracle's port counts disagree
///   with the locked netlist.
/// - [`AttackError::Miter`] / [`AttackError::Encode`] for structural
///   failures (e.g. cyclic netlists).
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use polykey_attack::{sat_attack, SatAttackConfig, SimOracle};
/// use polykey_locking::lock_rll;
/// use polykey_netlist::{GateKind, Netlist};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut nl = Netlist::new("toy");
/// let a = nl.add_input("a")?;
/// let b = nl.add_input("b")?;
/// let y = nl.add_gate("y", GateKind::And, &[a, b])?;
/// nl.mark_output(y)?;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let locked = lock_rll(&nl, 1, &mut rng)?;
/// let mut oracle = SimOracle::new(&nl)?;
/// let outcome = sat_attack(&locked.netlist, &mut oracle, &SatAttackConfig::new())?;
/// assert!(outcome.is_success());
/// # Ok(())
/// # }
/// ```
#[deprecated(
    since = "0.2.0",
    note = "use `AttackSession::builder().oracle(..).build()?.run(locked)`"
)]
pub fn sat_attack(
    locked: &Netlist,
    oracle: &mut dyn Oracle,
    config: &SatAttackConfig,
) -> Result<SatAttackOutcome, AttackError> {
    run_sat_attack(locked, oracle, config, &RunCtl::default())
}

/// A DIP harvested in the current epoch but not yet answered by the
/// oracle. All but the last DIP of a batch carry their already-encoded
/// constraint copies (`[left, right]` output values), added during the
/// harvest to steer subsequent re-solves; the oracle's response is later
/// asserted directly on those values.
struct PendingDip {
    dip: Vec<bool>,
    copies: Option<[Vec<CnfValue>; 2]>,
}

/// Encodes one consistency-constraint copy of `locked` at `dip` for the
/// given shared key literals, returning the copy's output values. In the
/// folded mode inputs are pinned as constants (the copy collapses to its
/// key cone); in textbook mode a full copy is added with unit clauses on
/// the inputs.
fn encode_constraint_copy(
    solver: &mut Solver,
    locked: &Netlist,
    config: &SatAttackConfig,
    dip: &[bool],
    keys: &[polykey_sat::Lit],
) -> Result<Vec<CnfValue>, AttackError> {
    let binding = if config.fold_dip_copies {
        Binding::with_pinned_inputs_shared_keys(dip, keys)
    } else {
        let mut b = Binding::fresh(locked);
        b.keys = keys.iter().map(|&l| PortBinding::Shared(l)).collect();
        b
    };
    let enc = encode(solver, locked, &binding)?;
    if !config.fold_dip_copies {
        for (val, &bit) in enc.inputs.iter().zip(dip) {
            assert_value(solver, *val, bit);
        }
    }
    Ok(enc.outputs)
}

/// The DIP-refinement engine behind both [`sat_attack`] and
/// [`crate::AttackSession`].
pub(crate) fn run_sat_attack(
    locked: &Netlist,
    oracle: &mut dyn Oracle,
    config: &SatAttackConfig,
    ctl: &RunCtl<'_>,
) -> Result<SatAttackOutcome, AttackError> {
    if oracle.num_inputs() != locked.inputs().len() {
        return Err(AttackError::OracleMismatch {
            what: "inputs",
            netlist: locked.inputs().len(),
            oracle: oracle.num_inputs(),
        });
    }
    if oracle.num_outputs() != locked.outputs().len() {
        return Err(AttackError::OracleMismatch {
            what: "outputs",
            netlist: locked.outputs().len(),
            oracle: oracle.num_outputs(),
        });
    }
    let start = Instant::now();
    // The earlier of the session deadline and this run's own time limit
    // (hard stops, reported as `TimeLimit`).
    let hard_deadline = match (ctl.deadline, config.time_limit) {
        (Some(d), Some(limit)) => Some(d.min(start + limit)),
        (Some(d), None) => Some(d),
        (None, Some(limit)) => Some(start + limit),
        (None, None) => None,
    };
    // The soft per-run budget (reported as `BudgetExhausted`); the solver
    // runs against whichever deadline comes first.
    let soft_deadline = config.time_budget.map(|budget| start + budget);
    let deadline = match (hard_deadline, soft_deadline) {
        (Some(h), Some(s)) => Some(h.min(s)),
        (h, s) => h.or(s),
    };
    // Which status an expired clock maps to: the hard deadline wins when
    // both have passed, so a session timeout is never misread as a
    // resplit request.
    let expiry_status = move |now: Instant| -> AttackStatus {
        match (hard_deadline, soft_deadline) {
            (Some(h), _) if now >= h => AttackStatus::TimeLimit,
            (_, Some(s)) if now >= s => AttackStatus::BudgetExhausted,
            _ => AttackStatus::TimeLimit,
        }
    };
    let queries_at_start = oracle.queries();
    let mut solver = Solver::with_config(config.solver);
    let miter = build_miter(&mut solver, locked, locked)?;
    for &(idx, value) in &config.force_inputs {
        let lit = miter.inputs[idx];
        solver.add_clause(&[if value { lit } else { !lit }]);
    }

    let mut dips: u64 = 0;
    let mut oracle_rounds: u64 = 0;
    let mut epochs: u64 = 0;
    let mut dip_patterns: Vec<Vec<bool>> = Vec::new();
    let finish = |status: AttackStatus,
                  key: Option<Key>,
                  dips: u64,
                  oracle_rounds: u64,
                  epochs: u64,
                  dip_patterns: Vec<Vec<bool>>,
                  solver: &Solver,
                  oracle: &dyn Oracle| SatAttackOutcome {
        status,
        key,
        dip_patterns,
        stats: SatAttackStats {
            dips,
            oracle_queries: oracle.queries() - queries_at_start,
            oracle_rounds,
            epochs,
            wall_time: start.elapsed(),
            solver: *solver.stats(),
            cnf_vars: solver.num_vars(),
            cnf_clauses: solver.num_clauses(),
        },
    };

    // Reads the current model's primary-input assignment — one DIP.
    let extract_dip = |solver: &Solver| -> Vec<bool> {
        miter.inputs.iter().map(|&l| solver.model_value(l).unwrap_or(false)).collect()
    };

    loop {
        // Cooperative cancellation, once per refinement iteration.
        if ctl.cancelled() {
            return Ok(finish(
                AttackStatus::Cancelled,
                None,
                dips,
                oracle_rounds,
                epochs,
                dip_patterns,
                &solver,
                oracle,
            ));
        }
        // Respect the wall-clock budget across solver calls.
        if let Some(dl) = deadline {
            let now = Instant::now();
            if now >= dl {
                return Ok(finish(
                    expiry_status(now),
                    None,
                    dips,
                    oracle_rounds,
                    epochs,
                    dip_patterns,
                    &solver,
                    oracle,
                ));
            }
            solver.set_time_budget(Some(dl - now));
        }
        match solver.solve(&[miter.diff]) {
            SolveResult::Unknown => {
                return Ok(finish(
                    expiry_status(Instant::now()),
                    None,
                    dips,
                    oracle_rounds,
                    epochs,
                    dip_patterns,
                    &solver,
                    oracle,
                ));
            }
            SolveResult::Sat => {
                // The miter is still satisfiable, so more DIPs are needed:
                // a spent soft budget means this term is too hard at its
                // current depth. (Checked only here — a term that converges
                // exactly at its budget still succeeds.)
                if config.dip_budget.is_some_and(|budget| dips >= budget) {
                    return Ok(finish(
                        AttackStatus::BudgetExhausted,
                        None,
                        dips,
                        oracle_rounds,
                        epochs,
                        dip_patterns,
                        &solver,
                        oracle,
                    ));
                }
                epochs += 1;
                // Harvest up to `dip_batch` distinct DIPs before paying the
                // oracle round-trip. After each harvested DIP the two
                // constraint copies are encoded immediately and their
                // outputs tied together (`assert_equal`): requiring the key
                // copies to *agree* at the pending input is a relaxation of
                // the response constraint asserted below once the oracle
                // answers, so no consistent key pair is lost — but the
                // re-solve can no longer return a key pair the pending
                // answer would eliminate anyway, steering every harvested
                // DIP toward fresh key-space. The copies are kept so the
                // answer lands on the same CNF: batching costs no extra
                // circuit encodings over the classic loop.
                let mut batch: Vec<PendingDip> = Vec::new();
                let mut dip = extract_dip(&solver);
                // Never harvest past the DIP limit or the soft DIP budget.
                let remaining = [config.max_dips, config.dip_budget]
                    .into_iter()
                    .flatten()
                    .map(|cap| cap.saturating_sub(dips))
                    .min();
                let target = match remaining {
                    Some(r) => config.dip_batch.max(1).min((r.max(1)) as usize),
                    None => config.dip_batch.max(1),
                };
                loop {
                    if batch.len() + 1 >= target || ctl.cancelled() {
                        // The epoch's last DIP needs no steering copies;
                        // it is encoded on the classic path when answered.
                        batch.push(PendingDip { dip, copies: None });
                        break;
                    }
                    let left = encode_constraint_copy(
                        &mut solver,
                        locked,
                        config,
                        &dip,
                        &miter.keys_left,
                    )?;
                    let right = encode_constraint_copy(
                        &mut solver,
                        locked,
                        config,
                        &dip,
                        &miter.keys_right,
                    )?;
                    for (&l, &r) in left.iter().zip(&right) {
                        assert_equal(&mut solver, l, r);
                    }
                    batch.push(PendingDip { dip, copies: Some([left, right]) });
                    if let Some(dl) = deadline {
                        let now = Instant::now();
                        if now >= dl {
                            break;
                        }
                        solver.set_time_budget(Some(dl - now));
                    }
                    match solver.solve(&[miter.diff]) {
                        SolveResult::Sat => dip = extract_dip(&solver),
                        // Unsat: the epoch drained every remaining DIP (the
                        // outer loop terminates once the answers land).
                        // Unknown: out of time budget; answer what we have.
                        SolveResult::Unsat | SolveResult::Unknown => break,
                    }
                }
                // One oracle round answers the whole batch.
                let patterns: Vec<Vec<bool>> = batch.iter().map(|p| p.dip.clone()).collect();
                let responses = oracle.query_batch(&patterns);
                oracle_rounds += 1;
                for (pending, response) in batch.iter().zip(&responses) {
                    dips += 1;
                    if let Some(on_dip) = ctl.on_dip {
                        on_dip(dips);
                    }
                    if config.record_dips {
                        dip_patterns.push(pending.dip.clone());
                    }
                    // Both key copies must reproduce the response at this
                    // input.
                    match &pending.copies {
                        Some(copies) => {
                            for outputs in copies {
                                for (out, &bit) in outputs.iter().zip(response) {
                                    assert_value(&mut solver, *out, bit);
                                }
                            }
                        }
                        None => {
                            for keys in [&miter.keys_left, &miter.keys_right] {
                                let outputs = encode_constraint_copy(
                                    &mut solver,
                                    locked,
                                    config,
                                    &pending.dip,
                                    keys,
                                )?;
                                for (out, &bit) in outputs.iter().zip(response) {
                                    assert_value(&mut solver, *out, bit);
                                }
                            }
                        }
                    }
                }
                if let Some(max) = config.max_dips {
                    if dips >= max {
                        return Ok(finish(
                            AttackStatus::DipLimit,
                            None,
                            dips,
                            oracle_rounds,
                            epochs,
                            dip_patterns,
                            &solver,
                            oracle,
                        ));
                    }
                }
            }
            SolveResult::Unsat => {
                // No more DIPs: every remaining key is functionally correct.
                // Key extraction must not assume the miter.
                if ctl.cancelled() {
                    return Ok(finish(
                        AttackStatus::Cancelled,
                        None,
                        dips,
                        oracle_rounds,
                        epochs,
                        dip_patterns,
                        &solver,
                        oracle,
                    ));
                }
                // Only the *hard* deadline gates key extraction: the search
                // has converged, so a soft budget expiring here must not
                // discard the (one cheap solve away) key and force a
                // pointless resplit.
                if let Some(dl) = hard_deadline {
                    let now = Instant::now();
                    if now >= dl {
                        return Ok(finish(
                            AttackStatus::TimeLimit,
                            None,
                            dips,
                            oracle_rounds,
                            epochs,
                            dip_patterns,
                            &solver,
                            oracle,
                        ));
                    }
                    solver.set_time_budget(Some(dl - now));
                } else {
                    // Clear any stale soft-budget allowance from the loop.
                    solver.set_time_budget(None);
                }
                return match solver.solve(&[]) {
                    SolveResult::Sat => {
                        let key = Key::new(
                            miter
                                .keys_left
                                .iter()
                                .map(|&l| solver.model_value(l).unwrap_or(false))
                                .collect(),
                        );
                        Ok(finish(
                            AttackStatus::Success,
                            Some(key),
                            dips,
                            oracle_rounds,
                            epochs,
                            dip_patterns,
                            &solver,
                            oracle,
                        ))
                    }
                    SolveResult::Unsat => Ok(finish(
                        AttackStatus::Inconsistent,
                        None,
                        dips,
                        oracle_rounds,
                        epochs,
                        dip_patterns,
                        &solver,
                        oracle,
                    )),
                    SolveResult::Unknown => Ok(finish(
                        AttackStatus::TimeLimit,
                        None,
                        dips,
                        oracle_rounds,
                        epochs,
                        dip_patterns,
                        &solver,
                        oracle,
                    )),
                };
            }
        }
    }
}

#[cfg(test)]
// The unit tests deliberately exercise the deprecated one-release shims;
// the session surface is covered by `session.rs` and the integration tests.
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::oracle::SimOracle;
    use polykey_locking::{
        lock_antisat, lock_rll, lock_sarlock_with_key, AntisatConfig, SarlockConfig,
    };
    use polykey_netlist::{bits_of, GateKind, Simulator};
    use rand::SeedableRng;

    fn majority3() -> Netlist {
        let mut nl = Netlist::new("maj3");
        let a = nl.add_input("a").unwrap();
        let b = nl.add_input("b").unwrap();
        let c = nl.add_input("c").unwrap();
        let ab = nl.add_gate("ab", GateKind::And, &[a, b]).unwrap();
        let ac = nl.add_gate("ac", GateKind::And, &[a, c]).unwrap();
        let bc = nl.add_gate("bc", GateKind::And, &[b, c]).unwrap();
        let y = nl.add_gate("y", GateKind::Or, &[ab, ac, bc]).unwrap();
        nl.mark_output(y).unwrap();
        nl
    }

    /// Checks that a recovered key makes the locked circuit behave like the
    /// original on every input (exhaustive for small circuits).
    fn key_is_functionally_correct(original: &Netlist, locked: &Netlist, key: &Key) -> bool {
        let ni = original.inputs().len();
        let mut orig = Simulator::new(original).unwrap();
        let mut lsim = Simulator::new(locked).unwrap();
        (0..(1u64 << ni)).all(|v| {
            let bits = bits_of(v, ni);
            lsim.eval(&bits, key.bits()) == orig.eval(&bits, &[])
        })
    }

    #[test]
    fn breaks_rll() {
        let nl = majority3();
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let locked = lock_rll(&nl, 4, &mut rng).unwrap();
        let mut oracle = SimOracle::new(&nl).unwrap();
        let outcome =
            sat_attack(&locked.netlist, &mut oracle, &SatAttackConfig::new()).unwrap();
        assert!(outcome.is_success());
        let key = outcome.key.expect("success ⇒ key");
        assert!(key_is_functionally_correct(&nl, &locked.netlist, &key));
        assert_eq!(outcome.stats.oracle_queries, outcome.stats.dips);
    }

    #[test]
    fn breaks_sarlock_with_expected_dip_count() {
        // SARLock with |K| = 3: the miter can eliminate exactly one wrong
        // key per DIP, so the attack needs ≈ 2^|K| - 1 DIPs.
        let nl = majority3();
        let key = polykey_locking::Key::from_u64(0b101, 3);
        let locked = lock_sarlock_with_key(&nl, &SarlockConfig::new(3), &key).unwrap();
        let mut oracle = SimOracle::new(&nl).unwrap();
        let outcome =
            sat_attack(&locked.netlist, &mut oracle, &SatAttackConfig::new()).unwrap();
        assert!(outcome.is_success());
        let got = outcome.key.expect("key");
        assert!(key_is_functionally_correct(&nl, &locked.netlist, &got));
        assert!(
            (7..=8).contains(&outcome.stats.dips),
            "SARLock |K|=3 needs ~2^3-1 DIPs, got {}",
            outcome.stats.dips
        );
    }

    #[test]
    fn breaks_antisat_functionally() {
        let nl = majority3();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let locked = lock_antisat(&nl, &AntisatConfig::new(2), &mut rng).unwrap();
        let mut oracle = SimOracle::new(&nl).unwrap();
        let outcome =
            sat_attack(&locked.netlist, &mut oracle, &SatAttackConfig::new()).unwrap();
        assert!(outcome.is_success());
        let key = outcome.key.expect("key");
        // The recovered key need not equal the nominal one (Anti-SAT has
        // 2^n correct keys), but it must be functionally correct.
        assert!(key_is_functionally_correct(&nl, &locked.netlist, &key));
    }

    #[test]
    fn batched_attack_matches_sequential_key_with_fewer_rounds() {
        // SARLock |K|=3 needs ~7 DIPs; batching must recover an equally
        // correct key while folding those DIPs into far fewer oracle
        // rounds.
        let nl = majority3();
        let key = polykey_locking::Key::from_u64(0b101, 3);
        let locked = lock_sarlock_with_key(&nl, &SarlockConfig::new(3), &key).unwrap();

        let mut oracle = SimOracle::new(&nl).unwrap();
        let sequential =
            sat_attack(&locked.netlist, &mut oracle, &SatAttackConfig::new()).unwrap();
        assert!(sequential.is_success());
        assert_eq!(sequential.stats.oracle_rounds, sequential.stats.dips);

        let mut config = SatAttackConfig::new();
        config.dip_batch = 64;
        let mut oracle = SimOracle::new(&nl).unwrap();
        let batched = sat_attack(&locked.netlist, &mut oracle, &config).unwrap();
        assert!(batched.is_success());
        let got = batched.key.expect("key");
        assert!(key_is_functionally_correct(&nl, &locked.netlist, &got));
        // Every DIP is still one query, but the rounds collapse.
        assert_eq!(batched.stats.oracle_queries, batched.stats.dips);
        assert!(
            batched.stats.oracle_rounds < batched.stats.dips,
            "rounds {} must drop below dips {}",
            batched.stats.oracle_rounds,
            batched.stats.dips
        );
        // All recorded DIPs are distinct: blocking clauses forbid repeats.
        let mut seen = batched.dip_patterns.clone();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), batched.dip_patterns.len());
    }

    #[test]
    fn batch_harvest_respects_dip_limit() {
        let nl = majority3();
        let key = polykey_locking::Key::from_u64(0b110, 3);
        let locked = lock_sarlock_with_key(&nl, &SarlockConfig::new(3), &key).unwrap();
        let mut oracle = SimOracle::new(&nl).unwrap();
        let mut config = SatAttackConfig::new();
        config.max_dips = Some(2);
        config.dip_batch = 64;
        let outcome = sat_attack(&locked.netlist, &mut oracle, &config).unwrap();
        assert_eq!(outcome.status, AttackStatus::DipLimit);
        assert_eq!(outcome.stats.dips, 2, "harvest must not overshoot max_dips");
        assert_eq!(outcome.stats.oracle_rounds, 1);
    }

    #[test]
    fn batched_textbook_engine_still_breaks_sarlock() {
        let nl = majority3();
        let key = polykey_locking::Key::from_u64(0b011, 3);
        let locked = lock_sarlock_with_key(&nl, &SarlockConfig::new(3), &key).unwrap();
        let mut oracle = SimOracle::new(&nl).unwrap();
        let mut config = SatAttackConfig::textbook();
        config.dip_batch = 8;
        let outcome = sat_attack(&locked.netlist, &mut oracle, &config).unwrap();
        assert!(outcome.is_success());
        let got = outcome.key.expect("key");
        assert!(key_is_functionally_correct(&nl, &locked.netlist, &got));
        assert!(outcome.stats.oracle_rounds < outcome.stats.dips);
    }

    #[test]
    fn dip_limit_stops_early() {
        let nl = majority3();
        let key = polykey_locking::Key::from_u64(0b110, 3);
        let locked = lock_sarlock_with_key(&nl, &SarlockConfig::new(3), &key).unwrap();
        let mut oracle = SimOracle::new(&nl).unwrap();
        let mut config = SatAttackConfig::new();
        config.max_dips = Some(2);
        let outcome = sat_attack(&locked.netlist, &mut oracle, &config).unwrap();
        assert_eq!(outcome.status, AttackStatus::DipLimit);
        assert_eq!(outcome.stats.dips, 2);
        assert!(outcome.key.is_none());
    }

    #[test]
    fn forced_inputs_stay_forced() {
        let nl = majority3();
        let key = polykey_locking::Key::from_u64(0b011, 3);
        let locked = lock_sarlock_with_key(&nl, &SarlockConfig::new(3), &key).unwrap();
        let inner = SimOracle::new(&nl).unwrap();
        let mut oracle = crate::oracle::RestrictedOracle::new(inner, vec![(0, true)]);
        let mut config = SatAttackConfig::new();
        config.force_inputs = vec![(0, true)];
        let outcome = sat_attack(&locked.netlist, &mut oracle, &config).unwrap();
        assert!(outcome.is_success());
        // Every recorded DIP respects the forced bit.
        assert!(outcome.dip_patterns.iter().all(|d| d[0]));
        // The recovered key unlocks the a=1 half-space.
        let got = outcome.key.expect("key");
        let mut orig = Simulator::new(&nl).unwrap();
        let mut lsim = Simulator::new(&locked.netlist).unwrap();
        for v in 0..8u64 {
            let bits = bits_of(v, 3);
            if bits[0] {
                assert_eq!(lsim.eval(&bits, got.bits()), orig.eval(&bits, &[]));
            }
        }
    }

    #[test]
    fn keyless_circuit_succeeds_trivially() {
        let nl = majority3();
        let mut oracle = SimOracle::new(&nl).unwrap();
        let outcome = sat_attack(&nl, &mut oracle, &SatAttackConfig::new()).unwrap();
        assert!(outcome.is_success());
        assert_eq!(outcome.stats.dips, 0);
        assert_eq!(outcome.key.expect("empty key").len(), 0);
    }

    #[test]
    fn oracle_width_mismatch_rejected() {
        let nl = majority3();
        let mut big = Netlist::new("big");
        for i in 0..4 {
            big.add_input(format!("x{i}")).unwrap();
        }
        let inputs = big.inputs().to_vec();
        let g = big.add_gate("g", GateKind::And, &inputs).unwrap();
        big.mark_output(g).unwrap();
        let mut oracle = SimOracle::new(&big).unwrap();
        assert!(matches!(
            sat_attack(&nl, &mut oracle, &SatAttackConfig::new()),
            Err(AttackError::OracleMismatch { what: "inputs", .. })
        ));
    }

    #[test]
    fn dip_budget_stops_softly_with_partial_stats() {
        // SARLock |K| = 3 needs ~7 DIPs; a soft budget of 2 must stop the
        // run as BudgetExhausted (a resplit request), not DipLimit.
        let nl = majority3();
        let key = polykey_locking::Key::from_u64(0b101, 3);
        let locked = lock_sarlock_with_key(&nl, &SarlockConfig::new(3), &key).unwrap();
        let mut oracle = SimOracle::new(&nl).unwrap();
        let mut config = SatAttackConfig::new();
        config.dip_budget = Some(2);
        let outcome = sat_attack(&locked.netlist, &mut oracle, &config).unwrap();
        assert_eq!(outcome.status, AttackStatus::BudgetExhausted);
        assert_eq!(outcome.stats.dips, 2, "partial stats must survive");
        assert_eq!(outcome.stats.oracle_queries, 2);
        assert!(outcome.key.is_none());
    }

    #[test]
    fn converging_exactly_at_the_budget_still_succeeds() {
        // The budget only fires when more DIPs are *needed*: a run whose
        // budget equals its natural DIP count must still extract the key.
        let nl = majority3();
        let key = polykey_locking::Key::from_u64(0b011, 3);
        let locked = lock_sarlock_with_key(&nl, &SarlockConfig::new(3), &key).unwrap();
        let mut oracle = SimOracle::new(&nl).unwrap();
        let unbudgeted =
            sat_attack(&locked.netlist, &mut oracle, &SatAttackConfig::new()).unwrap();
        assert!(unbudgeted.is_success());
        let mut config = SatAttackConfig::new();
        config.dip_budget = Some(unbudgeted.stats.dips);
        let mut oracle = SimOracle::new(&nl).unwrap();
        let outcome = sat_attack(&locked.netlist, &mut oracle, &config).unwrap();
        assert!(outcome.is_success());
        assert_eq!(outcome.stats.dips, unbudgeted.stats.dips);
    }

    #[test]
    fn zero_time_budget_reports_budget_exhausted() {
        // The soft clock maps to BudgetExhausted; the hard `time_limit`
        // keeps reporting TimeLimit (see `time_limit_reports_timeout`).
        let nl = majority3();
        let key = polykey_locking::Key::from_u64(0b110, 3);
        let locked = lock_sarlock_with_key(&nl, &SarlockConfig::new(3), &key).unwrap();
        let mut oracle = SimOracle::new(&nl).unwrap();
        let mut config = SatAttackConfig::new();
        config.time_budget = Some(Duration::ZERO);
        let outcome = sat_attack(&locked.netlist, &mut oracle, &config).unwrap();
        assert_eq!(outcome.status, AttackStatus::BudgetExhausted);
    }

    #[test]
    fn hard_deadline_outranks_soft_budget() {
        // With both clocks at zero the hard limit wins: a session timeout
        // must never be misread as a resplit request.
        let nl = majority3();
        let key = polykey_locking::Key::from_u64(0b001, 3);
        let locked = lock_sarlock_with_key(&nl, &SarlockConfig::new(3), &key).unwrap();
        let mut oracle = SimOracle::new(&nl).unwrap();
        let mut config = SatAttackConfig::new();
        config.time_limit = Some(Duration::ZERO);
        config.time_budget = Some(Duration::ZERO);
        let outcome = sat_attack(&locked.netlist, &mut oracle, &config).unwrap();
        assert_eq!(outcome.status, AttackStatus::TimeLimit);
    }

    #[test]
    fn time_limit_reports_timeout() {
        // A zero time limit must stop immediately with TimeLimit.
        let nl = majority3();
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let locked = lock_rll(&nl, 4, &mut rng).unwrap();
        let mut oracle = SimOracle::new(&nl).unwrap();
        let mut config = SatAttackConfig::new();
        config.time_limit = Some(Duration::ZERO);
        let outcome = sat_attack(&locked.netlist, &mut oracle, &config).unwrap();
        assert_eq!(outcome.status, AttackStatus::TimeLimit);
    }
}
