//! The [`AttackSession`] builder: one attack surface for every scenario.
//!
//! A session bundles the attacker's oracle with every knob the suite's
//! attacks share — splitting effort, worker threads, wall-clock budget,
//! cancellation, progress reporting — behind a single [`AttackSession::run`]
//! returning an [`AttackReport`]. `split_effort = 0` runs the classic
//! one-key SAT attack; `split_effort = N > 0` runs Algorithm 1 with `2^N`
//! sub-attacks. Either way the report carries uniform [`AttackStats`]
//! (DIPs, oracle queries, solver conflicts, per-subtask wall times), so
//! harnesses sweep schemes × efforts × circuits without caring which
//! engine ran.
//!
//! # Examples
//!
//! ```
//! use polykey_attack::{AttackSession, SimOracle};
//! use polykey_encode::{check_equivalence, EquivResult};
//! use polykey_locking::{Key, LockScheme, Sarlock};
//! use polykey_netlist::{GateKind, Netlist};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A toy design, locked with SARLock (|K| = 3).
//! let mut nl = Netlist::new("toy");
//! let a = nl.add_input("a")?;
//! let b = nl.add_input("b")?;
//! let c = nl.add_input("c")?;
//! let g = nl.add_gate("g", GateKind::And, &[a, b])?;
//! let y = nl.add_gate("y", GateKind::Xor, &[g, c])?;
//! nl.mark_output(y)?;
//! let locked = Sarlock::new(3).lock(&nl, &Key::from_u64(5, 3))?;
//!
//! // Algorithm 1 with N = 1: two parallel sub-attacks.
//! let mut oracle = SimOracle::new(&nl)?;
//! let report = AttackSession::builder()
//!     .oracle(&mut oracle)
//!     .split_effort(1)
//!     .build()?
//!     .run(&locked.netlist)?;
//! assert!(report.is_complete());
//!
//! // Fig. 1(b): recombine the sub-space keys — and prove the result
//! // equivalent to the original design.
//! let unlocked = report.recombine(&locked.netlist)?;
//! assert_eq!(check_equivalence(&nl, &unlocked)?, EquivResult::Equivalent);
//! # Ok(())
//! # }
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use polykey_locking::Key;
use polykey_netlist::{Netlist, NodeId};
use polykey_sat::{SolverConfig, SolverStats};

use crate::error::AttackError;
use crate::multikey::{run_multi_key, EngineOpts, MultiKeyConfig, MultiKeyOutcome, SubKey};
use crate::oracle::{Oracle, SharedOracle};
use crate::recombine::recombine_multikey;
use crate::sat_attack::{
    run_sat_attack, AttackStatus, RunCtl, SatAttackConfig, SatAttackOutcome,
};
use crate::split::SplitStrategy;

/// A cloneable cooperative-cancellation handle.
///
/// Cancelling stops every sub-attack of the session at its next
/// DIP-refinement iteration (a running solver call completes first); the
/// affected runs report [`AttackStatus::Cancelled`].
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    #[must_use]
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation (idempotent; visible to all clones).
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// True once [`CancelToken::cancel`] has been called.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Progress notifications delivered to [`AttackSessionBuilder::on_progress`].
///
/// Callbacks may arrive concurrently from the session's worker threads.
#[derive(Clone, Debug)]
pub enum ProgressEvent {
    /// A sub-attack (term) is about to start. The plain SAT attack reports
    /// one term with `pattern = 0, width = 0`.
    TermStarted {
        /// The term's prefix-tree path (see [`crate::SubKey::pattern`]).
        pattern: u64,
        /// The path's width (depth in the adaptive term tree).
        width: u8,
        /// Terms spawned so far in this session run. Static runs report
        /// the fixed `2^N` count; adaptive runs grow it with every
        /// resplit.
        terms: usize,
        /// Gates in the netlist this term attacks (after cofactoring).
        gates: usize,
    },
    /// A distinguishing input pattern was found.
    Dip {
        /// The path of the term that found it.
        pattern: u64,
        /// That term's path width.
        width: u8,
        /// That term's running DIP count.
        dips: u64,
    },
    /// A sub-attack finished (for budget-exhausted terms, a
    /// [`ProgressEvent::TermSplit`] follows).
    TermFinished {
        /// The term's prefix-tree path.
        pattern: u64,
        /// The path's width.
        width: u8,
        /// How the term ended.
        status: AttackStatus,
        /// The term's final DIP count.
        dips: u64,
        /// The term's wall-clock time.
        wall_time: Duration,
    },
    /// A term exhausted its per-term budget and was subdivided: its two
    /// children (paths one bit wider) re-enter the work queue.
    TermSplit {
        /// The exhausted term's prefix-tree path.
        pattern: u64,
        /// The path's width (children have `width + 1`).
        width: u8,
        /// DIPs the term spent before giving up (kept in the totals).
        dips: u64,
    },
}

/// Uniform work counters, available from every [`AttackReport`].
#[derive(Clone, Debug, Default)]
pub struct AttackStats {
    /// Distinguishing input patterns, summed over all sub-attacks.
    pub dips: u64,
    /// Oracle queries, summed over all sub-attacks (one per answered DIP).
    pub oracle_queries: u64,
    /// Oracle round-trips, summed over all sub-attacks. With
    /// [`AttackSessionBuilder::dip_batch`] `> 1` a whole batch of DIPs is
    /// answered per round, so this drops well below `oracle_queries`; the
    /// two are equal for the classic one-DIP-per-round loop.
    pub oracle_rounds: u64,
    /// DIP-refinement epochs, summed over all sub-attacks (see
    /// [`crate::SatAttackStats::epochs`]).
    pub epochs: u64,
    /// Full CDCL solver counters (conflicts, restarts, learnt clauses, …),
    /// summed field-wise over all sub-attacks.
    pub solver: SolverStats,
    /// End-to-end wall-clock time of the session run.
    pub wall_time: Duration,
    /// Per-subtask wall times, in pattern order (one entry for the plain
    /// SAT attack). Their maximum is the attack latency on a machine with
    /// enough cores — the paper's headline metric.
    pub subtask_wall_times: Vec<Duration>,
}

impl AttackStats {
    /// The longest sub-task — the parallel-attack latency.
    #[must_use]
    pub fn max_subtask_time(&self) -> Duration {
        self.subtask_wall_times.iter().max().copied().unwrap_or_default()
    }
}

/// The result of [`AttackSession::run`], subsuming the one-key and
/// multi-key outcome types behind shared accessors.
#[derive(Clone, Debug)]
pub enum AttackReport {
    /// `split_effort = 0`: the classic oracle-guided SAT attack.
    SingleKey(SatAttackOutcome),
    /// `split_effort = N > 0`: Algorithm 1 with `2^N` sub-attacks.
    MultiKey(MultiKeyOutcome),
}

impl AttackReport {
    /// True iff every sub-attack ended in [`AttackStatus::Success`].
    #[must_use]
    pub fn is_complete(&self) -> bool {
        match self {
            AttackReport::SingleKey(outcome) => outcome.status == AttackStatus::Success,
            AttackReport::MultiKey(outcome) => outcome.is_complete(),
        }
    }

    /// The overall status: [`AttackStatus::Success`] when complete,
    /// otherwise the first non-success sub-attack status.
    #[must_use]
    pub fn status(&self) -> AttackStatus {
        match self {
            AttackReport::SingleKey(outcome) => outcome.status,
            AttackReport::MultiKey(outcome) => outcome
                .reports
                .iter()
                .map(|r| r.status)
                .find(|&s| s != AttackStatus::Success)
                .unwrap_or(AttackStatus::Success),
        }
    }

    /// The recovered globally-correct key, when one exists: the one-key
    /// attack's key, or the single width-0 term key of a multi-key run
    /// that never actually split.
    #[must_use]
    pub fn key(&self) -> Option<&Key> {
        match self {
            AttackReport::SingleKey(outcome) => outcome.key.as_ref(),
            AttackReport::MultiKey(outcome) => match &outcome.keys[..] {
                [sub] if sub.width == 0 => Some(&sub.key),
                _ => None,
            },
        }
    }

    /// The recovered sub-space keys: one per successful leaf term (the
    /// one-key attack yields a single `pattern = 0, width = 0` entry).
    #[must_use]
    pub fn sub_keys(&self) -> Vec<SubKey> {
        match self {
            AttackReport::SingleKey(outcome) => outcome
                .key
                .clone()
                .map(|key| SubKey { pattern: 0, width: 0, key })
                .into_iter()
                .collect(),
            AttackReport::MultiKey(outcome) => outcome.keys.clone(),
        }
    }

    /// The splitting ports (empty for the one-key attack).
    #[must_use]
    pub fn split_inputs(&self) -> &[NodeId] {
        match self {
            AttackReport::SingleKey(_) => &[],
            AttackReport::MultiKey(outcome) => &outcome.split_inputs,
        }
    }

    /// Uniform work counters across both report kinds.
    #[must_use]
    pub fn stats(&self) -> AttackStats {
        match self {
            AttackReport::SingleKey(outcome) => AttackStats {
                dips: outcome.stats.dips,
                oracle_queries: outcome.stats.oracle_queries,
                oracle_rounds: outcome.stats.oracle_rounds,
                epochs: outcome.stats.epochs,
                solver: outcome.stats.solver,
                wall_time: outcome.stats.wall_time,
                subtask_wall_times: vec![outcome.stats.wall_time],
            },
            // Sums run over every term that did work — leaves *and*
            // budget-exhausted interior terms — so oracle/solver
            // accounting matches what was actually spent.
            AttackReport::MultiKey(outcome) => AttackStats {
                dips: outcome.all_reports().map(|r| r.dips).sum(),
                oracle_queries: outcome.all_reports().map(|r| r.oracle_queries).sum(),
                oracle_rounds: outcome.all_reports().map(|r| r.oracle_rounds).sum(),
                epochs: outcome.all_reports().map(|r| r.epochs).sum(),
                solver: outcome.all_reports().map(|r| r.solver).sum(),
                wall_time: outcome.wall_time,
                subtask_wall_times: outcome.all_reports().map(|r| r.wall_time).collect(),
            },
        }
    }

    /// Builds the recombined, keyless netlist (Fig. 1(b)): the multi-key
    /// MUX tree, or — for a one-key report — the locked design with the
    /// recovered key pinned into the key ports.
    ///
    /// # Errors
    ///
    /// [`AttackError::BadKeySet`] if the run was incomplete (some term has
    /// no key), plus structural netlist errors.
    pub fn recombine(&self, locked: &Netlist) -> Result<Netlist, AttackError> {
        match self {
            AttackReport::SingleKey(_) => {
                let keys = self.sub_keys();
                recombine_multikey(locked, &[], &keys)
            }
            AttackReport::MultiKey(outcome) => {
                recombine_multikey(locked, &outcome.split_inputs, &outcome.keys)
            }
        }
    }

    /// The underlying one-key outcome, if this was a `split_effort = 0`
    /// run.
    #[must_use]
    pub fn as_single_key(&self) -> Option<&SatAttackOutcome> {
        match self {
            AttackReport::SingleKey(outcome) => Some(outcome),
            AttackReport::MultiKey(_) => None,
        }
    }

    /// The underlying multi-key outcome, if this was a `split_effort > 0`
    /// run.
    #[must_use]
    pub fn as_multi_key(&self) -> Option<&MultiKeyOutcome> {
        match self {
            AttackReport::SingleKey(_) => None,
            AttackReport::MultiKey(outcome) => Some(outcome),
        }
    }
}

type ProgressFn<'a> = dyn Fn(&ProgressEvent) + Send + Sync + 'a;

/// Builder for [`AttackSession`] — see that type's docs for the
/// end-to-end example.
#[must_use]
pub struct AttackSessionBuilder<'a> {
    oracle: Option<&'a mut (dyn Oracle + Send)>,
    split_effort: usize,
    strategy: SplitStrategy,
    simplify: bool,
    threads: Option<usize>,
    time_budget: Option<Duration>,
    max_dips: Option<u64>,
    record_dips: bool,
    textbook: bool,
    dip_batch: usize,
    term_dip_budget: Option<u64>,
    term_time_budget: Option<Duration>,
    max_split_depth: Option<usize>,
    solver: SolverConfig,
    on_progress: Option<Box<ProgressFn<'a>>>,
    cancel: Option<CancelToken>,
}

impl Default for AttackSessionBuilder<'_> {
    /// Same as [`AttackSessionBuilder::new`].
    fn default() -> Self {
        AttackSessionBuilder::new()
    }
}

impl<'a> AttackSessionBuilder<'a> {
    /// Starts a builder with the defaults: plain SAT attack, re-synthesis
    /// on, one thread per term, no limits.
    pub fn new() -> AttackSessionBuilder<'a> {
        AttackSessionBuilder {
            oracle: None,
            split_effort: 0,
            strategy: SplitStrategy::default(),
            simplify: true,
            threads: None,
            time_budget: None,
            max_dips: None,
            record_dips: true,
            textbook: false,
            dip_batch: 1,
            term_dip_budget: None,
            term_time_budget: None,
            max_split_depth: None,
            solver: SolverConfig::default(),
            on_progress: None,
            cancel: None,
        }
    }

    /// Sets the attacker's black-box oracle (required). Any `Send` oracle
    /// composes: simulated, restricted, or custom.
    pub fn oracle(mut self, oracle: &'a mut (dyn Oracle + Send)) -> Self {
        self.oracle = Some(oracle);
        self
    }

    /// Sets the splitting effort `N`: `0` (default) runs the classic SAT
    /// attack, `N > 0` runs Algorithm 1 with `2^N` sub-attacks.
    pub fn split_effort(mut self, n: usize) -> Self {
        self.split_effort = n;
        self
    }

    /// Sets how the `N` splitting ports are chosen (default: the paper's
    /// fan-out-cone heuristic).
    pub fn strategy(mut self, strategy: SplitStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Enables/disables per-term re-synthesis (Algorithm 1 line 4;
    /// default on).
    pub fn simplify(mut self, simplify: bool) -> Self {
        self.simplify = simplify;
        self
    }

    /// Caps the sub-attack worker threads. Default: one thread per term;
    /// `1` forces sequential execution.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Sets a wall-clock budget for the whole run (shared by all terms);
    /// exhausted runs report [`AttackStatus::TimeLimit`].
    pub fn time_budget(mut self, budget: Duration) -> Self {
        self.time_budget = Some(budget);
        self
    }

    /// Stops each sub-attack after this many DIPs.
    pub fn max_dips(mut self, max_dips: u64) -> Self {
        self.max_dips = Some(max_dips);
        self
    }

    /// Records every DIP pattern in the outcome (default on; turn off for
    /// benchmarking).
    pub fn record_dips(mut self, record: bool) -> Self {
        self.record_dips = record;
        self
    }

    /// Uses the textbook per-DIP encoding (full circuit copies) instead of
    /// the optimized folded encoding — the formulation of the paper's
    /// tooling, whose per-iteration CNF growth is what makes LUT insertion
    /// expensive in Table 2.
    pub fn textbook(mut self, textbook: bool) -> Self {
        self.textbook = textbook;
        self
    }

    /// Sets how many DIPs each refinement epoch harvests and answers per
    /// oracle round-trip (default `1`, the classic loop).
    ///
    /// Larger batches trade extra solver calls (and possibly redundant
    /// DIPs) for far fewer oracle rounds — the right trade whenever oracle
    /// access dominates, which the multi-key premise makes the common
    /// case. `64` matches the packed simulator's word width, so a
    /// [`SimOracle`](crate::SimOracle)-backed session answers a full batch
    /// in one simulation pass. Every sub-attack of a multi-key run
    /// (`split_effort > 0`) shares the batching path. Compare
    /// [`AttackStats::oracle_rounds`] against
    /// [`AttackStats::oracle_queries`] to see the savings.
    ///
    /// # Examples
    ///
    /// ```
    /// use polykey_attack::{AttackSession, SimOracle};
    /// use polykey_locking::{Key, LockScheme, Sarlock};
    /// use polykey_netlist::{GateKind, Netlist};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut nl = Netlist::new("toy");
    /// let a = nl.add_input("a")?;
    /// let b = nl.add_input("b")?;
    /// let c = nl.add_input("c")?;
    /// let g = nl.add_gate("g", GateKind::And, &[a, b])?;
    /// let y = nl.add_gate("y", GateKind::Xor, &[g, c])?;
    /// nl.mark_output(y)?;
    /// let locked = Sarlock::new(3).lock(&nl, &Key::from_u64(5, 3))?;
    ///
    /// // SARLock |K| = 3 needs ~7 DIPs; batching answers them in far
    /// // fewer oracle round-trips without changing what is learnt.
    /// let mut oracle = SimOracle::new(&nl)?;
    /// let report = AttackSession::builder()
    ///     .oracle(&mut oracle)
    ///     .dip_batch(64)
    ///     .build()?
    ///     .run(&locked.netlist)?;
    /// assert!(report.is_complete());
    /// let stats = report.stats();
    /// assert_eq!(stats.oracle_queries, stats.dips);
    /// assert!(stats.oracle_rounds < stats.oracle_queries);
    /// # Ok(())
    /// # }
    /// ```
    pub fn dip_batch(mut self, dip_batch: usize) -> Self {
        self.dip_batch = dip_batch;
        self
    }

    /// Turns on **adaptive splitting** with a per-term DIP budget: a term
    /// that spends `budget` DIPs without converging is split one port
    /// deeper — re-ranking the remaining inputs on the term's own
    /// cofactored netlist — and its two children re-enter the work queue.
    /// Easy sub-spaces finish shallow; hard ones (say, the SARLock term
    /// containing the protected pattern) are subdivided until they yield.
    ///
    /// Works from any root effort, including `split_effort(0)`: the tree
    /// then grows purely on demand. See also
    /// [`AttackSessionBuilder::term_time_budget`] and
    /// [`AttackSessionBuilder::max_split_depth`].
    ///
    /// # Examples
    ///
    /// ```
    /// use polykey_attack::{AttackSession, SimOracle};
    /// use polykey_encode::{check_equivalence, EquivResult};
    /// use polykey_locking::{Key, LockScheme, Sarlock};
    /// use polykey_netlist::{GateKind, Netlist};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut nl = Netlist::new("toy");
    /// let a = nl.add_input("a")?;
    /// let b = nl.add_input("b")?;
    /// let c = nl.add_input("c")?;
    /// let g = nl.add_gate("g", GateKind::And, &[a, b])?;
    /// let y = nl.add_gate("y", GateKind::Xor, &[g, c])?;
    /// nl.mark_output(y)?;
    /// let locked = Sarlock::new(3).lock(&nl, &Key::from_u64(5, 3))?;
    ///
    /// // SARLock |K| = 3 needs ~7 DIPs in one piece; a budget of 2 makes
    /// // the engine grow a term tree instead, and the mixed-depth keys
    /// // still recombine to the exact original design.
    /// let mut oracle = SimOracle::new(&nl)?;
    /// let report = AttackSession::builder()
    ///     .oracle(&mut oracle)
    ///     .term_dip_budget(2)
    ///     .build()?
    ///     .run(&locked.netlist)?;
    /// assert!(report.is_complete());
    /// let outcome = report.as_multi_key().expect("adaptive runs split");
    /// assert!(outcome.max_depth() > 0);
    /// let unlocked = report.recombine(&locked.netlist)?;
    /// assert_eq!(check_equivalence(&nl, &unlocked)?, EquivResult::Equivalent);
    /// # Ok(())
    /// # }
    /// ```
    pub fn term_dip_budget(mut self, budget: u64) -> Self {
        self.term_dip_budget = Some(budget);
        self
    }

    /// Turns on adaptive splitting with a per-term wall-clock budget: a
    /// term still unconverged after `budget` is split one port deeper (see
    /// [`AttackSessionBuilder::term_dip_budget`]). Both budgets may be set
    /// together; whichever exhausts first triggers the resplit.
    pub fn term_time_budget(mut self, budget: Duration) -> Self {
        self.term_time_budget = Some(budget);
        self
    }

    /// Caps how deep adaptive resplitting may grow the term tree. Terms
    /// at the cap attack without the soft budgets (they can no longer be
    /// subdivided, so giving up early would serve nothing). Default: as
    /// deep as the input count and [`crate::MAX_SPLIT_WIDTH`] allow.
    pub fn max_split_depth(mut self, depth: usize) -> Self {
        self.max_split_depth = Some(depth);
        self
    }

    /// Overrides the CDCL solver configuration.
    pub fn solver(mut self, solver: SolverConfig) -> Self {
        self.solver = solver;
        self
    }

    /// Installs a progress callback (may be called from worker threads).
    pub fn on_progress<F>(mut self, callback: F) -> Self
    where
        F: Fn(&ProgressEvent) + Send + Sync + 'a,
    {
        self.on_progress = Some(Box::new(callback));
        self
    }

    /// Installs a cancellation token; cancelled runs report
    /// [`AttackStatus::Cancelled`].
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Finalizes the session.
    ///
    /// # Errors
    ///
    /// [`AttackError::SessionConfig`] if no oracle was provided or
    /// `threads == 0`.
    pub fn build(self) -> Result<AttackSession<'a>, AttackError> {
        let Some(oracle) = self.oracle else {
            return Err(AttackError::SessionConfig {
                message: "an oracle is required: call `.oracle(..)` before `.build()`".into(),
            });
        };
        if self.threads == Some(0) {
            return Err(AttackError::SessionConfig {
                message: "`threads` must be at least 1".into(),
            });
        }
        if self.dip_batch == 0 {
            return Err(AttackError::SessionConfig {
                message: "`dip_batch` must be at least 1".into(),
            });
        }
        if self.term_dip_budget == Some(0) {
            return Err(AttackError::SessionConfig {
                message: "`term_dip_budget` must be at least 1".into(),
            });
        }
        if self.term_time_budget == Some(Duration::ZERO) {
            // A zero budget expires before a term's first solver call:
            // every term would split without doing any work, expanding the
            // tree to the full grid at the depth cap.
            return Err(AttackError::SessionConfig {
                message: "`term_time_budget` must be non-zero".into(),
            });
        }
        if let Some(depth) = self.max_split_depth {
            if depth > crate::MAX_SPLIT_WIDTH {
                return Err(AttackError::SessionConfig {
                    message: format!(
                        "`max_split_depth` {depth} exceeds the engine's maximum split \
                         width {}",
                        crate::MAX_SPLIT_WIDTH
                    ),
                });
            }
            if depth < self.split_effort {
                return Err(AttackError::SessionConfig {
                    message: format!(
                        "`max_split_depth` {depth} is shallower than `split_effort` {}",
                        self.split_effort
                    ),
                });
            }
        }
        Ok(AttackSession {
            oracle,
            split_effort: self.split_effort,
            strategy: self.strategy,
            simplify: self.simplify,
            threads: self.threads,
            time_budget: self.time_budget,
            max_dips: self.max_dips,
            record_dips: self.record_dips,
            textbook: self.textbook,
            dip_batch: self.dip_batch,
            term_dip_budget: self.term_dip_budget,
            term_time_budget: self.term_time_budget,
            max_split_depth: self.max_split_depth,
            solver: self.solver,
            on_progress: self.on_progress,
            cancel: self.cancel,
        })
    }
}

/// A configured attack, ready to [`run`](AttackSession::run) against one
/// or more locked netlists (the oracle must match each target's
/// interface).
#[must_use = "an attack session does nothing until `run` is called"]
pub struct AttackSession<'a> {
    oracle: &'a mut (dyn Oracle + Send),
    split_effort: usize,
    strategy: SplitStrategy,
    simplify: bool,
    threads: Option<usize>,
    time_budget: Option<Duration>,
    max_dips: Option<u64>,
    record_dips: bool,
    textbook: bool,
    dip_batch: usize,
    term_dip_budget: Option<u64>,
    term_time_budget: Option<Duration>,
    max_split_depth: Option<usize>,
    solver: SolverConfig,
    on_progress: Option<Box<ProgressFn<'a>>>,
    cancel: Option<CancelToken>,
}

impl<'a> AttackSession<'a> {
    /// Starts building a session.
    pub fn builder() -> AttackSessionBuilder<'a> {
        AttackSessionBuilder::new()
    }

    /// Runs the configured attack against `locked`.
    ///
    /// # Errors
    ///
    /// - [`AttackError::OracleMismatch`] if the oracle's port counts
    ///   disagree with the locked netlist.
    /// - [`AttackError::SplitTooWide`] if the splitting effort exceeds the
    ///   input count.
    /// - [`AttackError::SplitTooDeep`] if the splitting effort exceeds
    ///   [`crate::MAX_SPLIT_WIDTH`] (u64 sub-space patterns cannot pin
    ///   more than 63 ports).
    /// - Structural errors from cofactoring or encoding.
    pub fn run(&mut self, locked: &Netlist) -> Result<AttackReport, AttackError> {
        let deadline = self.time_budget.map(|budget| Instant::now() + budget);
        let sat = SatAttackConfig {
            max_dips: self.max_dips,
            time_limit: None,
            force_inputs: Vec::new(),
            solver: self.solver,
            record_dips: self.record_dips,
            fold_dip_copies: !self.textbook,
            dip_batch: self.dip_batch,
            dip_budget: None,
            time_budget: None,
        };
        let progress = self.on_progress.as_deref();
        // A per-term budget means adaptive splitting, which lives in the
        // multi-key engine — even from a width-0 root, where the term tree
        // grows purely on demand.
        let adaptive = self.term_dip_budget.is_some() || self.term_time_budget.is_some();
        if self.split_effort == 0 && !adaptive {
            if let Some(progress) = progress {
                progress(&ProgressEvent::TermStarted {
                    pattern: 0,
                    width: 0,
                    terms: 1,
                    gates: locked.num_gates(),
                });
            }
            let on_dip = progress.map(|progress| {
                move |dips: u64| progress(&ProgressEvent::Dip { pattern: 0, width: 0, dips })
            });
            let ctl = RunCtl {
                deadline,
                cancel: self.cancel.as_ref(),
                on_dip: on_dip.as_ref().map(|f| f as &(dyn Fn(u64) + Sync)),
            };
            let outcome = run_sat_attack(locked, self.oracle, &sat, &ctl)?;
            if let Some(progress) = progress {
                progress(&ProgressEvent::TermFinished {
                    pattern: 0,
                    width: 0,
                    status: outcome.status,
                    dips: outcome.stats.dips,
                    wall_time: outcome.stats.wall_time,
                });
            }
            Ok(AttackReport::SingleKey(outcome))
        } else {
            // `MultiKeyConfig::parallel` is only read by the deprecated
            // `multi_key_attack` shim; the engine's concurrency is governed
            // by `EngineOpts::threads` below, so the default is left as-is.
            let config = MultiKeyConfig {
                split_effort: self.split_effort,
                strategy: self.strategy,
                simplify: self.simplify,
                sat,
                term_dip_budget: self.term_dip_budget,
                term_time_budget: self.term_time_budget,
                max_split_depth: self.max_split_depth,
                ..MultiKeyConfig::default()
            };
            let shared = SharedOracle::new(self.oracle);
            let opts = EngineOpts {
                threads: self.threads,
                ctl: RunCtl { deadline, cancel: self.cancel.as_ref(), on_dip: None },
                progress: progress.map(|p| p as &(dyn Fn(&ProgressEvent) + Sync)),
            };
            let outcome = run_multi_key(locked, &shared, &config, &opts)?;
            Ok(AttackReport::MultiKey(outcome))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::SimOracle;
    use polykey_locking::{LockScheme, Rll, Sarlock};
    use polykey_netlist::GateKind;
    use std::sync::Mutex;

    fn majority3() -> Netlist {
        let mut nl = Netlist::new("maj3");
        let a = nl.add_input("a").unwrap();
        let b = nl.add_input("b").unwrap();
        let c = nl.add_input("c").unwrap();
        let ab = nl.add_gate("ab", GateKind::And, &[a, b]).unwrap();
        let ac = nl.add_gate("ac", GateKind::And, &[a, c]).unwrap();
        let bc = nl.add_gate("bc", GateKind::And, &[b, c]).unwrap();
        let y = nl.add_gate("y", GateKind::Or, &[ab, ac, bc]).unwrap();
        nl.mark_output(y).unwrap();
        nl
    }

    #[test]
    fn builder_requires_an_oracle() {
        assert!(matches!(
            AttackSession::builder().build(),
            Err(AttackError::SessionConfig { .. })
        ));
    }

    #[test]
    fn zero_threads_rejected() {
        let nl = majority3();
        let mut oracle = SimOracle::new(&nl).unwrap();
        assert!(matches!(
            AttackSession::builder().oracle(&mut oracle).threads(0).build(),
            Err(AttackError::SessionConfig { .. })
        ));
    }

    #[test]
    fn zero_dip_batch_rejected() {
        let nl = majority3();
        let mut oracle = SimOracle::new(&nl).unwrap();
        assert!(matches!(
            AttackSession::builder().oracle(&mut oracle).dip_batch(0).build(),
            Err(AttackError::SessionConfig { .. })
        ));
    }

    #[test]
    fn zero_term_dip_budget_rejected() {
        let nl = majority3();
        let mut oracle = SimOracle::new(&nl).unwrap();
        assert!(matches!(
            AttackSession::builder().oracle(&mut oracle).term_dip_budget(0).build(),
            Err(AttackError::SessionConfig { .. })
        ));
    }

    #[test]
    fn zero_term_time_budget_rejected() {
        // A zero soft clock would expire before any work: every term below
        // the depth cap would split immediately, blowing the tree up to
        // the full grid.
        let nl = majority3();
        let mut oracle = SimOracle::new(&nl).unwrap();
        assert!(matches!(
            AttackSession::builder()
                .oracle(&mut oracle)
                .term_time_budget(Duration::ZERO)
                .build(),
            Err(AttackError::SessionConfig { .. })
        ));
    }

    #[test]
    fn invalid_max_split_depth_rejected() {
        let nl = majority3();
        let mut oracle = SimOracle::new(&nl).unwrap();
        // Deeper than the u64 pattern representation…
        assert!(matches!(
            AttackSession::builder().oracle(&mut oracle).max_split_depth(64).build(),
            Err(AttackError::SessionConfig { .. })
        ));
        // …or shallower than the root effort.
        let mut oracle = SimOracle::new(&nl).unwrap();
        assert!(matches!(
            AttackSession::builder()
                .oracle(&mut oracle)
                .split_effort(3)
                .max_split_depth(2)
                .build(),
            Err(AttackError::SessionConfig { .. })
        ));
    }

    #[test]
    fn panicking_progress_callback_fails_the_term_not_the_session() {
        // Regression: the TermFinished emission used to sit outside the
        // term's panic boundary, so a panicking callback killed the worker
        // with its in-flight slot still counted — wedging every sibling on
        // the condvar and hanging run() forever.
        let nl = majority3();
        let locked = Sarlock::new(3).lock(&nl, &Key::from_u64(0b101, 3)).unwrap();
        let mut oracle = SimOracle::new(&nl).unwrap();
        let report = AttackSession::builder()
            .oracle(&mut oracle)
            .split_effort(1)
            .threads(2)
            .on_progress(|e| {
                if matches!(e, ProgressEvent::TermFinished { pattern: 1, .. }) {
                    panic!("user callback bug");
                }
            })
            .build()
            .unwrap()
            .run(&locked.netlist)
            .expect("the session must survive a panicking callback");
        let outcome = report.as_multi_key().expect("N > 0");
        let statuses: Vec<AttackStatus> = outcome.reports.iter().map(|r| r.status).collect();
        assert_eq!(statuses.len(), 2);
        assert!(statuses.contains(&AttackStatus::Failed), "{statuses:?}");
        assert!(statuses.contains(&AttackStatus::Success), "{statuses:?}");
    }

    #[test]
    fn batched_multi_key_run_shares_the_batching_path() {
        let nl = majority3();
        let locked = Sarlock::new(3).lock(&nl, &Key::from_u64(0b101, 3)).unwrap();
        let mut oracle = SimOracle::new(&nl).unwrap();
        let report = AttackSession::builder()
            .oracle(&mut oracle)
            .split_effort(1)
            .dip_batch(64)
            .build()
            .unwrap()
            .run(&locked.netlist)
            .unwrap();
        assert!(report.is_complete());
        let stats = report.stats();
        // Each sub-attack batches its DIP traffic, so total rounds drop
        // below total queries; per-DIP accounting is unchanged.
        assert_eq!(stats.oracle_queries, stats.dips);
        assert!(stats.oracle_rounds < stats.oracle_queries);
        assert_eq!(oracle.queries(), stats.oracle_queries);
        // And the recombined design is still exact.
        let unlocked = report.recombine(&locked.netlist).unwrap();
        assert!(unlocked.key_inputs().is_empty());
    }

    #[test]
    fn single_key_run_breaks_rll() {
        let nl = majority3();
        let locked = Rll::new(4).with_seed(17).lock(&nl, &Key::from_u64(9, 4)).unwrap();
        let mut oracle = SimOracle::new(&nl).unwrap();
        let report = AttackSession::builder()
            .oracle(&mut oracle)
            .build()
            .unwrap()
            .run(&locked.netlist)
            .unwrap();
        assert!(report.is_complete());
        assert_eq!(report.status(), AttackStatus::Success);
        let key = report.key().expect("success implies key");
        assert!(crate::verify::verify_key(&nl, &locked.netlist, key).unwrap());
        let stats = report.stats();
        assert_eq!(stats.oracle_queries, stats.dips);
        assert_eq!(stats.subtask_wall_times.len(), 1);
        // The single-key report recombines into a keyless equivalent too.
        let unlocked = report.recombine(&locked.netlist).unwrap();
        assert!(unlocked.key_inputs().is_empty());
    }

    #[test]
    fn multi_key_run_with_thread_cap() {
        let nl = majority3();
        let locked = Sarlock::new(3).lock(&nl, &Key::from_u64(0b101, 3)).unwrap();
        let mut oracle = SimOracle::new(&nl).unwrap();
        let report = AttackSession::builder()
            .oracle(&mut oracle)
            .split_effort(2)
            .threads(2)
            .build()
            .unwrap()
            .run(&locked.netlist)
            .unwrap();
        assert!(report.is_complete());
        assert!(report.key().is_none(), "N > 0 yields sub-space keys");
        assert_eq!(report.sub_keys().len(), 4);
        assert_eq!(report.stats().subtask_wall_times.len(), 4);
        // Total oracle queries flowed through the one shared oracle.
        assert_eq!(oracle.queries(), report.stats().oracle_queries);
    }

    #[test]
    fn progress_events_cover_every_term() {
        let nl = majority3();
        let locked = Sarlock::new(3).lock(&nl, &Key::from_u64(2, 3)).unwrap();
        let mut oracle = SimOracle::new(&nl).unwrap();
        let events: Mutex<Vec<ProgressEvent>> = Mutex::new(Vec::new());
        let report = AttackSession::builder()
            .oracle(&mut oracle)
            .split_effort(1)
            .on_progress(|e| events.lock().unwrap().push(e.clone()))
            .build()
            .unwrap()
            .run(&locked.netlist)
            .unwrap();
        assert!(report.is_complete());
        let events = events.into_inner().unwrap();
        let started: Vec<u64> = events
            .iter()
            .filter_map(|e| match e {
                ProgressEvent::TermStarted { pattern, terms: 2, .. } => Some(*pattern),
                _ => None,
            })
            .collect();
        let finished =
            events.iter().filter(|e| matches!(e, ProgressEvent::TermFinished { .. })).count();
        let dip_total =
            events.iter().filter(|e| matches!(e, ProgressEvent::Dip { .. })).count() as u64;
        let mut started_sorted = started.clone();
        started_sorted.sort_unstable();
        assert_eq!(started_sorted, vec![0, 1]);
        assert_eq!(finished, 2);
        assert_eq!(dip_total, report.stats().dips);
    }

    #[test]
    fn pre_cancelled_session_reports_cancelled() {
        let nl = majority3();
        let locked = Sarlock::new(3).lock(&nl, &Key::from_u64(7, 3)).unwrap();
        let mut oracle = SimOracle::new(&nl).unwrap();
        let token = CancelToken::new();
        token.cancel();
        let report = AttackSession::builder()
            .oracle(&mut oracle)
            .cancel_token(token.clone())
            .build()
            .unwrap()
            .run(&locked.netlist)
            .unwrap();
        assert_eq!(report.status(), AttackStatus::Cancelled);
        assert!(!report.is_complete());
        assert!(report.key().is_none());
        assert!(token.is_cancelled());
    }

    #[test]
    fn cancel_mid_run_via_progress_callback() {
        let nl = majority3();
        let locked = Sarlock::new(3).lock(&nl, &Key::from_u64(1, 3)).unwrap();
        let mut oracle = SimOracle::new(&nl).unwrap();
        let token = CancelToken::new();
        let hook = token.clone();
        let report = AttackSession::builder()
            .oracle(&mut oracle)
            .on_progress(move |e| {
                if matches!(e, ProgressEvent::Dip { dips: 2, .. }) {
                    hook.cancel();
                }
            })
            .cancel_token(token)
            .build()
            .unwrap()
            .run(&locked.netlist)
            .unwrap();
        // SARLock |K|=3 needs ~7 DIPs; cancelling at 2 stops early.
        assert_eq!(report.status(), AttackStatus::Cancelled);
        let stats = report.stats();
        assert!(stats.dips >= 2 && stats.dips < 7, "dips = {}", stats.dips);
    }

    #[test]
    fn zero_time_budget_reports_time_limit() {
        let nl = majority3();
        let locked = Rll::new(4).with_seed(17).lock(&nl, &Key::from_u64(3, 4)).unwrap();
        let mut oracle = SimOracle::new(&nl).unwrap();
        let report = AttackSession::builder()
            .oracle(&mut oracle)
            .time_budget(Duration::ZERO)
            .build()
            .unwrap()
            .run(&locked.netlist)
            .unwrap();
        assert_eq!(report.status(), AttackStatus::TimeLimit);
    }

    #[test]
    fn max_dips_caps_each_term() {
        let nl = majority3();
        let locked = Sarlock::new(3).lock(&nl, &Key::from_u64(6, 3)).unwrap();
        let mut oracle = SimOracle::new(&nl).unwrap();
        let report = AttackSession::builder()
            .oracle(&mut oracle)
            .max_dips(2)
            .build()
            .unwrap()
            .run(&locked.netlist)
            .unwrap();
        assert_eq!(report.status(), AttackStatus::DipLimit);
        assert_eq!(report.stats().dips, 2);
    }

    #[test]
    fn one_session_runs_many_targets() {
        // The session borrows the oracle; the same configured session
        // attacks several locked variants of the same design.
        let nl = majority3();
        let mut oracle = SimOracle::new(&nl).unwrap();
        let mut session = AttackSession::builder()
            .oracle(&mut oracle)
            .split_effort(1)
            .threads(1)
            .build()
            .unwrap();
        for seed in [1u64, 2, 3] {
            let locked =
                Rll::new(3).with_seed(seed).lock(&nl, &Key::from_u64(seed & 7, 3)).unwrap();
            let report = session.run(&locked.netlist).unwrap();
            assert!(report.is_complete(), "seed {seed}");
        }
    }
}
