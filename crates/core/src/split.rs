//! Split-port selection for the multi-key attack (§4 of the paper).
//!
//! The paper selects the `N` splitting ports "through a fan-out cone
//! analysis of the netlist's input ports, prioritizing those with the most
//! key-controlled gates in their fan-out cones". [`SplitStrategy::FanoutCone`]
//! implements exactly that ranking; the other strategies are ablations used
//! by the benchmark harness to quantify the heuristic's value.

use polykey_netlist::analysis::key_cone_influence;
use polykey_netlist::{Netlist, NodeId};

use crate::error::AttackError;

/// How to choose the `N` splitting ports.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum SplitStrategy {
    /// The paper's heuristic: inputs with the most key-controlled gates in
    /// their transitive fanout.
    #[default]
    FanoutCone,
    /// Ablation: simply the first `N` declared inputs.
    FirstInputs,
    /// Ablation: a seeded random choice.
    Random {
        /// Shuffle seed (same seed ⇒ same ports).
        seed: u64,
    },
}

/// Selects `n` splitting ports from the locked netlist's primary inputs.
///
/// # Errors
///
/// Returns [`AttackError::SplitTooWide`] if `n` exceeds the input count.
///
/// # Examples
///
/// ```
/// use polykey_attack::{select_split_inputs, SplitStrategy};
/// use polykey_netlist::{GateKind, Netlist};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut nl = Netlist::new("t");
/// let a = nl.add_input("a")?;
/// let b = nl.add_input("b")?;
/// let k = nl.add_key_input("keyinput0")?;
/// // Only `b` feeds the key-controlled gate.
/// let x = nl.add_gate("x", GateKind::Xor, &[b, k])?;
/// let y = nl.add_gate("y", GateKind::And, &[a, x])?;
/// nl.mark_output(y)?;
///
/// let picks = select_split_inputs(&nl, 1, SplitStrategy::FanoutCone)?;
/// assert_eq!(picks, vec![b]);
/// # Ok(())
/// # }
/// ```
pub fn select_split_inputs(
    locked: &Netlist,
    n: usize,
    strategy: SplitStrategy,
) -> Result<Vec<NodeId>, AttackError> {
    let available = locked.inputs().len();
    if n > available {
        return Err(AttackError::SplitTooWide { requested: n, available });
    }
    match strategy {
        SplitStrategy::FanoutCone => {
            let mut ranked = key_cone_influence(locked);
            // Sort by influence descending; ties broken by declaration
            // order (stable sort preserves it).
            ranked.sort_by_key(|&(_, influence)| std::cmp::Reverse(influence));
            Ok(ranked.into_iter().take(n).map(|(id, _)| id).collect())
        }
        SplitStrategy::FirstInputs => Ok(locked.inputs()[..n].to_vec()),
        SplitStrategy::Random { seed } => {
            // Small deterministic LCG shuffle; good enough for an ablation.
            let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let mut pool: Vec<NodeId> = locked.inputs().to_vec();
            let mut picks = Vec::with_capacity(n);
            for _ in 0..n {
                state =
                    state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let idx = (state >> 33) as usize % pool.len();
                picks.push(pool.swap_remove(idx));
            }
            Ok(picks)
        }
    }
}

/// Picks the next splitting port for an adaptive resplit: ranks *every*
/// primary input of `netlist` (the cofactored view of the term being
/// subdivided) with [`select_split_inputs`] and returns the position — in
/// the input declaration order, which cofactoring preserves — of the best
/// port whose position is not already in `used_positions`.
///
/// Returns `Ok(None)` when every input is already a splitting port.
///
/// # Errors
///
/// Propagates [`select_split_inputs`] failures (never `SplitTooWide`,
/// since the request is exactly the input count).
pub(crate) fn next_split_position(
    netlist: &Netlist,
    used_positions: &[usize],
    strategy: SplitStrategy,
) -> Result<Option<usize>, AttackError> {
    let ranked = select_split_inputs(netlist, netlist.inputs().len(), strategy)?;
    for id in ranked {
        let pos = netlist
            .inputs()
            .iter()
            .position(|p| *p == id)
            .expect("ranked ports are primary inputs");
        if !used_positions.contains(&pos) {
            return Ok(Some(pos));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polykey_locking::{Key, LockScheme, Sarlock};
    use polykey_netlist::GateKind;

    /// A circuit where inputs 2 and 3 feed the comparator of SARLock.
    fn sarlock_on_inputs_2_3() -> Netlist {
        let mut nl = Netlist::new("t");
        let ins: Vec<NodeId> = (0..4).map(|i| nl.add_input(format!("x{i}")).unwrap()).collect();
        let g1 = nl.add_gate("g1", GateKind::And, &[ins[0], ins[1]]).unwrap();
        let g2 = nl.add_gate("g2", GateKind::Xor, &[g1, ins[2]]).unwrap();
        let g3 = nl.add_gate("g3", GateKind::Or, &[g2, ins[3]]).unwrap();
        nl.mark_output(g3).unwrap();
        let locked = Sarlock::new(2)
            .with_compare_inputs(vec![2, 3])
            .lock(&nl, &Key::from_u64(0b01, 2))
            .unwrap();
        locked.netlist
    }

    #[test]
    fn fanout_cone_prefers_comparator_inputs() {
        let locked = sarlock_on_inputs_2_3();
        let picks = select_split_inputs(&locked, 2, SplitStrategy::FanoutCone).unwrap();
        let names: Vec<&str> = picks.iter().map(|&id| locked.node_name(id)).collect();
        assert!(names.contains(&"x2"), "{names:?}");
        assert!(names.contains(&"x3"), "{names:?}");
    }

    #[test]
    fn first_inputs_strategy() {
        let locked = sarlock_on_inputs_2_3();
        let picks = select_split_inputs(&locked, 2, SplitStrategy::FirstInputs).unwrap();
        assert_eq!(picks, locked.inputs()[..2].to_vec());
    }

    #[test]
    fn random_strategy_is_deterministic_and_distinct() {
        let locked = sarlock_on_inputs_2_3();
        let a = select_split_inputs(&locked, 3, SplitStrategy::Random { seed: 9 }).unwrap();
        let b = select_split_inputs(&locked, 3, SplitStrategy::Random { seed: 9 }).unwrap();
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3, "picks must be distinct");
    }

    #[test]
    fn oversized_split_rejected() {
        let locked = sarlock_on_inputs_2_3();
        assert!(matches!(
            select_split_inputs(&locked, 10, SplitStrategy::FanoutCone),
            Err(AttackError::SplitTooWide { requested: 10, available: 4 })
        ));
    }

    #[test]
    fn zero_split_is_empty() {
        let locked = sarlock_on_inputs_2_3();
        let picks = select_split_inputs(&locked, 0, SplitStrategy::FanoutCone).unwrap();
        assert!(picks.is_empty());
    }

    #[test]
    fn next_split_position_skips_used_ports_and_drains() {
        let locked = sarlock_on_inputs_2_3();
        // The comparator sits on x2/x3, so the first pick is one of them…
        let first = next_split_position(&locked, &[], SplitStrategy::FanoutCone)
            .unwrap()
            .expect("ports available");
        assert!(first == 2 || first == 3, "first pick {first}");
        // …and excluding it yields the other comparator input.
        let second = next_split_position(&locked, &[first], SplitStrategy::FanoutCone)
            .unwrap()
            .expect("ports available");
        assert!(second == 2 || second == 3);
        assert_ne!(first, second);
        // With every input used the well runs dry.
        let all: Vec<usize> = (0..locked.inputs().len()).collect();
        assert_eq!(
            next_split_position(&locked, &all, SplitStrategy::FanoutCone).unwrap(),
            None
        );
    }
}
