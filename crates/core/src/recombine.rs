//! Multi-key recombination — Fig. 1(b) of the paper, generalized to the
//! adaptive term tree.
//!
//! Given the sub-space keys recovered by the multi-key attack, build an
//! *unlocked* netlist: each key port of the locked design is driven by a
//! MUX tree that selects, based on the live values of the split ports,
//! the sub-key recovered for that sub-space. The result has no key inputs
//! and is functionally equivalent to the original design — even though
//! every individual sub-key may be globally incorrect.
//!
//! Keys are identified by `(pattern, width)` prefix-tree paths (see
//! [`SubKey`]), so the key set may mix depths: a static `N`-grid is the
//! special case where every path has `width == N`. The only requirement
//! is that the paths form an **exact cover** of the input space — pairwise
//! disjoint (no path a prefix of another) and jointly exhaustive — which
//! this module validates before building anything.

use polykey_netlist::{GateKind, Netlist, NodeId};

use crate::error::AttackError;
use crate::multikey::{SubKey, MAX_SPLIT_WIDTH};

/// The canonical trie order of a path: pattern bit 0 is the most
/// significant comparison bit, so a prefix sorts immediately before its
/// extensions and sibling subtrees stay contiguous.
fn canon(sub: &SubKey) -> (u64, u8) {
    let mut key = 0u64;
    for j in 0..sub.width as usize {
        key |= (sub.pattern >> j & 1) << (63 - j);
    }
    (key, sub.width)
}

/// True iff `a`'s path is a prefix of `b`'s (equal paths included).
fn is_prefix(a: &SubKey, b: &SubKey) -> bool {
    a.width <= b.width && {
        let mask = if a.width == 0 { 0 } else { (1u64 << a.width) - 1 };
        a.pattern & mask == b.pattern & mask
    }
}

/// Validates that `keys` form an exact prefix cover and that every key has
/// the locked design's key width; returns them in canonical trie order.
fn validate_cover<'k>(
    locked: &Netlist,
    split_inputs: &[NodeId],
    keys: &'k [SubKey],
) -> Result<Vec<&'k SubKey>, AttackError> {
    if keys.is_empty() {
        return Err(AttackError::BadKeySet { message: "empty key set".into() });
    }
    for sub in keys {
        let width = sub.width as usize;
        if width > MAX_SPLIT_WIDTH {
            return Err(AttackError::BadKeySet {
                message: format!(
                    "path width {width} exceeds the maximum split width {MAX_SPLIT_WIDTH}"
                ),
            });
        }
        if width > split_inputs.len() {
            return Err(AttackError::BadKeySet {
                message: format!(
                    "path {:#b} has width {width} but only {} split ports were given",
                    sub.pattern,
                    split_inputs.len()
                ),
            });
        }
        if width < 64 && sub.pattern >> width != 0 {
            return Err(AttackError::BadKeySet {
                message: format!(
                    "path {:#b} sets bits at or above its width {width}",
                    sub.pattern
                ),
            });
        }
        if sub.key.len() != locked.key_inputs().len() {
            return Err(AttackError::BadKeySet {
                message: format!(
                    "sub-key for path {:#b}/{width} has width {}, locked design has {} key \
                     ports",
                    sub.pattern,
                    sub.key.len(),
                    locked.key_inputs().len()
                ),
            });
        }
    }
    let mut sorted: Vec<&SubKey> = keys.iter().collect();
    sorted.sort_by_key(|k| canon(k));
    // Disjointness: in canonical order, a path that is a prefix of any
    // other path in the set sorts immediately before one of its
    // extensions, so checking adjacent pairs catches every overlap
    // (duplicates included).
    for pair in sorted.windows(2) {
        if is_prefix(pair[0], pair[1]) {
            return Err(AttackError::BadKeySet {
                message: format!(
                    "overlapping paths: {:#b}/{} covers {:#b}/{}",
                    pair[0].pattern, pair[0].width, pair[1].pattern, pair[1].width
                ),
            });
        }
    }
    // Coverage: disjoint paths cover the space iff their measures sum to
    // the whole. Widths are <= 63, so u128 arithmetic cannot overflow —
    // this replaces the old `keys.len() == 1 << n` check, which wrapped
    // at n = 64.
    let deepest = sorted.iter().map(|k| k.width as usize).max().expect("non-empty");
    let covered: u128 = sorted.iter().map(|k| 1u128 << (deepest - k.width as usize)).sum();
    if covered != 1u128 << deepest {
        return Err(AttackError::BadKeySet {
            message: format!(
                "paths cover {covered}/{} of the deepest level: the prefix tree has gaps",
                1u128 << deepest
            ),
        });
    }
    Ok(sorted)
}

/// Recursively builds the MUX tree for one key bit over a canonical-order
/// slice of the prefix cover.
#[allow(clippy::too_many_arguments)]
fn build_mux(
    out: &mut Netlist,
    selects: &[NodeId],
    sorted: &[&SubKey],
    depth: usize,
    bit: usize,
    leaf0: NodeId,
    leaf1: NodeId,
    counter: &mut usize,
) -> Result<NodeId, AttackError> {
    if sorted.len() == 1 && sorted[0].width as usize == depth {
        return Ok(if sorted[0].key.bit(bit) { leaf1 } else { leaf0 });
    }
    // Canonical order puts the bit-`depth` = 0 subtree first; an exact
    // cover guarantees both halves are non-empty here.
    let split_at = sorted.partition_point(|k| k.pattern >> depth & 1 == 0);
    if split_at == 0 || split_at == sorted.len() {
        // Unreachable on a validated cover; kept as a real error so a
        // future validation bug cannot turn into unbounded recursion.
        return Err(AttackError::BadKeySet {
            message: format!("prefix tree is one-sided at depth {depth} (engine bug)"),
        });
    }
    let lo =
        build_mux(out, selects, &sorted[..split_at], depth + 1, bit, leaf0, leaf1, counter)?;
    let hi =
        build_mux(out, selects, &sorted[split_at..], depth + 1, bit, leaf0, leaf1, counter)?;
    let name = format!("mk$k{bit}_m{depth}_{counter}");
    *counter += 1;
    Ok(out.add_gate(name, GateKind::Mux, &[selects[depth], lo, hi])?)
}

/// Builds the recombined, keyless netlist from sub-space keys.
///
/// `split_inputs` are the ports (ids in `locked`) the attack split on, in
/// pattern bit order; `keys` are `(pattern, width)` prefix-tree paths that
/// must form an exact cover of the input space — a flat `2^N` grid, an
/// adaptive mixed-depth tree, or the single `width = 0` key of a plain SAT
/// attack all qualify.
///
/// # Errors
///
/// - [`AttackError::BadKeySet`] if the paths overlap, leave gaps, set bits
///   above their width, exceed the split ports given, or a key has the
///   wrong width.
/// - [`AttackError::Netlist`] for structural failures.
pub fn recombine_multikey(
    locked: &Netlist,
    split_inputs: &[NodeId],
    keys: &[SubKey],
) -> Result<Netlist, AttackError> {
    let sorted = validate_cover(locked, split_inputs, keys)?;
    let deepest = sorted.iter().map(|k| k.width as usize).max().expect("non-empty");
    for &id in &split_inputs[..deepest] {
        if !locked.inputs().contains(&id) {
            return Err(AttackError::BadKeySet {
                message: format!("split port {id} is not a primary input of the locked design"),
            });
        }
    }

    let order = locked.topological_order()?;
    let mut out = Netlist::new(format!("{}_recombined", locked.name()));
    let mut map: Vec<Option<NodeId>> = vec![None; locked.num_nodes()];

    for &pi in locked.inputs() {
        map[pi.index()] = Some(out.add_input(locked.node_name(pi))?);
    }
    // Shared constant nodes for MUX-tree leaves.
    let const0 = out.add_const("mk$zero", false)?;
    let const1 = out.add_const("mk$one", true)?;
    let selects: Vec<NodeId> = split_inputs[..deepest]
        .iter()
        .map(|id| map[id.index()].expect("inputs mapped"))
        .collect();

    // Drive each key port with a MUX tree over the split ports.
    for (j, &ki) in locked.key_inputs().iter().enumerate() {
        let first = sorted[0].key.bit(j);
        let driver = if sorted.iter().all(|k| k.key.bit(j) == first) {
            // All sub-keys agree on this bit: a plain constant.
            if first {
                const1
            } else {
                const0
            }
        } else {
            let mut counter = 0;
            build_mux(&mut out, &selects, &sorted, 0, j, const0, const1, &mut counter)?
        };
        map[ki.index()] = Some(driver);
    }

    // Copy the locked design's gates over the new drivers.
    for id in order {
        let node = locked.node(id);
        if node.kind().is_input() {
            continue;
        }
        let fanins: Vec<NodeId> =
            node.fanins().iter().map(|f| map[f.index()].expect("topo order")).collect();
        let new_id = match node.kind() {
            GateKind::Const(v) => out.add_const(locked.node_name(id), v)?,
            kind => out.add_gate(locked.node_name(id), kind, &fanins)?,
        };
        map[id.index()] = Some(new_id);
    }
    for &o in locked.outputs() {
        out.mark_output(map[o.index()].expect("outputs mapped"))?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::AttackSession;
    use polykey_encode::{check_equivalence, EquivResult};
    use polykey_locking::{Key, LockScheme, Sarlock};
    use polykey_netlist::{bits_of, GateKind, Simulator};

    fn majority3() -> Netlist {
        let mut nl = Netlist::new("maj3");
        let a = nl.add_input("a").unwrap();
        let b = nl.add_input("b").unwrap();
        let c = nl.add_input("c").unwrap();
        let ab = nl.add_gate("ab", GateKind::And, &[a, b]).unwrap();
        let ac = nl.add_gate("ac", GateKind::And, &[a, c]).unwrap();
        let bc = nl.add_gate("bc", GateKind::And, &[b, c]).unwrap();
        let y = nl.add_gate("y", GateKind::Or, &[ab, ac, bc]).unwrap();
        nl.mark_output(y).unwrap();
        nl
    }

    #[test]
    fn fig1b_recombination_is_equivalent_to_original() {
        // Full pipeline: lock → multi-key attack → recombine → formal check.
        let nl = majority3();
        let locked = Sarlock::new(3).lock(&nl, &Key::from_u64(0b101, 3)).unwrap();
        let mut oracle = crate::oracle::SimOracle::new(&nl).unwrap();
        let report = AttackSession::builder()
            .oracle(&mut oracle)
            .split_effort(2)
            .threads(1)
            .build()
            .unwrap()
            .run(&locked.netlist)
            .unwrap();
        assert!(report.is_complete());

        let recombined = report.recombine(&locked.netlist).unwrap();
        assert!(recombined.key_inputs().is_empty(), "recombined design is keyless");
        assert_eq!(
            check_equivalence(&nl, &recombined).unwrap(),
            EquivResult::Equivalent,
            "Fig. 1(b): multiple incorrect keys collectively restore the function"
        );
    }

    #[test]
    fn adaptive_attack_recombines_to_equivalence() {
        // The heterogeneous-depth path: a tight per-term budget forces
        // resplits, and the mixed-width prefix tree must still recombine
        // to the exact original function.
        let nl = majority3();
        let locked = Sarlock::new(3).lock(&nl, &Key::from_u64(0b110, 3)).unwrap();
        let mut oracle = crate::oracle::SimOracle::new(&nl).unwrap();
        let report = AttackSession::builder()
            .oracle(&mut oracle)
            .term_dip_budget(2)
            .threads(1)
            .build()
            .unwrap()
            .run(&locked.netlist)
            .unwrap();
        assert!(report.is_complete());
        let outcome = report.as_multi_key().expect("adaptive runs use the multi-key engine");
        assert!(outcome.max_depth() > 0, "the budget must have forced a split");
        let recombined = report.recombine(&locked.netlist).unwrap();
        assert!(recombined.key_inputs().is_empty());
        assert_eq!(check_equivalence(&nl, &recombined).unwrap(), EquivResult::Equivalent);
    }

    #[test]
    fn recombination_with_manual_keys() {
        // Hand-build the Fig. 1(b) scenario: two sub-keys, MUX on one bit.
        let nl = majority3();
        let correct = Key::from_u64(0b011, 3);
        let locked = Sarlock::new(3).lock(&nl, &correct).unwrap();
        let split = vec![locked.netlist.inputs()[0]];
        // For SARLock, a key unlocks the sub-space `x0 = v` iff it differs
        // from every input in that sub-space (or is correct). Keys whose
        // comparator bit 0 disagrees with the sub-space value never match:
        // pattern 0 (x0 = 0) is unlocked by any key with bit0 = 1 except…
        // use the known-correct key for one half and a provably sub-space
        // correct key for the other.
        let keys = vec![
            // bit0=1 ⇒ never matches x0=0
            SubKey { pattern: 0, width: 1, key: Key::from_u64(0b101, 3) },
            SubKey { pattern: 1, width: 1, key: correct.clone() },
        ];
        let recombined = recombine_multikey(&locked.netlist, &split, &keys).unwrap();
        let mut orig = Simulator::new(&nl).unwrap();
        let mut rec = Simulator::new(&recombined).unwrap();
        for v in 0..8u64 {
            let bits = bits_of(v, 3);
            assert_eq!(rec.eval(&bits, &[]), orig.eval(&bits, &[]), "input {v:03b}");
        }
    }

    #[test]
    fn mixed_depth_cover_with_manual_keys() {
        // A hand-built adaptive tree: {0} at depth 1, {10, 11} at depth 2.
        // Using the correct key everywhere must recombine to equivalence
        // regardless of the tree shape.
        let nl = majority3();
        let correct = Key::from_u64(0b011, 3);
        let locked = Sarlock::new(3).lock(&nl, &correct).unwrap();
        let split = vec![locked.netlist.inputs()[0], locked.netlist.inputs()[1]];
        let keys = vec![
            SubKey { pattern: 0b0, width: 1, key: correct.clone() },
            SubKey { pattern: 0b01, width: 2, key: correct.clone() },
            SubKey { pattern: 0b11, width: 2, key: correct.clone() },
        ];
        let recombined = recombine_multikey(&locked.netlist, &split, &keys).unwrap();
        assert_eq!(check_equivalence(&nl, &recombined).unwrap(), EquivResult::Equivalent);
    }

    #[test]
    fn missing_pattern_rejected() {
        let nl = majority3();
        let locked = Sarlock::new(3).lock(&nl, &Key::from_u64(0, 3)).unwrap();
        let split = vec![locked.netlist.inputs()[0]];
        let keys = vec![SubKey { pattern: 0, width: 1, key: Key::from_u64(0, 3) }];
        let err = recombine_multikey(&locked.netlist, &split, &keys).unwrap_err();
        assert!(matches!(err, AttackError::BadKeySet { .. }));
    }

    #[test]
    fn duplicate_pattern_rejected() {
        let nl = majority3();
        let locked = Sarlock::new(3).lock(&nl, &Key::from_u64(0, 3)).unwrap();
        let split = vec![locked.netlist.inputs()[0]];
        let keys = vec![
            SubKey { pattern: 1, width: 1, key: Key::from_u64(0, 3) },
            SubKey { pattern: 1, width: 1, key: Key::from_u64(1, 3) },
        ];
        assert!(matches!(
            recombine_multikey(&locked.netlist, &split, &keys),
            Err(AttackError::BadKeySet { .. })
        ));
    }

    #[test]
    fn overlapping_prefix_rejected() {
        // Path 0/1 covers both 00/2 and 01/2: the set double-covers half
        // the space (and leaves the x0=1 half empty).
        let nl = majority3();
        let locked = Sarlock::new(3).lock(&nl, &Key::from_u64(0, 3)).unwrap();
        let split: Vec<NodeId> = locked.netlist.inputs()[..2].to_vec();
        let keys = vec![
            SubKey { pattern: 0b0, width: 1, key: Key::from_u64(0, 3) },
            SubKey { pattern: 0b00, width: 2, key: Key::from_u64(1, 3) },
        ];
        let err = recombine_multikey(&locked.netlist, &split, &keys).unwrap_err();
        assert!(err.to_string().contains("overlapping"), "{err}");
    }

    #[test]
    fn stray_bits_above_width_rejected() {
        let nl = majority3();
        let locked = Sarlock::new(3).lock(&nl, &Key::from_u64(0, 3)).unwrap();
        let split = vec![locked.netlist.inputs()[0]];
        let keys = vec![SubKey { pattern: 0b10, width: 1, key: Key::from_u64(0, 3) }];
        assert!(matches!(
            recombine_multikey(&locked.netlist, &split, &keys),
            Err(AttackError::BadKeySet { .. })
        ));
    }

    #[test]
    fn wrong_key_width_rejected() {
        let nl = majority3();
        let locked = Sarlock::new(3).lock(&nl, &Key::from_u64(0, 3)).unwrap();
        let keys = vec![SubKey { pattern: 0, width: 0, key: Key::from_u64(0, 2) }];
        assert!(matches!(
            recombine_multikey(&locked.netlist, &[], &keys),
            Err(AttackError::BadKeySet { .. })
        ));
    }

    #[test]
    fn zero_split_recombination_pins_single_key() {
        // N = 0: recombination is just pinning the one recovered key.
        let nl = majority3();
        let correct = Key::from_u64(0b110, 3);
        let locked = Sarlock::new(3).lock(&nl, &correct).unwrap();
        let keys = vec![SubKey { pattern: 0, width: 0, key: correct }];
        let recombined = recombine_multikey(&locked.netlist, &[], &keys).unwrap();
        assert_eq!(check_equivalence(&nl, &recombined).unwrap(), EquivResult::Equivalent);
    }
}
