//! Multi-key recombination — Fig. 1(b) of the paper.
//!
//! Given the `2^N` sub-space keys recovered by the multi-key attack, build
//! an *unlocked* netlist: each key port of the locked design is driven by a
//! MUX tree that selects, based on the live values of the `N` split ports,
//! the sub-key recovered for that sub-space. The result has no key inputs
//! and is functionally equivalent to the original design — even though
//! every individual sub-key may be globally incorrect.

use polykey_netlist::{GateKind, Netlist, NodeId};

use crate::error::AttackError;
use crate::multikey::SubKey;

/// Builds the recombined, keyless netlist from sub-space keys.
///
/// `split_inputs` are the ports (ids in `locked`) the attack split on, in
/// pattern bit order; `keys` must contain exactly one entry per pattern in
/// `0..2^N`, each of full key width.
///
/// # Errors
///
/// - [`AttackError::BadKeySet`] if patterns are missing/duplicated or a key
///   has the wrong width.
/// - [`AttackError::Netlist`] for structural failures.
pub fn recombine_multikey(
    locked: &Netlist,
    split_inputs: &[NodeId],
    keys: &[SubKey],
) -> Result<Netlist, AttackError> {
    let n = split_inputs.len();
    let expected = 1usize << n;
    if keys.len() != expected {
        return Err(AttackError::BadKeySet {
            message: format!("need {expected} sub-keys for N={n}, got {}", keys.len()),
        });
    }
    let mut by_pattern: Vec<Option<&SubKey>> = vec![None; expected];
    for sub in keys {
        let idx = sub.pattern as usize;
        if idx >= expected {
            return Err(AttackError::BadKeySet {
                message: format!("pattern {:#b} out of range for N={n}", sub.pattern),
            });
        }
        if by_pattern[idx].is_some() {
            return Err(AttackError::BadKeySet {
                message: format!("duplicate pattern {:#b}", sub.pattern),
            });
        }
        if sub.key.len() != locked.key_inputs().len() {
            return Err(AttackError::BadKeySet {
                message: format!(
                    "sub-key for pattern {:#b} has width {}, locked design has {} key ports",
                    sub.pattern,
                    sub.key.len(),
                    locked.key_inputs().len()
                ),
            });
        }
        by_pattern[idx] = Some(sub);
    }
    for &id in split_inputs {
        if !locked.inputs().contains(&id) {
            return Err(AttackError::BadKeySet {
                message: format!("split port {id} is not a primary input of the locked design"),
            });
        }
    }

    let order = locked.topological_order()?;
    let mut out = Netlist::new(format!("{}_recombined", locked.name()));
    let mut map: Vec<Option<NodeId>> = vec![None; locked.num_nodes()];

    for &pi in locked.inputs() {
        map[pi.index()] = Some(out.add_input(locked.node_name(pi))?);
    }
    // Shared constant nodes for MUX-tree leaves.
    let const0 = out.add_const("mk$zero", false)?;
    let const1 = out.add_const("mk$one", true)?;
    let leaf = |b: bool| if b { const1 } else { const0 };
    let selects: Vec<NodeId> =
        split_inputs.iter().map(|id| map[id.index()].expect("inputs mapped")).collect();

    // Drive each key port with a MUX tree over the split ports.
    for (j, &ki) in locked.key_inputs().iter().enumerate() {
        let bits: Vec<bool> =
            (0..expected).map(|p| by_pattern[p].expect("checked").key.bit(j)).collect();
        let driver = if bits.iter().all(|&b| b == bits[0]) {
            // All sub-keys agree on this bit: a plain constant.
            leaf(bits[0])
        } else {
            let mut layer: Vec<NodeId> = bits.iter().map(|&b| leaf(b)).collect();
            for (level, &sel) in selects.iter().enumerate() {
                let mut next = Vec::with_capacity(layer.len() / 2);
                for (pair, chunk) in layer.chunks(2).enumerate() {
                    let m = out.add_gate(
                        format!("mk$k{j}_m{level}_{pair}"),
                        GateKind::Mux,
                        &[sel, chunk[0], chunk[1]],
                    )?;
                    next.push(m);
                }
                layer = next;
            }
            debug_assert_eq!(layer.len(), 1);
            layer[0]
        };
        map[ki.index()] = Some(driver);
    }

    // Copy the locked design's gates over the new drivers.
    for id in order {
        let node = locked.node(id);
        if node.kind().is_input() {
            continue;
        }
        let fanins: Vec<NodeId> =
            node.fanins().iter().map(|f| map[f.index()].expect("topo order")).collect();
        let new_id = match node.kind() {
            GateKind::Const(v) => out.add_const(locked.node_name(id), v)?,
            kind => out.add_gate(locked.node_name(id), kind, &fanins)?,
        };
        map[id.index()] = Some(new_id);
    }
    for &o in locked.outputs() {
        out.mark_output(map[o.index()].expect("outputs mapped"))?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::AttackSession;
    use polykey_encode::{check_equivalence, EquivResult};
    use polykey_locking::{Key, LockScheme, Sarlock};
    use polykey_netlist::{bits_of, GateKind, Simulator};

    fn majority3() -> Netlist {
        let mut nl = Netlist::new("maj3");
        let a = nl.add_input("a").unwrap();
        let b = nl.add_input("b").unwrap();
        let c = nl.add_input("c").unwrap();
        let ab = nl.add_gate("ab", GateKind::And, &[a, b]).unwrap();
        let ac = nl.add_gate("ac", GateKind::And, &[a, c]).unwrap();
        let bc = nl.add_gate("bc", GateKind::And, &[b, c]).unwrap();
        let y = nl.add_gate("y", GateKind::Or, &[ab, ac, bc]).unwrap();
        nl.mark_output(y).unwrap();
        nl
    }

    #[test]
    fn fig1b_recombination_is_equivalent_to_original() {
        // Full pipeline: lock → multi-key attack → recombine → formal check.
        let nl = majority3();
        let locked = Sarlock::new(3).lock(&nl, &Key::from_u64(0b101, 3)).unwrap();
        let mut oracle = crate::oracle::SimOracle::new(&nl).unwrap();
        let report = AttackSession::builder()
            .oracle(&mut oracle)
            .split_effort(2)
            .threads(1)
            .build()
            .unwrap()
            .run(&locked.netlist)
            .unwrap();
        assert!(report.is_complete());

        let recombined = report.recombine(&locked.netlist).unwrap();
        assert!(recombined.key_inputs().is_empty(), "recombined design is keyless");
        assert_eq!(
            check_equivalence(&nl, &recombined).unwrap(),
            EquivResult::Equivalent,
            "Fig. 1(b): multiple incorrect keys collectively restore the function"
        );
    }

    #[test]
    fn recombination_with_manual_keys() {
        // Hand-build the Fig. 1(b) scenario: two sub-keys, MUX on one bit.
        let nl = majority3();
        let correct = Key::from_u64(0b011, 3);
        let locked = Sarlock::new(3).lock(&nl, &correct).unwrap();
        let split = vec![locked.netlist.inputs()[0]];
        // For SARLock, a key unlocks the sub-space `x0 = v` iff it differs
        // from every input in that sub-space (or is correct). Keys whose
        // comparator bit 0 disagrees with the sub-space value never match:
        // pattern 0 (x0 = 0) is unlocked by any key with bit0 = 1 except…
        // use the known-correct key for one half and a provably sub-space
        // correct key for the other.
        let keys = vec![
            SubKey { pattern: 0, key: Key::from_u64(0b101, 3) }, // bit0=1 ⇒ never matches x0=0
            SubKey { pattern: 1, key: correct.clone() },
        ];
        let recombined = recombine_multikey(&locked.netlist, &split, &keys).unwrap();
        let mut orig = Simulator::new(&nl).unwrap();
        let mut rec = Simulator::new(&recombined).unwrap();
        for v in 0..8u64 {
            let bits = bits_of(v, 3);
            assert_eq!(rec.eval(&bits, &[]), orig.eval(&bits, &[]), "input {v:03b}");
        }
    }

    #[test]
    fn missing_pattern_rejected() {
        let nl = majority3();
        let locked = Sarlock::new(3).lock(&nl, &Key::from_u64(0, 3)).unwrap();
        let split = vec![locked.netlist.inputs()[0]];
        let keys = vec![SubKey { pattern: 0, key: Key::from_u64(0, 3) }];
        let err = recombine_multikey(&locked.netlist, &split, &keys).unwrap_err();
        assert!(matches!(err, AttackError::BadKeySet { .. }));
    }

    #[test]
    fn duplicate_pattern_rejected() {
        let nl = majority3();
        let locked = Sarlock::new(3).lock(&nl, &Key::from_u64(0, 3)).unwrap();
        let split = vec![locked.netlist.inputs()[0]];
        let keys = vec![
            SubKey { pattern: 1, key: Key::from_u64(0, 3) },
            SubKey { pattern: 1, key: Key::from_u64(1, 3) },
        ];
        assert!(matches!(
            recombine_multikey(&locked.netlist, &split, &keys),
            Err(AttackError::BadKeySet { .. })
        ));
    }

    #[test]
    fn wrong_key_width_rejected() {
        let nl = majority3();
        let locked = Sarlock::new(3).lock(&nl, &Key::from_u64(0, 3)).unwrap();
        let keys = vec![SubKey { pattern: 0, key: Key::from_u64(0, 2) }];
        assert!(matches!(
            recombine_multikey(&locked.netlist, &[], &keys),
            Err(AttackError::BadKeySet { .. })
        ));
    }

    #[test]
    fn zero_split_recombination_pins_single_key() {
        // N = 0: recombination is just pinning the one recovered key.
        let nl = majority3();
        let correct = Key::from_u64(0b110, 3);
        let locked = Sarlock::new(3).lock(&nl, &correct).unwrap();
        let keys = vec![SubKey { pattern: 0, key: correct }];
        let recombined = recombine_multikey(&locked.netlist, &[], &keys).unwrap();
        assert_eq!(check_equivalence(&nl, &recombined).unwrap(), EquivResult::Equivalent);
    }
}
