//! AppSAT-style approximate attack (Shamsi et al., HOST'17) — an extension
//! beyond the paper.
//!
//! Point-function schemes like SARLock survive the exact SAT attack by
//! making every wrong key *almost* correct: each wrong key errs on a
//! vanishing fraction of inputs. The approximate attack exploits exactly
//! that: it interleaves a few exact DIP iterations with batches of random
//! oracle queries, tracks the candidate key's empirical error rate, and
//! stops as soon as the estimate drops below a threshold. Against SARLock
//! it returns an approximately-correct key after a handful of iterations —
//! a useful contrast to the paper's multi-key attack, which achieves *exact*
//! functional recovery by combining sub-space keys.

use std::time::{Duration, Instant};

use polykey_encode::{assert_value, build_miter, encode, Binding};
use polykey_locking::Key;
use polykey_netlist::{Netlist, Simulator};
use polykey_sat::{SolveResult, Solver, SolverConfig};

use crate::error::AttackError;
use crate::oracle::Oracle;

/// Tuning knobs for the approximate attack.
#[derive(Clone, Debug)]
#[must_use]
pub struct AppSatConfig {
    /// Maximum outer rounds before giving up.
    pub max_rounds: usize,
    /// Exact DIP iterations per round.
    pub dips_per_round: u64,
    /// Random reinforcement queries per round (mismatching ones are added
    /// as constraints).
    pub queries_per_round: usize,
    /// Accept the candidate key when its sampled error rate is at most
    /// this.
    pub error_threshold: f64,
    /// Seed for the random query stream.
    pub seed: u64,
    /// Solver configuration.
    pub solver: SolverConfig,
}

impl Default for AppSatConfig {
    fn default() -> AppSatConfig {
        AppSatConfig {
            max_rounds: 50,
            dips_per_round: 4,
            queries_per_round: 64,
            error_threshold: 0.0,
            seed: 0xA995A7,
            solver: SolverConfig::default(),
        }
    }
}

/// The result of an approximate attack.
#[derive(Clone, Debug)]
pub struct AppSatOutcome {
    /// The candidate key (present unless the constraints became
    /// inconsistent).
    pub key: Option<Key>,
    /// The key's error rate over the final sampling batch (fraction of
    /// sampled inputs where the unlocked circuit mismatched the oracle).
    pub estimated_error: f64,
    /// True if the attack terminated through key-space exhaustion (the
    /// key is exactly correct, as in the plain SAT attack).
    pub exact: bool,
    /// Outer rounds consumed.
    pub rounds: usize,
    /// Exact DIPs found.
    pub dips: u64,
    /// Total oracle queries (DIPs + random reinforcement).
    pub oracle_queries: u64,
    /// Wall-clock time.
    pub wall_time: Duration,
}

/// Runs the approximate (AppSAT-style) attack.
///
/// # Errors
///
/// Same conditions as [`crate::sat_attack`]: oracle/netlist interface
/// mismatch or structural failures.
pub fn appsat_attack(
    locked: &Netlist,
    oracle: &mut dyn Oracle,
    config: &AppSatConfig,
) -> Result<AppSatOutcome, AttackError> {
    if oracle.num_inputs() != locked.inputs().len() {
        return Err(AttackError::OracleMismatch {
            what: "inputs",
            netlist: locked.inputs().len(),
            oracle: oracle.num_inputs(),
        });
    }
    if oracle.num_outputs() != locked.outputs().len() {
        return Err(AttackError::OracleMismatch {
            what: "outputs",
            netlist: locked.outputs().len(),
            oracle: oracle.num_outputs(),
        });
    }
    let start = Instant::now();
    let queries_start = oracle.queries();
    let mut solver = Solver::with_config(config.solver);
    let miter = build_miter(&mut solver, locked, locked)?;
    let mut sim = Simulator::new(locked)?;
    let ni = locked.inputs().len();

    let mut state = config.seed | 1;
    let mut next_bit = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state >> 63 == 1
    };

    let mut dips = 0u64;
    let mut exact = false;
    let mut key: Option<Key> = None;
    let mut estimated_error = 1.0;
    let mut rounds = 0usize;

    'outer: for round in 0..config.max_rounds {
        rounds = round + 1;
        // Phase 1: a few exact DIP iterations.
        for _ in 0..config.dips_per_round {
            match solver.solve(&[miter.diff]) {
                SolveResult::Sat => {
                    let dip: Vec<bool> = miter
                        .inputs
                        .iter()
                        .map(|&l| solver.model_value(l).unwrap_or(false))
                        .collect();
                    let response = oracle.query(&dip);
                    dips += 1;
                    constrain(&mut solver, locked, &miter.keys_left, &dip, &response)?;
                    constrain(&mut solver, locked, &miter.keys_right, &dip, &response)?;
                }
                SolveResult::Unsat => {
                    exact = true;
                    break;
                }
                SolveResult::Unknown => unreachable!("no budget was set"),
            }
        }
        // Phase 2: extract the current candidate key.
        match solver.solve(&[]) {
            SolveResult::Sat => {
                key = Some(Key::new(
                    miter
                        .keys_left
                        .iter()
                        .map(|&l| solver.model_value(l).unwrap_or(false))
                        .collect(),
                ));
            }
            SolveResult::Unsat => {
                key = None;
                break 'outer;
            }
            SolveResult::Unknown => unreachable!("no budget was set"),
        }
        if exact {
            estimated_error = 0.0;
            break;
        }
        // Phase 3: random reinforcement + error estimation.
        let kb = key.as_ref().expect("set above").bits().to_vec();
        let mut mismatches = 0usize;
        for _ in 0..config.queries_per_round {
            let input: Vec<bool> = (0..ni).map(|_| next_bit()).collect();
            let response = oracle.query(&input);
            if sim.eval(&input, &kb) != response {
                mismatches += 1;
                constrain(&mut solver, locked, &miter.keys_left, &input, &response)?;
                constrain(&mut solver, locked, &miter.keys_right, &input, &response)?;
            }
        }
        estimated_error = mismatches as f64 / config.queries_per_round.max(1) as f64;
        if estimated_error <= config.error_threshold {
            break;
        }
    }

    Ok(AppSatOutcome {
        key,
        estimated_error,
        exact,
        rounds,
        dips,
        oracle_queries: oracle.queries() - queries_start,
        wall_time: start.elapsed(),
    })
}

/// Adds "this key copy reproduces `response` at `input`" to the solver.
fn constrain(
    solver: &mut Solver,
    locked: &Netlist,
    keys: &[polykey_sat::Lit],
    input: &[bool],
    response: &[bool],
) -> Result<(), AttackError> {
    let binding = Binding::with_pinned_inputs_shared_keys(input, keys);
    let enc = encode(solver, locked, &binding)?;
    for (out, &want) in enc.outputs.iter().zip(response) {
        assert_value(solver, *out, want);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::SimOracle;
    use crate::verify::{random_sim_mismatches, verify_key};
    use polykey_locking::{LockScheme, Rll, Sarlock};
    use polykey_netlist::GateKind;
    use rand::SeedableRng;

    fn sample_circuit() -> Netlist {
        let mut nl = Netlist::new("s");
        let ins: Vec<_> = (0..6).map(|i| nl.add_input(format!("x{i}")).unwrap()).collect();
        let g1 = nl.add_gate("g1", GateKind::And, &[ins[0], ins[1]]).unwrap();
        let g2 = nl.add_gate("g2", GateKind::Xor, &[g1, ins[2]]).unwrap();
        let g3 = nl.add_gate("g3", GateKind::Or, &[ins[3], ins[4]]).unwrap();
        let g4 = nl.add_gate("g4", GateKind::Nand, &[g2, g3]).unwrap();
        let g5 = nl.add_gate("g5", GateKind::Xnor, &[g4, ins[5]]).unwrap();
        nl.mark_output(g2).unwrap();
        nl.mark_output(g5).unwrap();
        nl
    }

    #[test]
    fn exact_on_rll() {
        // On RLL the DIP phase exhausts the key space: exact termination.
        let nl = sample_circuit();
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let locked = Rll::new(5).with_seed(4).lock_random(&nl, &mut rng).unwrap();
        let mut oracle = SimOracle::new(&nl).unwrap();
        let outcome =
            appsat_attack(&locked.netlist, &mut oracle, &AppSatConfig::default()).unwrap();
        assert!(outcome.exact, "RLL key space collapses exactly");
        let key = outcome.key.expect("key");
        assert!(verify_key(&nl, &locked.netlist, &key).unwrap());
        assert_eq!(outcome.estimated_error, 0.0);
    }

    #[test]
    fn approximate_on_sarlock() {
        // SARLock: every wrong key errs on exactly one of 2^6 inputs. The
        // approximate attack accepts a key with low sampled error quickly.
        let nl = sample_circuit();
        let key = Key::from_u64(0b101101, 6);
        let locked = Sarlock::new(6).lock(&nl, &key).unwrap();
        let mut oracle = SimOracle::new(&nl).unwrap();
        let config =
            AppSatConfig { dips_per_round: 2, max_rounds: 8, ..AppSatConfig::default() };
        let outcome = appsat_attack(&locked.netlist, &mut oracle, &config).unwrap();
        let got = outcome.key.expect("candidate key");
        // The candidate errs on at most a couple of the 64 input patterns.
        let mismatches = random_sim_mismatches(&nl, &locked.netlist, &got, 512, 3).unwrap();
        assert!(
            (mismatches as f64) / 512.0 <= 0.05,
            "approximate key should be nearly correct, {mismatches}/512 mismatches"
        );
        // And it used far fewer DIPs than the exact attack's ~2^6.
        assert!(outcome.dips <= 16, "got {} dips", outcome.dips);
    }

    #[test]
    fn mismatched_oracle_rejected() {
        let nl = sample_circuit();
        let mut tiny = Netlist::new("tiny");
        let a = tiny.add_input("a").unwrap();
        let y = tiny.add_gate("y", GateKind::Not, &[a]).unwrap();
        tiny.mark_output(y).unwrap();
        let mut oracle = SimOracle::new(&tiny).unwrap();
        assert!(matches!(
            appsat_attack(&nl, &mut oracle, &AppSatConfig::default()),
            Err(AttackError::OracleMismatch { .. })
        ));
    }

    #[test]
    fn keyless_is_trivially_exact() {
        let nl = sample_circuit();
        let mut oracle = SimOracle::new(&nl).unwrap();
        let outcome = appsat_attack(&nl, &mut oracle, &AppSatConfig::default()).unwrap();
        assert!(outcome.exact);
        assert_eq!(outcome.key.expect("empty").len(), 0);
    }
}
