//! The multi-key attack — Algorithm 1 of the paper.
//!
//! Instead of hunting for the single correct key, the attack splits the
//! input space on `N` chosen ports into `2^N` sub-spaces, cofactors and
//! re-synthesizes the locked netlist for each assignment `b`, and runs an
//! independent SAT attack per term. Each term returns a key that unlocks
//! its sub-space (possibly globally *incorrect*); collectively — recombined
//! with a MUX tree, see [`crate::recombine_multikey`] — the keys restore
//! the full design function.
//!
//! The terms are embarrassingly parallel; with `parallel` enabled they run
//! on `std::thread::scope` threads, matching the paper's 16-core setup at
//! `N = 4`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use polykey_locking::Key;
use polykey_netlist::{cofactor, cofactor_simplify, Netlist, NodeId};
use polykey_sat::SolverStats;

use crate::error::AttackError;
use crate::oracle::{Oracle, SimOracle};
use crate::sat_attack::{
    run_sat_attack, AttackStatus, RunCtl, SatAttackConfig, SatAttackOutcome,
};
use crate::session::ProgressEvent;
use crate::split::{select_split_inputs, SplitStrategy};

/// An oracle shared by concurrent sub-attacks: queries are serialized
/// behind a mutex, so any `Send` oracle — simulated, restricted, or a
/// custom hardware harness — serves all `2^N` terms.
pub(crate) struct SharedOracle<'o> {
    inner: Mutex<&'o mut (dyn Oracle + Send)>,
    num_inputs: usize,
    num_outputs: usize,
}

impl<'o> SharedOracle<'o> {
    pub(crate) fn new(oracle: &'o mut (dyn Oracle + Send)) -> SharedOracle<'o> {
        let num_inputs = oracle.num_inputs();
        let num_outputs = oracle.num_outputs();
        SharedOracle { inner: Mutex::new(oracle), num_inputs, num_outputs }
    }

    pub(crate) fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    pub(crate) fn num_outputs(&self) -> usize {
        self.num_outputs
    }
}

/// One term's view of the shared oracle: split bits are forced to the
/// term's pattern before each query, and queries are counted locally so
/// per-term accounting survives the sharing.
struct TermOracle<'a, 'o> {
    shared: &'a SharedOracle<'o>,
    forced: Vec<(usize, bool)>,
    queries: u64,
}

impl Oracle for TermOracle<'_, '_> {
    fn num_inputs(&self) -> usize {
        self.shared.num_inputs()
    }

    fn num_outputs(&self) -> usize {
        self.shared.num_outputs()
    }

    fn query(&mut self, input: &[bool]) -> Vec<bool> {
        let forced_input = crate::oracle::apply_forced(input, &self.forced);
        self.queries += 1;
        self.shared.inner.lock().expect("oracle lock poisoned").query(&forced_input)
    }

    fn query_batch(&mut self, inputs: &[Vec<bool>]) -> Vec<Vec<bool>> {
        let forced_inputs: Vec<Vec<bool>> = inputs
            .iter()
            .map(|input| crate::oracle::apply_forced(input, &self.forced))
            .collect();
        self.queries += inputs.len() as u64;
        // One lock acquisition serves the whole batch, so concurrent terms
        // amortize contention on the shared oracle along with the
        // round-trip itself.
        self.shared.inner.lock().expect("oracle lock poisoned").query_batch(&forced_inputs)
    }

    fn queries(&self) -> u64 {
        self.queries
    }
}

/// Worker-pool and instrumentation knobs for [`run_multi_key`], supplied
/// by the [`crate::AttackSession`].
#[derive(Default)]
pub(crate) struct EngineOpts<'e> {
    /// Worker threads for the `2^N` terms; `None` = one thread per term.
    pub threads: Option<usize>,
    /// Deadline + cancellation shared across all terms.
    pub ctl: RunCtl<'e>,
    /// Progress events (term started/finished, per-term DIPs).
    pub progress: Option<&'e (dyn Fn(&ProgressEvent) + Sync)>,
}

/// Tuning knobs for the multi-key attack.
#[derive(Clone, Debug)]
#[must_use]
pub struct MultiKeyConfig {
    /// The splitting effort `N`: the input space is divided into `2^N`
    /// terms. `N = 0` degenerates to the plain SAT attack.
    pub split_effort: usize,
    /// How the `N` ports are chosen.
    pub strategy: SplitStrategy,
    /// Re-synthesize each cofactored netlist (Algorithm 1 line 4). Turning
    /// this off is the `ablation_simplify` experiment.
    pub simplify: bool,
    /// Run the `2^N` terms on parallel threads.
    pub parallel: bool,
    /// Configuration for each per-term SAT attack.
    pub sat: SatAttackConfig,
}

impl Default for MultiKeyConfig {
    fn default() -> MultiKeyConfig {
        MultiKeyConfig {
            split_effort: 2,
            strategy: SplitStrategy::FanoutCone,
            simplify: true,
            parallel: true,
            sat: SatAttackConfig::new(),
        }
    }
}

impl MultiKeyConfig {
    /// A configuration with the given splitting effort and defaults
    /// otherwise.
    pub fn with_split_effort(n: usize) -> MultiKeyConfig {
        MultiKeyConfig { split_effort: n, ..Default::default() }
    }
}

/// One sub-space key: the term's split-bit assignment and the key that
/// unlocks the locked circuit on that sub-space.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SubKey {
    /// The term: bit `j` is the value pinned on split port `j`.
    pub pattern: u64,
    /// A key correct on the sub-space (possibly incorrect elsewhere).
    pub key: Key,
}

/// Per-term accounting.
#[derive(Clone, Debug)]
pub struct SubTaskReport {
    /// The term's split-bit assignment.
    pub pattern: u64,
    /// How this term's SAT attack ended.
    pub status: AttackStatus,
    /// `#DIP` for this term.
    pub dips: u64,
    /// Oracle queries issued by this term (one per answered DIP).
    pub oracle_queries: u64,
    /// Oracle round-trips made by this term (a batch of DIPs answered by
    /// one [`Oracle::query_batch`] call counts once).
    pub oracle_rounds: u64,
    /// DIP-refinement epochs of this term's SAT attack (see
    /// [`crate::SatAttackStats::epochs`]).
    pub epochs: u64,
    /// Full CDCL solver counters for this term's SAT attack (conflicts,
    /// restarts, learnt clauses, …), so every benchmark cell is
    /// self-describing.
    pub solver: SolverStats,
    /// Wall-clock time of this term (its own timer; terms overlap when
    /// parallel).
    pub wall_time: Duration,
    /// Gates in the locked netlist before cofactoring.
    pub gates_before: usize,
    /// Gates in the netlist this term actually attacked.
    pub gates_after: usize,
}

/// The result of a multi-key attack.
#[derive(Clone, Debug)]
pub struct MultiKeyOutcome {
    /// The recovered sub-space keys (one per *successful* term), sorted by
    /// pattern.
    pub keys: Vec<SubKey>,
    /// Accounting for every term, sorted by pattern.
    pub reports: Vec<SubTaskReport>,
    /// The chosen splitting ports (ids in the locked netlist), in pattern
    /// bit order.
    pub split_inputs: Vec<NodeId>,
    /// End-to-end wall-clock time of the whole attack.
    pub wall_time: Duration,
}

impl MultiKeyOutcome {
    /// True iff every term succeeded.
    pub fn is_complete(&self) -> bool {
        self.reports.iter().all(|r| r.status == AttackStatus::Success)
    }

    /// The maximum per-term wall time — the attack latency on a machine
    /// with ≥ `2^N` cores (the paper's headline metric).
    pub fn max_task_time(&self) -> Duration {
        self.reports.iter().map(|r| r.wall_time).max().unwrap_or_default()
    }

    /// Minimum per-term wall time.
    pub fn min_task_time(&self) -> Duration {
        self.reports.iter().map(|r| r.wall_time).min().unwrap_or_default()
    }

    /// Mean per-term wall time.
    pub fn mean_task_time(&self) -> Duration {
        if self.reports.is_empty() {
            return Duration::ZERO;
        }
        let total: Duration = self.reports.iter().map(|r| r.wall_time).sum();
        total / self.reports.len() as u32
    }
}

/// Runs Algorithm 1: the multi-key attack against `locked`, using a
/// simulated oracle over the `original` netlist.
///
/// # Errors
///
/// - [`AttackError::SplitTooWide`] if `split_effort` exceeds the input
///   count.
/// - [`AttackError::OracleMismatch`] if `original` and `locked` disagree on
///   interface arity.
/// - Structural errors from cofactoring or encoding.
#[deprecated(
    since = "0.2.0",
    note = "use `AttackSession::builder().oracle(..).split_effort(n).build()?.run(locked)`"
)]
pub fn multi_key_attack(
    locked: &Netlist,
    original: &Netlist,
    config: &MultiKeyConfig,
) -> Result<MultiKeyOutcome, AttackError> {
    let mut oracle = SimOracle::new(original)?;
    let shared = SharedOracle::new(&mut oracle);
    let opts = EngineOpts {
        threads: if config.parallel { None } else { Some(1) },
        ..EngineOpts::default()
    };
    run_multi_key(locked, &shared, config, &opts)
}

/// Algorithm 1 over an arbitrary shared oracle — the engine behind both
/// [`multi_key_attack`] and [`crate::AttackSession`].
pub(crate) fn run_multi_key(
    locked: &Netlist,
    oracle: &SharedOracle<'_>,
    config: &MultiKeyConfig,
    opts: &EngineOpts<'_>,
) -> Result<MultiKeyOutcome, AttackError> {
    if oracle.num_inputs() != locked.inputs().len() {
        return Err(AttackError::OracleMismatch {
            what: "inputs",
            netlist: locked.inputs().len(),
            oracle: oracle.num_inputs(),
        });
    }
    let start = Instant::now();
    let n = config.split_effort;
    let split_inputs = select_split_inputs(locked, n, config.strategy)?;
    // Positions of the split ports in the input list (for oracle forcing
    // and DIP pinning).
    let positions: Vec<usize> = split_inputs
        .iter()
        .map(|id| {
            locked
                .inputs()
                .iter()
                .position(|p| p == id)
                .expect("split ports come from the input list")
        })
        .collect();

    let terms: Vec<u64> = (0..(1u64 << n)).collect();
    let num_terms = terms.len();
    let run_term = |pattern: u64| -> Result<(SubTaskReport, Option<SubKey>), AttackError> {
        let term_start = Instant::now();
        let pins: Vec<(NodeId, bool)> = split_inputs
            .iter()
            .enumerate()
            .map(|(j, &id)| (id, pattern >> j & 1 == 1))
            .collect();
        let restricted = if config.simplify {
            cofactor_simplify(locked, &pins)?.0
        } else {
            cofactor(locked, &pins)?
        };
        if let Some(progress) = opts.progress {
            progress(&ProgressEvent::TermStarted {
                pattern,
                terms: num_terms,
                gates: restricted.num_gates(),
            });
        }
        let forced: Vec<(usize, bool)> = positions
            .iter()
            .enumerate()
            .map(|(j, &pos)| (pos, pattern >> j & 1 == 1))
            .collect();
        let mut term_sat = config.sat.clone();
        term_sat.force_inputs = forced.clone();
        let mut term_oracle = TermOracle { shared: oracle, forced, queries: 0 };
        let on_dip = opts
            .progress
            .map(|progress| move |dips: u64| progress(&ProgressEvent::Dip { pattern, dips }));
        let term_ctl = RunCtl {
            deadline: opts.ctl.deadline,
            cancel: opts.ctl.cancel,
            on_dip: on_dip.as_ref().map(|f| f as &(dyn Fn(u64) + Sync)),
        };
        let outcome: SatAttackOutcome =
            run_sat_attack(&restricted, &mut term_oracle, &term_sat, &term_ctl)?;
        let report = SubTaskReport {
            pattern,
            status: outcome.status,
            dips: outcome.stats.dips,
            oracle_queries: outcome.stats.oracle_queries,
            oracle_rounds: outcome.stats.oracle_rounds,
            epochs: outcome.stats.epochs,
            solver: outcome.stats.solver,
            wall_time: term_start.elapsed(),
            gates_before: locked.num_gates(),
            gates_after: restricted.num_gates(),
        };
        if let Some(progress) = opts.progress {
            progress(&ProgressEvent::TermFinished {
                pattern,
                status: report.status,
                dips: report.dips,
                wall_time: report.wall_time,
            });
        }
        let key = outcome.key.map(|key| SubKey { pattern, key });
        Ok((report, key))
    };

    // Dispatch the terms over a bounded worker pool: `threads = None`
    // keeps the historical one-thread-per-term behavior (the paper's
    // 16-core setup at N = 4); `threads = Some(k)` caps concurrency with
    // workers pulling terms from a shared queue.
    let workers = opts.threads.unwrap_or(num_terms).clamp(1, num_terms.max(1));
    let mut results: Vec<(SubTaskReport, Option<SubKey>)> = if workers > 1 {
        let next = AtomicUsize::new(0);
        let per_worker: Vec<Vec<(SubTaskReport, Option<SubKey>)>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut done = Vec::new();
                            loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                let Some(&pattern) = terms.get(i) else { break };
                                done.push(run_term(pattern)?);
                            }
                            Ok::<_, AttackError>(done)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("attack thread must not panic"))
                    .collect::<Result<Vec<_>, AttackError>>()
            })?;
        per_worker.into_iter().flatten().collect()
    } else {
        terms.iter().map(|&p| run_term(p)).collect::<Result<Vec<_>, _>>()?
    };

    results.sort_by_key(|(r, _)| r.pattern);
    let mut keys = Vec::new();
    let mut reports = Vec::with_capacity(results.len());
    for (report, key) in results {
        if let Some(k) = key {
            keys.push(k);
        }
        reports.push(report);
    }
    Ok(MultiKeyOutcome { keys, reports, split_inputs, wall_time: start.elapsed() })
}

#[cfg(test)]
// The unit tests deliberately exercise the deprecated one-release shims;
// the session surface is covered by `session.rs` and the integration tests.
#[allow(deprecated)]
mod tests {
    use super::*;
    use polykey_locking::{lock_sarlock_with_key, Key, SarlockConfig};
    use polykey_netlist::{bits_of, GateKind, Simulator};

    fn majority3() -> Netlist {
        let mut nl = Netlist::new("maj3");
        let a = nl.add_input("a").unwrap();
        let b = nl.add_input("b").unwrap();
        let c = nl.add_input("c").unwrap();
        let ab = nl.add_gate("ab", GateKind::And, &[a, b]).unwrap();
        let ac = nl.add_gate("ac", GateKind::And, &[a, c]).unwrap();
        let bc = nl.add_gate("bc", GateKind::And, &[b, c]).unwrap();
        let y = nl.add_gate("y", GateKind::Or, &[ab, ac, bc]).unwrap();
        nl.mark_output(y).unwrap();
        nl
    }

    fn locked_majority(key_value: u64) -> (Netlist, Netlist, Key) {
        let nl = majority3();
        let key = Key::from_u64(key_value, 3);
        let locked = lock_sarlock_with_key(&nl, &SarlockConfig::new(3), &key).unwrap();
        (nl, locked.netlist, key)
    }

    /// A sub-key must unlock its sub-space exactly.
    fn check_subspace(original: &Netlist, locked: &Netlist, split: &[NodeId], sub: &SubKey) {
        let positions: Vec<usize> = split
            .iter()
            .map(|id| locked.inputs().iter().position(|p| p == id).unwrap())
            .collect();
        let mut orig = Simulator::new(original).unwrap();
        let mut lsim = Simulator::new(locked).unwrap();
        let ni = original.inputs().len();
        for v in 0..(1u64 << ni) {
            let bits = bits_of(v, ni);
            let in_subspace = positions
                .iter()
                .enumerate()
                .all(|(j, &pos)| bits[pos] == (sub.pattern >> j & 1 == 1));
            if in_subspace {
                assert_eq!(
                    lsim.eval(&bits, sub.key.bits()),
                    orig.eval(&bits, &[]),
                    "pattern {:b} sub-key must unlock input {v:03b}",
                    sub.pattern
                );
            }
        }
    }

    #[test]
    fn n1_recovers_two_subspace_keys() {
        let (nl, locked, _) = locked_majority(0b101);
        let mut config = MultiKeyConfig::with_split_effort(1);
        config.parallel = false;
        let outcome = multi_key_attack(&locked, &nl, &config).unwrap();
        assert!(outcome.is_complete());
        assert_eq!(outcome.keys.len(), 2);
        assert_eq!(outcome.reports.len(), 2);
        for sub in &outcome.keys {
            check_subspace(&nl, &locked, &outcome.split_inputs, sub);
        }
    }

    #[test]
    fn n2_parallel_recovers_four_keys() {
        let (nl, locked, _) = locked_majority(0b010);
        let mut config = MultiKeyConfig::with_split_effort(2);
        config.parallel = true;
        let outcome = multi_key_attack(&locked, &nl, &config).unwrap();
        assert!(outcome.is_complete());
        assert_eq!(outcome.keys.len(), 4);
        for sub in &outcome.keys {
            check_subspace(&nl, &locked, &outcome.split_inputs, sub);
        }
        // Patterns are 0..4 in order.
        let patterns: Vec<u64> = outcome.keys.iter().map(|k| k.pattern).collect();
        assert_eq!(patterns, vec![0, 1, 2, 3]);
    }

    #[test]
    fn n0_degenerates_to_plain_sat_attack() {
        let (nl, locked, _) = locked_majority(0b100);
        let mut config = MultiKeyConfig::with_split_effort(0);
        config.parallel = false;
        let outcome = multi_key_attack(&locked, &nl, &config).unwrap();
        assert!(outcome.is_complete());
        assert_eq!(outcome.keys.len(), 1);
        assert_eq!(outcome.keys[0].pattern, 0);
        // With N = 0 the sub-space is the whole space: the key is globally
        // correct.
        check_subspace(&nl, &locked, &[], &outcome.keys[0]);
    }

    #[test]
    fn splitting_reduces_dips_on_sarlock() {
        // The headline effect of Table 1: #DIP halves per split level when
        // the splitting ports hit the SARLock comparator.
        let (nl, locked, _) = locked_majority(0b110);
        let mut dips_by_n = Vec::new();
        for n in 0..=2usize {
            let mut config = MultiKeyConfig::with_split_effort(n);
            config.parallel = false;
            let outcome = multi_key_attack(&locked, &nl, &config).unwrap();
            assert!(outcome.is_complete(), "N={n}");
            let max_dips = outcome.reports.iter().map(|r| r.dips).max().unwrap();
            dips_by_n.push(max_dips);
        }
        assert!(
            dips_by_n[1] < dips_by_n[0] && dips_by_n[2] < dips_by_n[1],
            "#DIP must shrink with N: {dips_by_n:?}"
        );
    }

    #[test]
    fn simplify_shrinks_subtask_netlists() {
        let (nl, locked, _) = locked_majority(0b001);
        let mut config = MultiKeyConfig::with_split_effort(2);
        config.parallel = false;
        config.simplify = true;
        let outcome = multi_key_attack(&locked, &nl, &config).unwrap();
        for r in &outcome.reports {
            assert!(
                r.gates_after < r.gates_before,
                "term {:02b}: {} -> {}",
                r.pattern,
                r.gates_before,
                r.gates_after
            );
        }
        // Ablation: without simplification the netlists keep their size.
        config.simplify = false;
        let outcome = multi_key_attack(&locked, &nl, &config).unwrap();
        assert!(outcome.is_complete());
        for r in &outcome.reports {
            assert!(r.gates_after >= r.gates_before);
        }
    }

    #[test]
    fn task_time_aggregates() {
        let (nl, locked, _) = locked_majority(0b011);
        let mut config = MultiKeyConfig::with_split_effort(1);
        config.parallel = false;
        let outcome = multi_key_attack(&locked, &nl, &config).unwrap();
        assert!(outcome.min_task_time() <= outcome.mean_task_time());
        assert!(outcome.mean_task_time() <= outcome.max_task_time());
        assert!(outcome.max_task_time() <= outcome.wall_time);
    }

    #[test]
    fn split_too_wide_rejected() {
        let (nl, locked, _) = locked_majority(0b011);
        let config = MultiKeyConfig::with_split_effort(12);
        assert!(matches!(
            multi_key_attack(&locked, &nl, &config),
            Err(AttackError::SplitTooWide { .. })
        ));
    }
}
