//! The multi-key attack — Algorithm 1 of the paper, generalized from a
//! flat `2^N` grid to an adaptive term *tree*.
//!
//! Instead of hunting for the single correct key, the attack splits the
//! input space on chosen ports, cofactors and re-synthesizes the locked
//! netlist for each assignment, and runs an independent SAT attack per
//! term. Each term returns a key that unlocks its sub-space (possibly
//! globally *incorrect*); collectively — recombined with a MUX tree, see
//! [`crate::recombine_multikey`] — the keys restore the full design
//! function.
//!
//! The paper fixes the splitting effort `N` up front, but term hardness is
//! wildly uneven in practice: the SARLock term containing the protected
//! pattern dominates wall-clock while its siblings converge in a handful
//! of DIPs. With a per-term budget configured
//! ([`MultiKeyConfig::term_dip_budget`] /
//! [`MultiKeyConfig::term_time_budget`]) the engine therefore runs
//! *adaptively*: a term that exhausts its budget without converging is
//! split one port deeper — re-ranking the remaining inputs on the term's
//! own cofactored netlist — and its two children go back onto the work
//! queue. Easy sub-spaces finish at shallow depth; hard ones are
//! subdivided until they yield (or hit [`MultiKeyConfig::max_split_depth`]).
//! Terms are identified by `(pattern, width)` prefix-tree paths rather
//! than flat grid indices.
//!
//! The terms are embarrassingly parallel; a bounded pool of workers pulls
//! them — including freshly split children — from a shared queue. A term
//! whose worker panics (e.g. a crashing oracle) is reported as
//! [`AttackStatus::Failed`] instead of poisoning its siblings or tearing
//! down the session.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use polykey_locking::Key;
use polykey_netlist::{cofactor, cofactor_simplify, Netlist, NodeId};
use polykey_sat::SolverStats;

use crate::error::AttackError;
use crate::oracle::{SharedOracle, SimOracle, TermOracle};
use crate::sat_attack::{run_sat_attack, AttackStatus, RunCtl, SatAttackConfig};
use crate::session::ProgressEvent;
use crate::split::{next_split_position, select_split_inputs, SplitStrategy};

/// The deepest split the engine supports: sub-space patterns are `u64`
/// prefix paths, so any effort or resplit beyond 63 pinned ports would
/// overflow `1u64 << n` (silently in release, with a panic in debug).
/// Requests past this limit are rejected with
/// [`AttackError::SplitTooDeep`].
pub const MAX_SPLIT_WIDTH: usize = 63;

/// Worker-pool and instrumentation knobs for [`run_multi_key`], supplied
/// by the [`crate::AttackSession`].
#[derive(Default)]
pub(crate) struct EngineOpts<'e> {
    /// Worker threads for the term pool; `None` = one thread per *root*
    /// term (or the machine's parallelism in adaptive mode, whichever is
    /// larger).
    pub threads: Option<usize>,
    /// Deadline + cancellation shared across all terms.
    pub ctl: RunCtl<'e>,
    /// Progress events (term started/split/finished, per-term DIPs).
    pub progress: Option<&'e (dyn Fn(&ProgressEvent) + Sync)>,
}

/// Tuning knobs for the multi-key attack.
#[derive(Clone, Debug)]
#[must_use]
pub struct MultiKeyConfig {
    /// The splitting effort `N`: the attack starts from `2^N` root terms.
    /// `N = 0` degenerates to the plain SAT attack (unless a per-term
    /// budget makes the engine split adaptively).
    pub split_effort: usize,
    /// How splitting ports are chosen — for the root grid and for every
    /// adaptive resplit.
    pub strategy: SplitStrategy,
    /// Re-synthesize each cofactored netlist (Algorithm 1 line 4). Turning
    /// this off is the `ablation_simplify` experiment.
    pub simplify: bool,
    /// Run the terms on parallel threads.
    pub parallel: bool,
    /// Configuration for each per-term SAT attack.
    pub sat: SatAttackConfig,
    /// Per-term DIP budget: a term that spends this many DIPs without
    /// converging is split one port deeper and re-attacked as two
    /// children. `None` (the default) keeps the paper's static grid.
    pub term_dip_budget: Option<u64>,
    /// Per-term wall-clock budget with the same resplit semantics.
    pub term_time_budget: Option<Duration>,
    /// Deepest adaptive split depth. `None` = as deep as the input count
    /// and [`MAX_SPLIT_WIDTH`] allow. Terms that exhaust their budget *at*
    /// the cap keep attacking under the ordinary limits instead.
    pub max_split_depth: Option<usize>,
}

impl Default for MultiKeyConfig {
    fn default() -> MultiKeyConfig {
        MultiKeyConfig {
            split_effort: 2,
            strategy: SplitStrategy::FanoutCone,
            simplify: true,
            parallel: true,
            sat: SatAttackConfig::new(),
            term_dip_budget: None,
            term_time_budget: None,
            max_split_depth: None,
        }
    }
}

impl MultiKeyConfig {
    /// A configuration with the given splitting effort and defaults
    /// otherwise.
    pub fn with_split_effort(n: usize) -> MultiKeyConfig {
        MultiKeyConfig { split_effort: n, ..Default::default() }
    }
}

/// One sub-space key, identified by its prefix-tree path: the first
/// `width` split ports are pinned to the corresponding bits of `pattern`.
///
/// In a static run every key has `width == N`; adaptive runs mix widths —
/// a hard term subdivided twice yields keys two levels deeper than its
/// easy siblings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SubKey {
    /// The term's path: bit `j` is the value pinned on split port `j`,
    /// for `j < width`. Bits at and above `width` are zero.
    pub pattern: u64,
    /// How many split ports this term pins (its depth in the term tree).
    pub width: u8,
    /// A key correct on the sub-space (possibly incorrect elsewhere).
    pub key: Key,
}

impl SubKey {
    /// The value this term pins on split port `j` (`j < width`).
    #[must_use]
    pub fn split_bit(&self, j: usize) -> bool {
        self.pattern >> j & 1 == 1
    }
}

/// Per-term accounting.
#[derive(Clone, Debug)]
pub struct SubTaskReport {
    /// The term's prefix-tree path (see [`SubKey::pattern`]).
    pub pattern: u64,
    /// How many split ports this term pins (its depth in the term tree).
    pub width: u8,
    /// How this term's SAT attack ended.
    pub status: AttackStatus,
    /// `#DIP` for this term.
    pub dips: u64,
    /// Oracle queries issued by this term (one per answered DIP).
    pub oracle_queries: u64,
    /// Oracle round-trips made by this term (a batch of DIPs answered by
    /// one [`crate::Oracle::query_batch`] call counts once).
    pub oracle_rounds: u64,
    /// DIP-refinement epochs of this term's SAT attack (see
    /// [`crate::SatAttackStats::epochs`]).
    pub epochs: u64,
    /// Full CDCL solver counters for this term's SAT attack (conflicts,
    /// restarts, learnt clauses, …), so every benchmark cell is
    /// self-describing.
    pub solver: SolverStats,
    /// Wall-clock time of this term (its own timer; terms overlap when
    /// parallel).
    pub wall_time: Duration,
    /// Gates in the locked netlist before cofactoring.
    pub gates_before: usize,
    /// Gates in the netlist this term actually attacked (0 if the term's
    /// worker panicked before cofactoring finished).
    pub gates_after: usize,
}

/// The result of a multi-key attack.
#[derive(Clone, Debug)]
pub struct MultiKeyOutcome {
    /// The recovered sub-space keys (one per *successful* leaf term),
    /// shallowest first, then by pattern.
    pub keys: Vec<SubKey>,
    /// Accounting for every leaf term of the final tree, shallowest first,
    /// then by pattern.
    pub reports: Vec<SubTaskReport>,
    /// Accounting for interior terms: runs that exhausted their budget and
    /// were subdivided ([`AttackStatus::BudgetExhausted`]). Their work
    /// counters are real attack cost and are included in
    /// [`crate::AttackStats`] totals; empty in static runs.
    pub resplit_reports: Vec<SubTaskReport>,
    /// The splitting ports (ids in the locked netlist) in pattern bit
    /// order. Adaptive resplits extend this list past the root `N`; a
    /// term of width `w` pins the first `w` entries.
    pub split_inputs: Vec<NodeId>,
    /// End-to-end wall-clock time of the whole attack.
    pub wall_time: Duration,
}

impl MultiKeyOutcome {
    /// True iff every leaf term succeeded.
    pub fn is_complete(&self) -> bool {
        self.reports.iter().all(|r| r.status == AttackStatus::Success)
    }

    /// The deepest term width in the final tree (the root `N` for static
    /// runs).
    #[must_use]
    pub fn max_depth(&self) -> usize {
        self.reports.iter().map(|r| r.width as usize).max().unwrap_or(0)
    }

    /// The maximum per-term wall time over every term that ran (leaves
    /// and resplit interior terms) — the attack latency on a machine with
    /// enough cores (the paper's headline metric).
    pub fn max_task_time(&self) -> Duration {
        self.all_reports().map(|r| r.wall_time).max().unwrap_or_default()
    }

    /// Minimum per-term wall time.
    pub fn min_task_time(&self) -> Duration {
        self.all_reports().map(|r| r.wall_time).min().unwrap_or_default()
    }

    /// Mean per-term wall time.
    pub fn mean_task_time(&self) -> Duration {
        let count = self.reports.len() + self.resplit_reports.len();
        if count == 0 {
            return Duration::ZERO;
        }
        let total: Duration = self.all_reports().map(|r| r.wall_time).sum();
        total / count as u32
    }

    /// Every term that ran: leaves, then resplit interior terms.
    pub(crate) fn all_reports(&self) -> impl Iterator<Item = &SubTaskReport> {
        self.reports.iter().chain(self.resplit_reports.iter())
    }
}

/// Runs Algorithm 1: the multi-key attack against `locked`, using a
/// simulated oracle over the `original` netlist.
///
/// # Errors
///
/// - [`AttackError::SplitTooWide`] if `split_effort` exceeds the input
///   count.
/// - [`AttackError::SplitTooDeep`] if `split_effort` exceeds
///   [`MAX_SPLIT_WIDTH`].
/// - [`AttackError::OracleMismatch`] if `original` and `locked` disagree on
///   interface arity.
/// - Structural errors from cofactoring or encoding.
#[deprecated(
    since = "0.2.0",
    note = "use `AttackSession::builder().oracle(..).split_effort(n).build()?.run(locked)`"
)]
pub fn multi_key_attack(
    locked: &Netlist,
    original: &Netlist,
    config: &MultiKeyConfig,
) -> Result<MultiKeyOutcome, AttackError> {
    let mut oracle = SimOracle::new(original)?;
    let shared = SharedOracle::new(&mut oracle);
    let opts = EngineOpts {
        threads: if config.parallel { None } else { Some(1) },
        ..EngineOpts::default()
    };
    run_multi_key(locked, &shared, config, &opts)
}

/// One node of the term tree awaiting an attack.
#[derive(Copy, Clone, Debug)]
struct TermPath {
    pattern: u64,
    width: u8,
}

/// What attacking one term produced.
enum TermOutput {
    /// The term is a leaf of the final tree (succeeded, failed, or gave up
    /// at a limit).
    Leaf(SubTaskReport, Option<SubKey>),
    /// The term exhausted its budget and was subdivided into two children.
    Split(SubTaskReport, [TermPath; 2]),
}

/// Shared scheduler state: the work queue plus everything the workers
/// produce. A single mutex keeps completion bookkeeping atomic with queue
/// updates, which is what makes the "queue empty and nothing in flight"
/// exit condition race-free.
struct SchedState {
    queue: VecDeque<TermPath>,
    in_flight: usize,
    results: Vec<(SubTaskReport, Option<SubKey>)>,
    resplits: Vec<SubTaskReport>,
    error: Option<AttackError>,
}

struct Scheduler {
    state: Mutex<SchedState>,
    cv: Condvar,
}

impl Scheduler {
    fn lock(&self) -> MutexGuard<'_, SchedState> {
        // A worker panic between lock and unlock would poison the state;
        // the bookkeeping is plain data, so recover rather than cascade.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Algorithm 1 over an arbitrary shared oracle — the engine behind both
/// [`multi_key_attack`] and [`crate::AttackSession`].
pub(crate) fn run_multi_key(
    locked: &Netlist,
    oracle: &SharedOracle<'_>,
    config: &MultiKeyConfig,
    opts: &EngineOpts<'_>,
) -> Result<MultiKeyOutcome, AttackError> {
    if oracle.num_inputs() != locked.inputs().len() {
        return Err(AttackError::OracleMismatch {
            what: "inputs",
            netlist: locked.inputs().len(),
            oracle: oracle.num_inputs(),
        });
    }
    let n = config.split_effort;
    // Guard every `1u64 << width` in the engine: splitting deeper than 63
    // ports cannot be represented in the u64 prefix paths.
    if n > MAX_SPLIT_WIDTH {
        return Err(AttackError::SplitTooDeep { requested: n, max: MAX_SPLIT_WIDTH });
    }
    if let Some(depth) = config.max_split_depth {
        if depth > MAX_SPLIT_WIDTH {
            return Err(AttackError::SplitTooDeep { requested: depth, max: MAX_SPLIT_WIDTH });
        }
    }
    let max_depth = config
        .max_split_depth
        .unwrap_or(usize::MAX)
        .min(locked.inputs().len())
        .min(MAX_SPLIT_WIDTH)
        .max(n);
    let adaptive = config.term_dip_budget.is_some() || config.term_time_budget.is_some();
    let start = Instant::now();

    // The global split-port order: index `j` is the port every term of
    // width > j pins with pattern bit `j`. Adaptive resplits extend it —
    // the first term to need depth `j + 1` ranks the remaining inputs on
    // its own cofactored netlist and appends the winner; siblings reuse it.
    let split_order: Mutex<Vec<NodeId>> =
        Mutex::new(select_split_inputs(locked, n, config.strategy)?);
    let order_positions = |order: &[NodeId]| -> Vec<usize> {
        order
            .iter()
            .map(|id| {
                locked
                    .inputs()
                    .iter()
                    .position(|p| p == id)
                    .expect("split ports come from the input list")
            })
            .collect()
    };

    let num_root_terms = 1usize << n;
    // Total terms ever enqueued, for progress reporting.
    let spawned = AtomicUsize::new(num_root_terms);

    // Extends the split order to cover depth `width + 1`, choosing the new
    // port by re-ranking the subdividing term's cofactored netlist. The
    // O(inputs × netlist) ranking runs *outside* the lock — other workers
    // only need the mutex for a cheap prefix copy at term start, and must
    // not stall behind cone analysis. First writer wins; a racing sibling
    // discards its ranking.
    let extend_split_order = |restricted: &Netlist, width: usize| -> Result<(), AttackError> {
        let used = {
            let order = split_order.lock().unwrap_or_else(PoisonError::into_inner);
            if order.len() > width {
                return Ok(()); // a sibling already chose this depth's port
            }
            order_positions(&order)
        };
        let next = next_split_position(restricted, &used, config.strategy)?;
        let mut order = split_order.lock().unwrap_or_else(PoisonError::into_inner);
        if order.len() > width {
            return Ok(()); // a sibling won the race while we ranked
        }
        match next {
            Some(pos) => {
                order.push(locked.inputs()[pos]);
                Ok(())
            }
            // Unreachable while `max_depth <= inputs`, but keep the error
            // honest rather than panicking.
            None => Err(AttackError::SplitTooWide {
                requested: width + 1,
                available: locked.inputs().len(),
            }),
        }
    };

    let run_term = |path: TermPath| -> Result<TermOutput, AttackError> {
        let term_start = Instant::now();
        let width = path.width as usize;
        let pattern = path.pattern;
        // Served-query count lives *outside* the panic boundary, so a term
        // whose oracle crashes mid-run still reports the queries it spent.
        let term_queries = AtomicU64::new(0);
        // The panic boundary covers the whole term — cofactoring, the SAT
        // attack, resplit selection, *and* every progress callback — so a
        // crashing oracle or a panicking user callback fails this term,
        // not the session (and cannot strand the scheduler's in-flight
        // accounting). The shared-oracle mutex recovers from the resulting
        // poison (see `SharedOracle::lock`); the term's local state is
        // simply discarded.
        let attempt = catch_unwind(AssertUnwindSafe(|| -> Result<TermOutput, AttackError> {
            let ports: Vec<NodeId> = {
                let order = split_order.lock().unwrap_or_else(PoisonError::into_inner);
                order[..width].to_vec()
            };
            let pins: Vec<(NodeId, bool)> =
                ports.iter().enumerate().map(|(j, &id)| (id, pattern >> j & 1 == 1)).collect();
            let restricted = if config.simplify {
                cofactor_simplify(locked, &pins)?.0
            } else {
                cofactor(locked, &pins)?
            };
            if let Some(progress) = opts.progress {
                progress(&ProgressEvent::TermStarted {
                    pattern,
                    width: path.width,
                    terms: spawned.load(Ordering::Relaxed),
                    gates: restricted.num_gates(),
                });
            }
            let positions = order_positions(&ports);
            let forced: Vec<(usize, bool)> = positions
                .iter()
                .enumerate()
                .map(|(j, &pos)| (pos, pattern >> j & 1 == 1))
                .collect();
            let mut term_sat = config.sat.clone();
            term_sat.force_inputs = forced.clone();
            if width < max_depth {
                // Terms that can still be subdivided additionally run under
                // the engine's resplit budgets — merged with (never
                // replacing) any soft budget the caller already put on
                // `config.sat`, so a user-supplied budget behaves the same
                // at every depth. At the depth cap only the caller's own
                // limits apply.
                term_sat.dip_budget = match (term_sat.dip_budget, config.term_dip_budget) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
                term_sat.time_budget = match (term_sat.time_budget, config.term_time_budget) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
            }
            let mut term_oracle = TermOracle::new(oracle, forced, &term_queries);
            let on_dip = opts.progress.map(|progress| {
                move |dips: u64| {
                    progress(&ProgressEvent::Dip { pattern, width: path.width, dips })
                }
            });
            let term_ctl = RunCtl {
                deadline: opts.ctl.deadline,
                cancel: opts.ctl.cancel,
                on_dip: on_dip.as_ref().map(|f| f as &(dyn Fn(u64) + Sync)),
            };
            let outcome = run_sat_attack(&restricted, &mut term_oracle, &term_sat, &term_ctl)?;
            let report = SubTaskReport {
                pattern,
                width: path.width,
                status: outcome.status,
                dips: outcome.stats.dips,
                oracle_queries: outcome.stats.oracle_queries,
                oracle_rounds: outcome.stats.oracle_rounds,
                epochs: outcome.stats.epochs,
                solver: outcome.stats.solver,
                wall_time: term_start.elapsed(),
                gates_before: locked.num_gates(),
                gates_after: restricted.num_gates(),
            };
            if let Some(progress) = opts.progress {
                progress(&ProgressEvent::TermFinished {
                    pattern,
                    width: path.width,
                    status: report.status,
                    dips: report.dips,
                    wall_time: report.wall_time,
                });
            }
            if report.status == AttackStatus::BudgetExhausted && width < max_depth {
                extend_split_order(&restricted, width)?;
                if let Some(progress) = opts.progress {
                    progress(&ProgressEvent::TermSplit {
                        pattern,
                        width: path.width,
                        dips: report.dips,
                    });
                }
                let children = [
                    TermPath { pattern, width: path.width + 1 },
                    TermPath { pattern: pattern | 1u64 << width, width: path.width + 1 },
                ];
                return Ok(TermOutput::Split(report, children));
            }
            let key = outcome.key.map(|key| SubKey { pattern, width: path.width, key });
            Ok(TermOutput::Leaf(report, key))
        }));
        match attempt {
            Ok(result) => result,
            // No progress emission here: the panicking party may *be* the
            // progress callback. The report keeps the served-query count;
            // DIP/solver counters died with the term's local state.
            Err(_panic) => Ok(TermOutput::Leaf(
                SubTaskReport {
                    pattern,
                    width: path.width,
                    status: AttackStatus::Failed,
                    dips: 0,
                    oracle_queries: term_queries.load(Ordering::Relaxed),
                    oracle_rounds: 0,
                    epochs: 0,
                    solver: SolverStats::default(),
                    wall_time: term_start.elapsed(),
                    gates_before: locked.num_gates(),
                    gates_after: 0,
                },
                None,
            )),
        }
    };

    // Dispatch over a bounded worker pool pulling from a shared queue:
    // `threads = None` keeps one thread per root term (the paper's 16-core
    // setup at N = 4), widened to the machine's parallelism in adaptive
    // mode so freshly split children find idle workers; `threads = Some(k)`
    // caps concurrency.
    let sched = Scheduler {
        state: Mutex::new(SchedState {
            queue: (0..num_root_terms as u64)
                .map(|pattern| TermPath { pattern, width: n as u8 })
                .collect(),
            in_flight: 0,
            results: Vec::new(),
            resplits: Vec::new(),
            error: None,
        }),
        cv: Condvar::new(),
    };
    let worker = || {
        loop {
            let path = {
                let mut st = sched.lock();
                loop {
                    if st.error.is_some() {
                        st.queue.clear();
                    }
                    if let Some(p) = st.queue.pop_front() {
                        st.in_flight += 1;
                        break Some(p);
                    }
                    if st.in_flight == 0 {
                        break None;
                    }
                    st = sched.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
                }
            };
            let Some(path) = path else {
                // Wake any peers still waiting so they observe the drained
                // queue and exit too.
                sched.cv.notify_all();
                return;
            };
            let output = run_term(path);
            let mut st = sched.lock();
            // Saturating: if the defensive join-error path already zeroed
            // the in-flight count, a late completion must not underflow.
            st.in_flight = st.in_flight.saturating_sub(1);
            match output {
                Ok(TermOutput::Leaf(report, key)) => st.results.push((report, key)),
                Ok(TermOutput::Split(report, children)) => {
                    st.resplits.push(report);
                    spawned.fetch_add(children.len(), Ordering::Relaxed);
                    st.queue.extend(children);
                }
                Err(e) => {
                    // First error wins; the queue is drained so in-flight
                    // siblings finish and every worker exits.
                    st.error.get_or_insert(e);
                    st.queue.clear();
                }
            }
            drop(st);
            sched.cv.notify_all();
        }
    };

    let default_workers = if adaptive {
        num_root_terms.max(std::thread::available_parallelism().map_or(1, |p| p.get()))
    } else {
        num_root_terms
    };
    let workers = opts.threads.unwrap_or(default_workers).clamp(1, default_workers.max(1));
    if workers > 1 {
        std::thread::scope(|scope| {
            // The worker closure captures only shared references, so it is
            // `Copy`: each spawn gets its own handle to the same state.
            let handles: Vec<_> = (0..workers).map(|_| scope.spawn(worker)).collect();
            for handle in handles {
                if handle.join().is_err() {
                    // Workers recover term panics internally; a panic at
                    // this level is a scheduler bug, but even then one
                    // worker's death must not take the session down — or
                    // strand its in-flight slot and wedge the peers.
                    let mut st = sched.lock();
                    st.error.get_or_insert(AttackError::SessionConfig {
                        message: "an attack worker thread panicked outside a term \
                                  boundary (engine bug)"
                            .into(),
                    });
                    st.queue.clear();
                    st.in_flight = 0;
                    drop(st);
                    sched.cv.notify_all();
                }
            }
        });
    } else {
        worker();
    }

    let mut st = sched.state.into_inner().unwrap_or_else(PoisonError::into_inner);
    if let Some(e) = st.error.take() {
        return Err(e);
    }
    st.results.sort_by_key(|(r, _)| (r.width, r.pattern));
    st.resplits.sort_by_key(|r| (r.width, r.pattern));
    let mut keys = Vec::new();
    let mut reports = Vec::with_capacity(st.results.len());
    for (report, key) in st.results {
        if let Some(k) = key {
            keys.push(k);
        }
        reports.push(report);
    }
    let split_inputs = split_order.into_inner().unwrap_or_else(PoisonError::into_inner);
    Ok(MultiKeyOutcome {
        keys,
        reports,
        resplit_reports: st.resplits,
        split_inputs,
        wall_time: start.elapsed(),
    })
}

#[cfg(test)]
// The unit tests deliberately exercise the deprecated one-release shims;
// the session surface is covered by `session.rs` and the integration tests.
#[allow(deprecated)]
mod tests {
    use super::*;
    use polykey_locking::{lock_sarlock_with_key, Key, SarlockConfig};
    use polykey_netlist::{bits_of, GateKind, Simulator};

    fn majority3() -> Netlist {
        let mut nl = Netlist::new("maj3");
        let a = nl.add_input("a").unwrap();
        let b = nl.add_input("b").unwrap();
        let c = nl.add_input("c").unwrap();
        let ab = nl.add_gate("ab", GateKind::And, &[a, b]).unwrap();
        let ac = nl.add_gate("ac", GateKind::And, &[a, c]).unwrap();
        let bc = nl.add_gate("bc", GateKind::And, &[b, c]).unwrap();
        let y = nl.add_gate("y", GateKind::Or, &[ab, ac, bc]).unwrap();
        nl.mark_output(y).unwrap();
        nl
    }

    fn locked_majority(key_value: u64) -> (Netlist, Netlist, Key) {
        let nl = majority3();
        let key = Key::from_u64(key_value, 3);
        let locked = lock_sarlock_with_key(&nl, &SarlockConfig::new(3), &key).unwrap();
        (nl, locked.netlist, key)
    }

    /// A sub-key must unlock its sub-space exactly.
    fn check_subspace(original: &Netlist, locked: &Netlist, split: &[NodeId], sub: &SubKey) {
        let positions: Vec<usize> = split[..sub.width as usize]
            .iter()
            .map(|id| locked.inputs().iter().position(|p| p == id).unwrap())
            .collect();
        let mut orig = Simulator::new(original).unwrap();
        let mut lsim = Simulator::new(locked).unwrap();
        let ni = original.inputs().len();
        for v in 0..(1u64 << ni) {
            let bits = bits_of(v, ni);
            let in_subspace =
                positions.iter().enumerate().all(|(j, &pos)| bits[pos] == sub.split_bit(j));
            if in_subspace {
                assert_eq!(
                    lsim.eval(&bits, sub.key.bits()),
                    orig.eval(&bits, &[]),
                    "pattern {:b}/{} sub-key must unlock input {v:03b}",
                    sub.pattern,
                    sub.width
                );
            }
        }
    }

    #[test]
    fn n1_recovers_two_subspace_keys() {
        let (nl, locked, _) = locked_majority(0b101);
        let mut config = MultiKeyConfig::with_split_effort(1);
        config.parallel = false;
        let outcome = multi_key_attack(&locked, &nl, &config).unwrap();
        assert!(outcome.is_complete());
        assert_eq!(outcome.keys.len(), 2);
        assert_eq!(outcome.reports.len(), 2);
        assert!(outcome.resplit_reports.is_empty(), "static runs never resplit");
        for sub in &outcome.keys {
            assert_eq!(sub.width, 1);
            check_subspace(&nl, &locked, &outcome.split_inputs, sub);
        }
    }

    #[test]
    fn n2_parallel_recovers_four_keys() {
        let (nl, locked, _) = locked_majority(0b010);
        let mut config = MultiKeyConfig::with_split_effort(2);
        config.parallel = true;
        let outcome = multi_key_attack(&locked, &nl, &config).unwrap();
        assert!(outcome.is_complete());
        assert_eq!(outcome.keys.len(), 4);
        for sub in &outcome.keys {
            check_subspace(&nl, &locked, &outcome.split_inputs, sub);
        }
        // Patterns are 0..4 in order (uniform width sorts numerically).
        let patterns: Vec<u64> = outcome.keys.iter().map(|k| k.pattern).collect();
        assert_eq!(patterns, vec![0, 1, 2, 3]);
    }

    #[test]
    fn n0_degenerates_to_plain_sat_attack() {
        let (nl, locked, _) = locked_majority(0b100);
        let mut config = MultiKeyConfig::with_split_effort(0);
        config.parallel = false;
        let outcome = multi_key_attack(&locked, &nl, &config).unwrap();
        assert!(outcome.is_complete());
        assert_eq!(outcome.keys.len(), 1);
        assert_eq!(outcome.keys[0].pattern, 0);
        assert_eq!(outcome.keys[0].width, 0);
        // With N = 0 the sub-space is the whole space: the key is globally
        // correct.
        check_subspace(&nl, &locked, &[], &outcome.keys[0]);
    }

    #[test]
    fn splitting_reduces_dips_on_sarlock() {
        // The headline effect of Table 1: #DIP halves per split level when
        // the splitting ports hit the SARLock comparator.
        let (nl, locked, _) = locked_majority(0b110);
        let mut dips_by_n = Vec::new();
        for n in 0..=2usize {
            let mut config = MultiKeyConfig::with_split_effort(n);
            config.parallel = false;
            let outcome = multi_key_attack(&locked, &nl, &config).unwrap();
            assert!(outcome.is_complete(), "N={n}");
            let max_dips = outcome.reports.iter().map(|r| r.dips).max().unwrap();
            dips_by_n.push(max_dips);
        }
        assert!(
            dips_by_n[1] < dips_by_n[0] && dips_by_n[2] < dips_by_n[1],
            "#DIP must shrink with N: {dips_by_n:?}"
        );
    }

    #[test]
    fn adaptive_budget_splits_hard_terms_deeper() {
        // SARLock |K| = 3 needs ~7 DIPs at the root; a budget of 2 forces
        // the engine to subdivide until each leaf converges within budget.
        let (nl, locked, _) = locked_majority(0b101);
        let mut config = MultiKeyConfig::with_split_effort(0);
        config.parallel = false;
        config.term_dip_budget = Some(2);
        let outcome = multi_key_attack(&locked, &nl, &config).unwrap();
        assert!(outcome.is_complete(), "statuses: {:?}", outcome.reports);
        assert!(outcome.max_depth() > 0, "the root term must have been subdivided");
        assert!(!outcome.resplit_reports.is_empty());
        for r in &outcome.resplit_reports {
            assert_eq!(r.status, AttackStatus::BudgetExhausted);
            assert!(r.dips <= 2, "budgeted term overspent: {} DIPs", r.dips);
        }
        // The final tree's split order covers its deepest leaf.
        assert!(outcome.split_inputs.len() >= outcome.max_depth());
        // Every leaf key still unlocks exactly its sub-space.
        for sub in &outcome.keys {
            check_subspace(&nl, &locked, &outcome.split_inputs, sub);
        }
    }

    #[test]
    fn adaptive_depth_cap_limits_the_tree() {
        let (nl, locked, _) = locked_majority(0b011);
        let mut config = MultiKeyConfig::with_split_effort(0);
        config.parallel = false;
        config.term_dip_budget = Some(1);
        config.max_split_depth = Some(1);
        let outcome = multi_key_attack(&locked, &nl, &config).unwrap();
        // At the cap terms run without the soft budget, so they converge.
        assert!(outcome.is_complete());
        assert!(outcome.max_depth() <= 1);
    }

    #[test]
    fn simplify_shrinks_subtask_netlists() {
        let (nl, locked, _) = locked_majority(0b001);
        let mut config = MultiKeyConfig::with_split_effort(2);
        config.parallel = false;
        config.simplify = true;
        let outcome = multi_key_attack(&locked, &nl, &config).unwrap();
        for r in &outcome.reports {
            assert!(
                r.gates_after < r.gates_before,
                "term {:02b}: {} -> {}",
                r.pattern,
                r.gates_before,
                r.gates_after
            );
        }
        // Ablation: without simplification the netlists keep their size.
        config.simplify = false;
        let outcome = multi_key_attack(&locked, &nl, &config).unwrap();
        assert!(outcome.is_complete());
        for r in &outcome.reports {
            assert!(r.gates_after >= r.gates_before);
        }
    }

    #[test]
    fn task_time_aggregates() {
        let (nl, locked, _) = locked_majority(0b011);
        let mut config = MultiKeyConfig::with_split_effort(1);
        config.parallel = false;
        let outcome = multi_key_attack(&locked, &nl, &config).unwrap();
        assert!(outcome.min_task_time() <= outcome.mean_task_time());
        assert!(outcome.mean_task_time() <= outcome.max_task_time());
        assert!(outcome.max_task_time() <= outcome.wall_time);
    }

    #[test]
    fn split_too_wide_rejected() {
        let (nl, locked, _) = locked_majority(0b011);
        let config = MultiKeyConfig::with_split_effort(12);
        assert!(matches!(
            multi_key_attack(&locked, &nl, &config),
            Err(AttackError::SplitTooWide { .. })
        ));
    }

    #[test]
    fn split_effort_64_rejected_not_wrapped() {
        // Regression: `1u64 << 64` wraps to 1 in release (one silent term)
        // and panics in debug. The engine must reject the configuration
        // before any shift happens — even when the circuit has 64 inputs,
        // which the old `n > inputs` check waved through.
        let mut nl = Netlist::new("wide64");
        let inputs: Vec<NodeId> =
            (0..64).map(|i| nl.add_input(format!("x{i}")).unwrap()).collect();
        let y = nl.add_gate("y", GateKind::Or, &inputs).unwrap();
        nl.mark_output(y).unwrap();
        let config = MultiKeyConfig::with_split_effort(64);
        assert!(matches!(
            multi_key_attack(&nl, &nl, &config),
            Err(AttackError::SplitTooDeep { requested: 64, max: MAX_SPLIT_WIDTH })
        ));
        // An over-deep resplit cap is rejected the same way.
        let mut config = MultiKeyConfig::with_split_effort(1);
        config.max_split_depth = Some(64);
        assert!(matches!(
            multi_key_attack(&nl, &nl, &config),
            Err(AttackError::SplitTooDeep { requested: 64, max: MAX_SPLIT_WIDTH })
        ));
    }
}
