//! The attack oracle: the attacker's black-box access to a working chip.
//!
//! The SAT attack's threat model gives the attacker a functional unlocked
//! chip bought on the open market, queried input-by-input. [`SimOracle`]
//! plays that chip by simulating the original netlist; the [`Oracle`] trait
//! keeps the attack code independent of where responses come from, and
//! [`RestrictedOracle`] adapts an oracle to a sub-space attack by forcing
//! the split bits (the sub-attack may ask about any input, but the answers
//! must correspond to the sub-space being attacked).

use polykey_netlist::{Netlist, NetlistError, Simulator};

/// Black-box input/output access to the original (unlocked) circuit.
pub trait Oracle {
    /// Number of primary inputs the oracle expects.
    fn num_inputs(&self) -> usize;

    /// Number of outputs the oracle produces.
    fn num_outputs(&self) -> usize;

    /// Queries the chip with one input pattern.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `input` has the wrong width.
    fn query(&mut self, input: &[bool]) -> Vec<bool>;

    /// Number of queries served so far (the attack's oracle-access cost).
    fn queries(&self) -> u64;
}

/// An oracle that simulates the original netlist (the "working chip").
///
/// # Examples
///
/// ```
/// use polykey_attack::{Oracle, SimOracle};
/// use polykey_netlist::{GateKind, Netlist};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut nl = Netlist::new("inv");
/// let a = nl.add_input("a")?;
/// let y = nl.add_gate("y", GateKind::Not, &[a])?;
/// nl.mark_output(y)?;
///
/// let mut oracle = SimOracle::new(&nl)?;
/// assert_eq!(oracle.query(&[false]), vec![true]);
/// assert_eq!(oracle.queries(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SimOracle<'a> {
    sim: Simulator<'a>,
    queries: u64,
}

impl<'a> SimOracle<'a> {
    /// Builds an oracle over the original netlist.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Cycle`] for cyclic netlists, and
    /// [`NetlistError::NotAnInput`] if the netlist has key inputs (an oracle
    /// is an *unlocked* chip).
    pub fn new(netlist: &'a Netlist) -> Result<SimOracle<'a>, NetlistError> {
        if !netlist.key_inputs().is_empty() {
            return Err(NetlistError::NotAnInput {
                name: "oracle netlists must be keyless".to_string(),
            });
        }
        Ok(SimOracle { sim: Simulator::new(netlist)?, queries: 0 })
    }
}

impl Oracle for SimOracle<'_> {
    fn num_inputs(&self) -> usize {
        self.sim.netlist().inputs().len()
    }

    fn num_outputs(&self) -> usize {
        self.sim.netlist().outputs().len()
    }

    fn query(&mut self, input: &[bool]) -> Vec<bool> {
        self.queries += 1;
        self.sim.eval(input, &[])
    }

    fn queries(&self) -> u64 {
        self.queries
    }
}

/// Wraps an oracle so that selected input positions are forced to fixed
/// values before each query — the oracle view of one sub-space term in the
/// multi-key attack.
#[derive(Debug)]
pub struct RestrictedOracle<O> {
    inner: O,
    forced: Vec<(usize, bool)>,
}

impl<O: Oracle> RestrictedOracle<O> {
    /// Wraps `inner`, forcing `forced` positions (input index, value).
    ///
    /// # Panics
    ///
    /// Panics if a forced index is out of range for the inner oracle.
    pub fn new(inner: O, forced: Vec<(usize, bool)>) -> RestrictedOracle<O> {
        for &(i, _) in &forced {
            assert!(i < inner.num_inputs(), "forced index {i} out of range");
        }
        RestrictedOracle { inner, forced }
    }

    /// The wrapped oracle.
    pub fn into_inner(self) -> O {
        self.inner
    }
}

impl<O: Oracle> Oracle for RestrictedOracle<O> {
    fn num_inputs(&self) -> usize {
        self.inner.num_inputs()
    }

    fn num_outputs(&self) -> usize {
        self.inner.num_outputs()
    }

    fn query(&mut self, input: &[bool]) -> Vec<bool> {
        let mut forced_input = input.to_vec();
        for &(i, v) in &self.forced {
            forced_input[i] = v;
        }
        self.inner.query(&forced_input)
    }

    fn queries(&self) -> u64 {
        self.inner.queries()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polykey_netlist::GateKind;

    fn xor2() -> Netlist {
        let mut nl = Netlist::new("xor2");
        let a = nl.add_input("a").unwrap();
        let b = nl.add_input("b").unwrap();
        let y = nl.add_gate("y", GateKind::Xor, &[a, b]).unwrap();
        nl.mark_output(y).unwrap();
        nl
    }

    #[test]
    fn sim_oracle_answers_and_counts() {
        let nl = xor2();
        let mut oracle = SimOracle::new(&nl).unwrap();
        assert_eq!(oracle.num_inputs(), 2);
        assert_eq!(oracle.num_outputs(), 1);
        assert_eq!(oracle.query(&[true, false]), vec![true]);
        assert_eq!(oracle.query(&[true, true]), vec![false]);
        assert_eq!(oracle.queries(), 2);
    }

    #[test]
    fn keyed_netlist_rejected_as_oracle() {
        let mut nl = xor2();
        let k = nl.add_key_input("k").unwrap();
        let _ = k;
        assert!(SimOracle::new(&nl).is_err());
    }

    #[test]
    fn restricted_oracle_forces_bits() {
        let nl = xor2();
        let oracle = SimOracle::new(&nl).unwrap();
        let mut restricted = RestrictedOracle::new(oracle, vec![(0, true)]);
        // Input bit 0 is forced to 1 regardless of what we pass.
        assert_eq!(restricted.query(&[false, false]), vec![true]);
        assert_eq!(restricted.query(&[true, false]), vec![true]);
        assert_eq!(restricted.query(&[false, true]), vec![false]);
        assert_eq!(restricted.queries(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn restricted_oracle_checks_indices() {
        let nl = xor2();
        let oracle = SimOracle::new(&nl).unwrap();
        let _ = RestrictedOracle::new(oracle, vec![(5, true)]);
    }
}
