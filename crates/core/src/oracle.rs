//! The attack oracle: the attacker's black-box access to a working chip.
//!
//! The SAT attack's threat model gives the attacker a functional unlocked
//! chip bought on the open market, queried input-by-input. [`SimOracle`]
//! plays that chip by simulating the original netlist; the [`Oracle`] trait
//! keeps the attack code independent of where responses come from, and
//! [`RestrictedOracle`] adapts an oracle to a sub-space attack by forcing
//! the split bits (the sub-attack may ask about any input, but the answers
//! must correspond to the sub-space being attacked).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use polykey_netlist::{pack_patterns, unpack_patterns, Netlist, NetlistError, Simulator};

/// Black-box input/output access to the original (unlocked) circuit.
pub trait Oracle {
    /// Number of primary inputs the oracle expects.
    fn num_inputs(&self) -> usize;

    /// Number of outputs the oracle produces.
    fn num_outputs(&self) -> usize;

    /// Queries the chip with one input pattern.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `input` has the wrong width.
    fn query(&mut self, input: &[bool]) -> Vec<bool>;

    /// Answers a whole batch of input patterns in one oracle round-trip,
    /// returning one response per pattern, in order.
    ///
    /// The default implementation loops over [`Oracle::query`], so every
    /// existing oracle keeps working; oracles backed by a bit-parallel
    /// simulator override it to answer up to 64 patterns per simulation
    /// pass (see [`SimOracle`]). The batched SAT attack
    /// (`AttackSessionBuilder::dip_batch`) funnels all its DIP traffic
    /// through this method, so one round-trip amortizes over many DIPs.
    ///
    /// # Panics
    ///
    /// Implementations may panic if any pattern has the wrong width.
    ///
    /// # Examples
    ///
    /// ```
    /// use polykey_attack::{Oracle, SimOracle};
    /// use polykey_netlist::{GateKind, Netlist};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut nl = Netlist::new("inv");
    /// let a = nl.add_input("a")?;
    /// let y = nl.add_gate("y", GateKind::Not, &[a])?;
    /// nl.mark_output(y)?;
    ///
    /// let mut oracle = SimOracle::new(&nl)?;
    /// let batch = vec![vec![false], vec![true]];
    /// // One packed pass answers both patterns...
    /// assert_eq!(oracle.query_batch(&batch), vec![vec![true], vec![false]]);
    /// // ...and each pattern still counts as one query.
    /// assert_eq!(oracle.queries(), 2);
    /// # Ok(())
    /// # }
    /// ```
    fn query_batch(&mut self, inputs: &[Vec<bool>]) -> Vec<Vec<bool>> {
        inputs.iter().map(|input| self.query(input)).collect()
    }

    /// Number of queries served so far (the attack's oracle-access cost).
    /// A batch of `k` patterns counts as `k` queries.
    fn queries(&self) -> u64;
}

/// An oracle that simulates the original netlist (the "working chip").
///
/// # Examples
///
/// ```
/// use polykey_attack::{Oracle, SimOracle};
/// use polykey_netlist::{GateKind, Netlist};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut nl = Netlist::new("inv");
/// let a = nl.add_input("a")?;
/// let y = nl.add_gate("y", GateKind::Not, &[a])?;
/// nl.mark_output(y)?;
///
/// let mut oracle = SimOracle::new(&nl)?;
/// assert_eq!(oracle.query(&[false]), vec![true]);
/// assert_eq!(oracle.queries(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SimOracle<'a> {
    sim: Simulator<'a>,
    queries: u64,
}

impl<'a> SimOracle<'a> {
    /// Builds an oracle over the original netlist.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Cycle`] for cyclic netlists, and
    /// [`NetlistError::NotAnInput`] if the netlist has key inputs (an oracle
    /// is an *unlocked* chip).
    pub fn new(netlist: &'a Netlist) -> Result<SimOracle<'a>, NetlistError> {
        if !netlist.key_inputs().is_empty() {
            return Err(NetlistError::NotAnInput {
                name: "oracle netlists must be keyless".to_string(),
            });
        }
        Ok(SimOracle { sim: Simulator::new(netlist)?, queries: 0 })
    }
}

impl Oracle for SimOracle<'_> {
    fn num_inputs(&self) -> usize {
        self.sim.netlist().inputs().len()
    }

    fn num_outputs(&self) -> usize {
        self.sim.netlist().outputs().len()
    }

    fn query(&mut self, input: &[bool]) -> Vec<bool> {
        self.queries += 1;
        self.sim.eval(input, &[])
    }

    fn query_batch(&mut self, inputs: &[Vec<bool>]) -> Vec<Vec<bool>> {
        let width = self.num_inputs();
        let mut responses = Vec::with_capacity(inputs.len());
        // One bit-parallel pass per 64 patterns: pattern p of the chunk
        // rides bit p of each input word.
        for chunk in inputs.chunks(64) {
            let packed_in = pack_patterns(chunk, width);
            let packed_out = self.sim.eval_packed(&packed_in, &[]);
            responses.extend(unpack_patterns(&packed_out, chunk.len()));
        }
        self.queries += inputs.len() as u64;
        responses
    }

    fn queries(&self) -> u64 {
        self.queries
    }
}

/// Applies `(index, value)` forcings to one input pattern — the shared
/// mechanics of [`RestrictedOracle`] and the multi-key engine's per-term
/// oracle, for single queries and batches alike.
pub(crate) fn apply_forced(input: &[bool], forced: &[(usize, bool)]) -> Vec<bool> {
    let mut forced_input = input.to_vec();
    for &(i, v) in forced {
        forced_input[i] = v;
    }
    forced_input
}

/// An oracle shared by concurrent sub-attacks: queries are serialized
/// behind a mutex, so any `Send` oracle — simulated, restricted, or a
/// custom hardware harness — serves every term of the multi-key engine.
pub(crate) struct SharedOracle<'o> {
    inner: Mutex<&'o mut (dyn Oracle + Send)>,
    num_inputs: usize,
    num_outputs: usize,
}

impl<'o> SharedOracle<'o> {
    pub(crate) fn new(oracle: &'o mut (dyn Oracle + Send)) -> SharedOracle<'o> {
        let num_inputs = oracle.num_inputs();
        let num_outputs = oracle.num_outputs();
        SharedOracle { inner: Mutex::new(oracle), num_inputs, num_outputs }
    }

    pub(crate) fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    pub(crate) fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// Locks the shared oracle, *recovering* a poisoned mutex: a term
    /// whose oracle panicked mid-query poisons the lock, but the oracle
    /// itself (a query-in, response-out device) holds no half-applied
    /// invariants, and propagating the poison would cascade one term's
    /// panic into every sibling and then the whole session.
    fn lock(&self) -> MutexGuard<'_, &'o mut (dyn Oracle + Send)> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// One term's view of the shared oracle: split bits are forced to the
/// term's pattern — at whatever depth the adaptive tree has reached —
/// before each query. Queries are counted per term through a counter the
/// *caller* owns, outside the engine's panic boundary, and the count is
/// taken from the underlying oracle's *own* delta: a term whose oracle
/// crashes mid-run (even mid-batch) still reports exactly the queries the
/// oracle says it served, so session totals keep reconciling with
/// [`Oracle::queries`] after a panic.
pub(crate) struct TermOracle<'a, 'o> {
    shared: &'a SharedOracle<'o>,
    forced: Vec<(usize, bool)>,
    queries: &'a AtomicU64,
}

impl<'a, 'o> TermOracle<'a, 'o> {
    /// A term view forcing the `(input position, value)` pairs of one
    /// prefix-tree path, counting served queries into `queries`.
    pub(crate) fn new(
        shared: &'a SharedOracle<'o>,
        forced: Vec<(usize, bool)>,
        queries: &'a AtomicU64,
    ) -> TermOracle<'a, 'o> {
        TermOracle { shared, forced, queries }
    }

    /// Runs `call` against the locked inner oracle, crediting this term
    /// with however many queries the inner oracle's counter advanced —
    /// *including* the partial progress of a call that panics, which is
    /// re-raised after the count lands.
    fn serve<R>(&mut self, call: impl FnOnce(&mut (dyn Oracle + Send)) -> R) -> R {
        let mut inner = self.shared.lock();
        let before = inner.queries();
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| call(&mut **inner)));
        let served = inner.queries().saturating_sub(before);
        self.queries.fetch_add(served, Ordering::Relaxed);
        match result {
            Ok(response) => response,
            Err(panic) => std::panic::resume_unwind(panic),
        }
    }
}

impl Oracle for TermOracle<'_, '_> {
    fn num_inputs(&self) -> usize {
        self.shared.num_inputs()
    }

    fn num_outputs(&self) -> usize {
        self.shared.num_outputs()
    }

    fn query(&mut self, input: &[bool]) -> Vec<bool> {
        let forced_input = apply_forced(input, &self.forced);
        self.serve(|inner| inner.query(&forced_input))
    }

    fn query_batch(&mut self, inputs: &[Vec<bool>]) -> Vec<Vec<bool>> {
        let forced_inputs: Vec<Vec<bool>> =
            inputs.iter().map(|input| apply_forced(input, &self.forced)).collect();
        // One lock acquisition serves the whole batch, so concurrent terms
        // amortize contention on the shared oracle along with the
        // round-trip itself.
        self.serve(|inner| inner.query_batch(&forced_inputs))
    }

    fn queries(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }
}

/// Wraps an oracle so that selected input positions are forced to fixed
/// values before each query — the oracle view of one sub-space term in the
/// multi-key attack.
#[derive(Debug)]
pub struct RestrictedOracle<O> {
    inner: O,
    forced: Vec<(usize, bool)>,
}

impl<O: Oracle> RestrictedOracle<O> {
    /// Wraps `inner`, forcing `forced` positions (input index, value).
    ///
    /// # Panics
    ///
    /// Panics if a forced index is out of range for the inner oracle.
    pub fn new(inner: O, forced: Vec<(usize, bool)>) -> RestrictedOracle<O> {
        for &(i, _) in &forced {
            assert!(i < inner.num_inputs(), "forced index {i} out of range");
        }
        RestrictedOracle { inner, forced }
    }

    /// The wrapped oracle.
    pub fn into_inner(self) -> O {
        self.inner
    }
}

impl<O: Oracle> Oracle for RestrictedOracle<O> {
    fn num_inputs(&self) -> usize {
        self.inner.num_inputs()
    }

    fn num_outputs(&self) -> usize {
        self.inner.num_outputs()
    }

    fn query(&mut self, input: &[bool]) -> Vec<bool> {
        self.inner.query(&apply_forced(input, &self.forced))
    }

    fn query_batch(&mut self, inputs: &[Vec<bool>]) -> Vec<Vec<bool>> {
        let forced_inputs: Vec<Vec<bool>> =
            inputs.iter().map(|input| apply_forced(input, &self.forced)).collect();
        self.inner.query_batch(&forced_inputs)
    }

    fn queries(&self) -> u64 {
        self.inner.queries()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polykey_netlist::GateKind;

    fn xor2() -> Netlist {
        let mut nl = Netlist::new("xor2");
        let a = nl.add_input("a").unwrap();
        let b = nl.add_input("b").unwrap();
        let y = nl.add_gate("y", GateKind::Xor, &[a, b]).unwrap();
        nl.mark_output(y).unwrap();
        nl
    }

    #[test]
    fn sim_oracle_answers_and_counts() {
        let nl = xor2();
        let mut oracle = SimOracle::new(&nl).unwrap();
        assert_eq!(oracle.num_inputs(), 2);
        assert_eq!(oracle.num_outputs(), 1);
        assert_eq!(oracle.query(&[true, false]), vec![true]);
        assert_eq!(oracle.query(&[true, true]), vec![false]);
        assert_eq!(oracle.queries(), 2);
    }

    #[test]
    fn keyed_netlist_rejected_as_oracle() {
        let mut nl = xor2();
        let k = nl.add_key_input("k").unwrap();
        let _ = k;
        assert!(SimOracle::new(&nl).is_err());
    }

    #[test]
    fn restricted_oracle_forces_bits() {
        let nl = xor2();
        let oracle = SimOracle::new(&nl).unwrap();
        let mut restricted = RestrictedOracle::new(oracle, vec![(0, true)]);
        // Input bit 0 is forced to 1 regardless of what we pass.
        assert_eq!(restricted.query(&[false, false]), vec![true]);
        assert_eq!(restricted.query(&[true, false]), vec![true]);
        assert_eq!(restricted.query(&[false, true]), vec![false]);
        assert_eq!(restricted.queries(), 3);
    }

    #[test]
    fn batch_agrees_with_sequential_queries() {
        let nl = xor2();
        let patterns: Vec<Vec<bool>> =
            (0..4u64).map(|v| polykey_netlist::bits_of(v, 2)).collect();
        let mut sequential = SimOracle::new(&nl).unwrap();
        let expected: Vec<Vec<bool>> = patterns.iter().map(|p| sequential.query(p)).collect();
        let mut batched = SimOracle::new(&nl).unwrap();
        assert_eq!(batched.query_batch(&patterns), expected);
        assert_eq!(batched.queries(), 4);
    }

    #[test]
    fn batch_larger_than_one_packed_word() {
        // 5 inputs, 96 patterns: the packed implementation must chunk.
        let mut nl = Netlist::new("parity5");
        let inputs: Vec<_> = (0..5).map(|i| nl.add_input(format!("x{i}")).unwrap()).collect();
        let y = nl.add_gate("y", GateKind::Xor, &inputs).unwrap();
        nl.mark_output(y).unwrap();
        let patterns: Vec<Vec<bool>> =
            (0..96u64).map(|v| polykey_netlist::bits_of(v % 32, 5)).collect();
        let mut oracle = SimOracle::new(&nl).unwrap();
        let responses = oracle.query_batch(&patterns);
        assert_eq!(responses.len(), 96);
        for (pattern, response) in patterns.iter().zip(&responses) {
            let parity = pattern.iter().filter(|&&b| b).count() % 2 == 1;
            assert_eq!(response, &vec![parity]);
        }
        assert_eq!(oracle.queries(), 96);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let nl = xor2();
        let mut oracle = SimOracle::new(&nl).unwrap();
        assert!(oracle.query_batch(&[]).is_empty());
        assert_eq!(oracle.queries(), 0);
    }

    #[test]
    fn restricted_oracle_forces_bits_in_batches() {
        let nl = xor2();
        let oracle = SimOracle::new(&nl).unwrap();
        let mut restricted = RestrictedOracle::new(oracle, vec![(0, true)]);
        let responses =
            restricted.query_batch(&[vec![false, false], vec![true, false], vec![false, true]]);
        assert_eq!(responses, vec![vec![true], vec![true], vec![false]]);
        assert_eq!(restricted.queries(), 3);
    }

    #[test]
    fn shared_oracle_recovers_from_a_poisoned_lock() {
        // A panic while holding the shared-oracle lock (a crashing oracle
        // mid-query) must not cascade: sibling terms recover the mutex and
        // keep querying.
        let nl = xor2();
        let mut oracle = SimOracle::new(&nl).unwrap();
        let shared = SharedOracle::new(&mut oracle);
        let poisoned = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = shared.lock();
            panic!("oracle crashed mid-query");
        }));
        assert!(poisoned.is_err());
        let served = AtomicU64::new(0);
        let mut term = TermOracle::new(&shared, vec![(0, true)], &served);
        assert_eq!(term.query(&[false, false]), vec![true]);
        assert_eq!(term.query_batch(&[vec![false, true]]), vec![vec![false]]);
        assert_eq!(term.queries(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn restricted_oracle_checks_indices() {
        let nl = xor2();
        let oracle = SimOracle::new(&nl).unwrap();
        let _ = RestrictedOracle::new(oracle, vec![(5, true)]);
    }
}
