//! Key verification: formal and simulation-based checks of recovered keys.

use polykey_encode::{check_equivalence, EquivResult};
use polykey_locking::Key;
use polykey_netlist::{cofactor, pin_keys, simplify, Netlist, Simulator};

use crate::error::AttackError;

/// Formally verifies that `key` unlocks `locked` — i.e. the locked netlist
/// with the key pinned is equivalent to `original` — via SAT.
///
/// # Errors
///
/// Structural errors (interface mismatch, wrong key width, cycles).
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use polykey_attack::verify_key;
/// use polykey_locking::lock_rll;
/// use polykey_netlist::{GateKind, Netlist};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut nl = Netlist::new("t");
/// let a = nl.add_input("a")?;
/// let b = nl.add_input("b")?;
/// let y = nl.add_gate("y", GateKind::Or, &[a, b])?;
/// nl.mark_output(y)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// let locked = lock_rll(&nl, 1, &mut rng)?;
/// assert!(verify_key(&nl, &locked.netlist, &locked.key)?);
/// # Ok(())
/// # }
/// ```
pub fn verify_key(
    original: &Netlist,
    locked: &Netlist,
    key: &Key,
) -> Result<bool, AttackError> {
    let pinned = pin_keys(locked, key.bits())?;
    let (pinned, _) = simplify(&pinned)?;
    Ok(check_equivalence(original, &pinned)? == EquivResult::Equivalent)
}

/// Formally verifies that `key` unlocks `locked` on the sub-space where the
/// given input positions take the given values (the guarantee a multi-key
/// sub-attack provides).
///
/// # Errors
///
/// Structural errors (bad indices, wrong key width, cycles).
pub fn verify_key_on_subspace(
    original: &Netlist,
    locked: &Netlist,
    key: &Key,
    forced: &[(usize, bool)],
) -> Result<bool, AttackError> {
    let orig_pins: Vec<_> = forced.iter().map(|&(i, v)| (original.inputs()[i], v)).collect();
    let locked_pins: Vec<_> = forced.iter().map(|&(i, v)| (locked.inputs()[i], v)).collect();
    let orig_cof = cofactor(original, &orig_pins)?;
    let locked_cof = cofactor(locked, &locked_pins)?;
    let pinned = pin_keys(&locked_cof, key.bits())?;
    let (pinned, _) = simplify(&pinned)?;
    let (orig_cof, _) = simplify(&orig_cof)?;
    Ok(check_equivalence(&orig_cof, &pinned)? == EquivResult::Equivalent)
}

/// Fast probabilistic check: simulates `patterns` random input vectors and
/// compares locked-under-key against the original. Returns the number of
/// mismatching patterns (0 means "no corruption found", not proof).
///
/// # Errors
///
/// Structural errors (wrong key width, cycles).
pub fn random_sim_mismatches(
    original: &Netlist,
    locked: &Netlist,
    key: &Key,
    patterns: usize,
    seed: u64,
) -> Result<usize, AttackError> {
    let mut orig = Simulator::new(original)?;
    let mut lsim = Simulator::new(locked)?;
    let ni = original.inputs().len();
    let key_bits = key.bits();
    let mut state = seed | 1;
    let mut next_bit = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state >> 63 == 1
    };
    let mut mismatches = 0;
    for _ in 0..patterns {
        let bits: Vec<bool> = (0..ni).map(|_| next_bit()).collect();
        if orig.eval(&bits, &[]) != lsim.eval(&bits, key_bits) {
            mismatches += 1;
        }
    }
    Ok(mismatches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polykey_locking::{LockScheme, Sarlock};
    use polykey_netlist::GateKind;

    fn xor3() -> Netlist {
        let mut nl = Netlist::new("x3");
        let a = nl.add_input("a").unwrap();
        let b = nl.add_input("b").unwrap();
        let c = nl.add_input("c").unwrap();
        let y = nl.add_gate("y", GateKind::Xor, &[a, b, c]).unwrap();
        nl.mark_output(y).unwrap();
        nl
    }

    #[test]
    fn correct_key_verifies_wrong_key_fails() {
        let nl = xor3();
        let correct = Key::from_u64(0b010, 3);
        let locked = Sarlock::new(3).lock(&nl, &correct).unwrap();
        assert!(verify_key(&nl, &locked.netlist, &correct).unwrap());
        let wrong = Key::from_u64(0b011, 3);
        assert!(!verify_key(&nl, &locked.netlist, &wrong).unwrap());
    }

    #[test]
    fn subspace_verification_accepts_partial_keys() {
        // SARLock: key k ≠ k* errs only at input pattern == k. A key whose
        // comparator bit disagrees with a pinned input bit can never match
        // inside that sub-space, so it is sub-space correct.
        let nl = xor3();
        let correct = Key::from_u64(0b000, 3);
        let locked = Sarlock::new(3).lock(&nl, &correct).unwrap();
        // Sub-space x0 = 0; key with bit0 = 1 (globally wrong).
        let sub_key = Key::from_u64(0b001, 3);
        assert!(!verify_key(&nl, &locked.netlist, &sub_key).unwrap(), "globally wrong");
        assert!(
            verify_key_on_subspace(&nl, &locked.netlist, &sub_key, &[(0, false)]).unwrap(),
            "but correct on the x0=0 half-space"
        );
        assert!(
            !verify_key_on_subspace(&nl, &locked.netlist, &sub_key, &[(0, true)]).unwrap(),
            "and wrong on the half-space containing its error"
        );
    }

    #[test]
    fn random_sim_finds_corruption() {
        let nl = xor3();
        let correct = Key::from_u64(0b110, 3);
        let locked = Sarlock::new(3).lock(&nl, &correct).unwrap();
        assert_eq!(random_sim_mismatches(&nl, &locked.netlist, &correct, 200, 1).unwrap(), 0);
        // A wrong SARLock key errs on exactly 1 of 8 patterns; 200 random
        // patterns hit it with overwhelming probability.
        let wrong = Key::from_u64(0b111, 3);
        assert!(random_sim_mismatches(&nl, &locked.netlist, &wrong, 200, 1).unwrap() > 0);
    }
}
