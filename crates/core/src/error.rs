//! The attack crate's error type.

use polykey_encode::{EncodeError, EquivError, MiterError};
use polykey_netlist::NetlistError;

/// Errors raised by attack drivers.
#[derive(Debug)]
pub enum AttackError {
    /// Locked netlist and oracle disagree on port counts.
    OracleMismatch {
        /// "inputs" or "outputs".
        what: &'static str,
        /// Ports on the locked netlist.
        netlist: usize,
        /// Ports on the oracle.
        oracle: usize,
    },
    /// The requested splitting effort exceeds the available input ports.
    SplitTooWide {
        /// Requested `N`.
        requested: usize,
        /// Primary inputs available.
        available: usize,
    },
    /// The requested splitting depth exceeds what the engine's 64-bit
    /// sub-space patterns can represent. `1u64 << n` would silently wrap
    /// (release) or panic (debug) past this point, so the engine rejects
    /// the configuration up front — see `polykey_attack::MAX_SPLIT_WIDTH`.
    SplitTooDeep {
        /// Requested depth (splitting effort or resplit cap).
        requested: usize,
        /// The deepest representable split width.
        max: usize,
    },
    /// Recombination received an inconsistent key set.
    BadKeySet {
        /// What was wrong.
        message: String,
    },
    /// An [`crate::AttackSession`] was misconfigured (e.g. no oracle).
    SessionConfig {
        /// What was wrong.
        message: String,
    },
    /// A structural netlist failure.
    Netlist(NetlistError),
    /// A CNF encoding failure.
    Encode(EncodeError),
    /// A miter-construction failure.
    Miter(MiterError),
    /// An equivalence-checking failure.
    Equiv(EquivError),
}

impl std::fmt::Display for AttackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttackError::OracleMismatch { what, netlist, oracle } => {
                write!(f, "oracle mismatch: netlist has {netlist} {what}, oracle has {oracle}")
            }
            AttackError::SplitTooWide { requested, available } => {
                write!(f, "splitting effort {requested} exceeds {available} primary inputs")
            }
            AttackError::SplitTooDeep { requested, max } => {
                write!(
                    f,
                    "splitting depth {requested} exceeds the engine's maximum of {max} \
                     (sub-space patterns are 64-bit prefix paths)"
                )
            }
            AttackError::BadKeySet { message } => write!(f, "bad key set: {message}"),
            AttackError::SessionConfig { message } => {
                write!(f, "attack session misconfigured: {message}")
            }
            AttackError::Netlist(e) => write!(f, "netlist error: {e}"),
            AttackError::Encode(e) => write!(f, "encode error: {e}"),
            AttackError::Miter(e) => write!(f, "miter error: {e}"),
            AttackError::Equiv(e) => write!(f, "equivalence error: {e}"),
        }
    }
}

impl std::error::Error for AttackError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AttackError::Netlist(e) => Some(e),
            AttackError::Encode(e) => Some(e),
            AttackError::Miter(e) => Some(e),
            AttackError::Equiv(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for AttackError {
    fn from(e: NetlistError) -> AttackError {
        AttackError::Netlist(e)
    }
}

impl From<EncodeError> for AttackError {
    fn from(e: EncodeError) -> AttackError {
        AttackError::Encode(e)
    }
}

impl From<MiterError> for AttackError {
    fn from(e: MiterError) -> AttackError {
        AttackError::Miter(e)
    }
}

impl From<EquivError> for AttackError {
    fn from(e: EquivError) -> AttackError {
        AttackError::Equiv(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = AttackError::OracleMismatch { what: "inputs", netlist: 5, oracle: 4 };
        assert!(e.to_string().contains("5 inputs"));
        let e = AttackError::SplitTooWide { requested: 10, available: 3 };
        assert!(e.to_string().contains("10"));
        let e = AttackError::SplitTooDeep { requested: 64, max: 63 };
        assert!(e.to_string().contains("64") && e.to_string().contains("63"));
        let e: AttackError = NetlistError::UnknownSignal("x".into()).into();
        assert!(e.to_string().contains("x"));
    }
}
