//! Integration tests for the attack crate: cross-scheme attacks through
//! the session surface, engine mode equivalence, and multi-key invariants
//! on generated circuits.

use polykey_attack::{
    appsat_attack, select_split_inputs, verify_key, verify_key_on_subspace, AppSatConfig,
    AttackReport, AttackSession, AttackStatus, Oracle, SimOracle, SplitStrategy,
};
use polykey_circuits::{arith, generate_random, RandomCircuitSpec};
use polykey_encode::{check_equivalence, EquivResult};
use polykey_locking::{AntiSat, Key, LockScheme, LutLock, Rll, Sarlock};
use polykey_netlist::Netlist;
use rand::SeedableRng;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

/// Runs a session with the given splitting effort against `locked`.
fn attack(original: &Netlist, locked: &Netlist, split_effort: usize) -> AttackReport {
    let mut oracle = SimOracle::new(original).expect("keyless oracle");
    let mut session = AttackSession::builder()
        .oracle(&mut oracle)
        .split_effort(split_effort)
        .build()
        .expect("an oracle was provided");
    let report = session.run(locked).expect("attack runs");
    drop(session);
    report
}

/// The textbook and optimized engines must agree on everything but cost.
#[test]
fn textbook_and_folded_engines_agree() {
    let original = generate_random(&RandomCircuitSpec::new("eng", 7, 3, 50, 11));
    let locked = Sarlock::new(5).lock(&original, &Key::from_u64(21, 5)).expect("lockable");

    let mut oracle = SimOracle::new(&original).expect("oracle");
    let folded = AttackSession::builder()
        .oracle(&mut oracle)
        .build()
        .unwrap()
        .run(&locked.netlist)
        .expect("runs");

    let mut oracle = SimOracle::new(&original).expect("oracle");
    let textbook = AttackSession::builder()
        .oracle(&mut oracle)
        .textbook(true)
        .build()
        .unwrap()
        .run(&locked.netlist)
        .expect("runs");

    assert_eq!(folded.status(), AttackStatus::Success);
    assert_eq!(textbook.status(), AttackStatus::Success);
    // Identical solver-visible search problem ⇒ identical DIP sequence.
    assert_eq!(folded.stats().dips, textbook.stats().dips);
    let kf = folded.key().expect("key");
    let kt = textbook.key().expect("key");
    assert!(verify_key(&original, &locked.netlist, kf).expect("verify"));
    assert!(verify_key(&original, &locked.netlist, kt).expect("verify"));
}

/// Multi-key attack across all split strategies still yields sub-space
/// correct keys (the strategies differ only in efficiency).
#[test]
fn all_split_strategies_give_subspace_correct_keys() {
    let original = generate_random(&RandomCircuitSpec::new("strat", 8, 3, 70, 5));
    let locked = Sarlock::new(5).lock(&original, &Key::from_u64(9, 5)).expect("lockable");
    for strategy in [
        SplitStrategy::FanoutCone,
        SplitStrategy::FirstInputs,
        SplitStrategy::Random { seed: 3 },
    ] {
        let mut oracle = SimOracle::new(&original).expect("oracle");
        let report = AttackSession::builder()
            .oracle(&mut oracle)
            .split_effort(2)
            .strategy(strategy)
            .threads(1)
            .build()
            .unwrap()
            .run(&locked.netlist)
            .expect("attack runs");
        assert!(report.is_complete(), "{strategy:?}");
        let positions: Vec<usize> = report
            .split_inputs()
            .iter()
            .map(|id| locked.netlist.inputs().iter().position(|p| p == id).expect("input"))
            .collect();
        for sub in report.sub_keys() {
            let forced: Vec<(usize, bool)> = positions
                .iter()
                .enumerate()
                .map(|(j, &pos)| (pos, sub.pattern >> j & 1 == 1))
                .collect();
            assert!(
                verify_key_on_subspace(&original, &locked.netlist, &sub.key, &forced)
                    .expect("verify"),
                "{strategy:?} pattern {:b}",
                sub.pattern
            );
        }
        // Recombination is equivalent regardless of strategy.
        let rec = report.recombine(&locked.netlist).expect("recombine");
        assert_eq!(check_equivalence(&original, &rec).expect("equiv"), EquivResult::Equivalent);
    }
}

/// N = 4 with 16 parallel terms on a LUT-locked arithmetic circuit: the
/// full Table-2 pipeline in miniature.
#[test]
fn table2_pipeline_miniature() {
    let original = arith::multiplier(6);
    let locked =
        LutLock::small().with_seed(8).lock_random(&original, &mut rng(8)).expect("lockable");

    let mut oracle = SimOracle::new(&original).expect("oracle");
    let report = AttackSession::builder()
        .oracle(&mut oracle)
        .split_effort(4)
        .record_dips(false)
        .build()
        .unwrap()
        .run(&locked.netlist)
        .expect("runs");
    assert!(report.is_complete());
    assert_eq!(report.stats().subtask_wall_times.len(), 16);
    let rec = report.recombine(&locked.netlist).expect("recombine");
    assert_eq!(check_equivalence(&original, &rec).expect("equiv"), EquivResult::Equivalent);
}

/// The multi-key attack on a keyless circuit degenerates gracefully.
#[test]
fn multikey_on_keyless_circuit() {
    let original = arith::parity(5);
    let report = attack(&original, &original, 1);
    assert!(report.is_complete());
    for sub in report.sub_keys() {
        assert_eq!(sub.key.len(), 0);
    }
}

/// Split selection is deterministic and respects N across strategies.
#[test]
fn split_selection_invariants() {
    let original = generate_random(&RandomCircuitSpec::new("sel", 12, 4, 100, 77));
    let locked =
        Rll::new(8).with_seed(2).lock_random(&original, &mut rng(2)).expect("lockable");
    for n in 0..=4 {
        for strategy in [
            SplitStrategy::FanoutCone,
            SplitStrategy::FirstInputs,
            SplitStrategy::Random { seed: 1 },
        ] {
            let a = select_split_inputs(&locked.netlist, n, strategy).expect("valid");
            let b = select_split_inputs(&locked.netlist, n, strategy).expect("valid");
            assert_eq!(a, b, "deterministic for {strategy:?}");
            assert_eq!(a.len(), n);
            let mut dedup = a.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), n, "distinct ports for {strategy:?}");
            for id in &a {
                assert!(locked.netlist.inputs().contains(id));
            }
        }
    }
}

/// AppSAT on Anti-SAT: non-unique correct keys, approximate termination
/// still produces a functionally correct key (Anti-SAT's flip rate is low
/// but its key space collapses fast under DIPs).
#[test]
fn appsat_on_antisat() {
    let original = arith::ripple_adder(3);
    let locked = AntiSat::new(3).lock_random(&original, &mut rng(6)).expect("lockable");
    let mut oracle = SimOracle::new(&original).expect("oracle");
    let config = AppSatConfig { queries_per_round: 128, ..AppSatConfig::default() };
    let outcome = appsat_attack(&locked.netlist, &mut oracle, &config).expect("runs");
    let key = outcome.key.expect("key");
    // Error must be tiny; for Anti-SAT usually exactly zero.
    assert!(outcome.estimated_error <= 0.05, "err {}", outcome.estimated_error);
    let mismatches =
        polykey_attack::random_sim_mismatches(&original, &locked.netlist, &key, 512, 9)
            .expect("sim");
    assert!(mismatches <= 25, "{mismatches}/512 mismatches");
}

/// Oracle query accounting flows through the multi-key reports, and the
/// shared session oracle sees exactly the sum of the per-term counts.
#[test]
fn multikey_oracle_accounting() {
    let original: Netlist = generate_random(&RandomCircuitSpec::new("acc", 6, 2, 40, 31));
    let locked = Sarlock::new(4).lock(&original, &Key::from_u64(6, 4)).expect("lockable");
    let mut oracle = SimOracle::new(&original).expect("oracle");
    let report = AttackSession::builder()
        .oracle(&mut oracle)
        .split_effort(2)
        .threads(1)
        .build()
        .unwrap()
        .run(&locked.netlist)
        .expect("runs");
    let outcome = report.as_multi_key().expect("N > 0");
    for r in &outcome.reports {
        assert_eq!(r.oracle_queries, r.dips, "term {:b}", r.pattern);
    }
    // Total DIPs across terms ≈ sum of sub-space eliminations; at minimum
    // every term requires at least one solver round.
    assert!(report.stats().dips >= 1);
    assert_eq!(oracle.queries(), report.stats().oracle_queries);
}

/// The deprecated free functions must keep producing the same results as
/// the session surface for one release.
#[allow(deprecated)]
#[test]
fn legacy_shims_agree_with_session() {
    use polykey_attack::{multi_key_attack, sat_attack, MultiKeyConfig, SatAttackConfig};

    let original = generate_random(&RandomCircuitSpec::new("shim", 6, 2, 40, 13));
    let locked = Sarlock::new(4).lock(&original, &Key::from_u64(5, 4)).expect("lockable");

    let mut oracle = SimOracle::new(&original).expect("oracle");
    let legacy =
        sat_attack(&locked.netlist, &mut oracle, &SatAttackConfig::new()).expect("runs");
    let session = attack(&original, &locked.netlist, 0);
    assert_eq!(legacy.status, session.status());
    assert_eq!(legacy.stats.dips, session.stats().dips);

    let mut config = MultiKeyConfig::with_split_effort(2);
    config.parallel = false;
    let legacy = multi_key_attack(&locked.netlist, &original, &config).expect("runs");
    let session = attack(&original, &locked.netlist, 2);
    assert!(legacy.is_complete() && session.is_complete());
    let legacy_dips: Vec<u64> = legacy.reports.iter().map(|r| r.dips).collect();
    let session_dips: Vec<u64> =
        session.as_multi_key().expect("multi").reports.iter().map(|r| r.dips).collect();
    assert_eq!(legacy_dips, session_dips);
}
