//! Integration tests for the attack crate: cross-scheme attacks through
//! the session surface, engine mode equivalence, and multi-key invariants
//! on generated circuits.

use polykey_attack::{
    appsat_attack, select_split_inputs, verify_key, verify_key_on_subspace, AppSatConfig,
    AttackError, AttackReport, AttackSession, AttackStatus, Oracle, SimOracle, SplitStrategy,
    MAX_SPLIT_WIDTH,
};
use polykey_circuits::{arith, generate_random, Iscas85, RandomCircuitSpec};
use polykey_encode::{check_equivalence, EquivResult};
use polykey_locking::{AntiSat, Key, LockScheme, LutLock, Rll, Sarlock};
use polykey_netlist::Netlist;
use rand::SeedableRng;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

/// Runs a session with the given splitting effort against `locked`.
fn attack(original: &Netlist, locked: &Netlist, split_effort: usize) -> AttackReport {
    let mut oracle = SimOracle::new(original).expect("keyless oracle");
    let mut session = AttackSession::builder()
        .oracle(&mut oracle)
        .split_effort(split_effort)
        .build()
        .expect("an oracle was provided");
    let report = session.run(locked).expect("attack runs");
    drop(session);
    report
}

/// The textbook and optimized engines must agree on everything but cost.
#[test]
fn textbook_and_folded_engines_agree() {
    let original = generate_random(&RandomCircuitSpec::new("eng", 7, 3, 50, 11));
    let locked = Sarlock::new(5).lock(&original, &Key::from_u64(21, 5)).expect("lockable");

    let mut oracle = SimOracle::new(&original).expect("oracle");
    let folded = AttackSession::builder()
        .oracle(&mut oracle)
        .build()
        .unwrap()
        .run(&locked.netlist)
        .expect("runs");

    let mut oracle = SimOracle::new(&original).expect("oracle");
    let textbook = AttackSession::builder()
        .oracle(&mut oracle)
        .textbook(true)
        .build()
        .unwrap()
        .run(&locked.netlist)
        .expect("runs");

    assert_eq!(folded.status(), AttackStatus::Success);
    assert_eq!(textbook.status(), AttackStatus::Success);
    // Identical solver-visible search problem ⇒ identical DIP sequence.
    assert_eq!(folded.stats().dips, textbook.stats().dips);
    let kf = folded.key().expect("key");
    let kt = textbook.key().expect("key");
    assert!(verify_key(&original, &locked.netlist, kf).expect("verify"));
    assert!(verify_key(&original, &locked.netlist, kt).expect("verify"));
}

/// Multi-key attack across all split strategies still yields sub-space
/// correct keys (the strategies differ only in efficiency).
#[test]
fn all_split_strategies_give_subspace_correct_keys() {
    let original = generate_random(&RandomCircuitSpec::new("strat", 8, 3, 70, 5));
    let locked = Sarlock::new(5).lock(&original, &Key::from_u64(9, 5)).expect("lockable");
    for strategy in [
        SplitStrategy::FanoutCone,
        SplitStrategy::FirstInputs,
        SplitStrategy::Random { seed: 3 },
    ] {
        let mut oracle = SimOracle::new(&original).expect("oracle");
        let report = AttackSession::builder()
            .oracle(&mut oracle)
            .split_effort(2)
            .strategy(strategy)
            .threads(1)
            .build()
            .unwrap()
            .run(&locked.netlist)
            .expect("attack runs");
        assert!(report.is_complete(), "{strategy:?}");
        let positions: Vec<usize> = report
            .split_inputs()
            .iter()
            .map(|id| locked.netlist.inputs().iter().position(|p| p == id).expect("input"))
            .collect();
        for sub in report.sub_keys() {
            let forced: Vec<(usize, bool)> = positions
                .iter()
                .enumerate()
                .map(|(j, &pos)| (pos, sub.pattern >> j & 1 == 1))
                .collect();
            assert!(
                verify_key_on_subspace(&original, &locked.netlist, &sub.key, &forced)
                    .expect("verify"),
                "{strategy:?} pattern {:b}",
                sub.pattern
            );
        }
        // Recombination is equivalent regardless of strategy.
        let rec = report.recombine(&locked.netlist).expect("recombine");
        assert_eq!(check_equivalence(&original, &rec).expect("equiv"), EquivResult::Equivalent);
    }
}

/// N = 4 with 16 parallel terms on a LUT-locked arithmetic circuit: the
/// full Table-2 pipeline in miniature.
#[test]
fn table2_pipeline_miniature() {
    let original = arith::multiplier(6);
    let locked =
        LutLock::small().with_seed(8).lock_random(&original, &mut rng(8)).expect("lockable");

    let mut oracle = SimOracle::new(&original).expect("oracle");
    let report = AttackSession::builder()
        .oracle(&mut oracle)
        .split_effort(4)
        .record_dips(false)
        .build()
        .unwrap()
        .run(&locked.netlist)
        .expect("runs");
    assert!(report.is_complete());
    assert_eq!(report.stats().subtask_wall_times.len(), 16);
    let rec = report.recombine(&locked.netlist).expect("recombine");
    assert_eq!(check_equivalence(&original, &rec).expect("equiv"), EquivResult::Equivalent);
}

/// The multi-key attack on a keyless circuit degenerates gracefully.
#[test]
fn multikey_on_keyless_circuit() {
    let original = arith::parity(5);
    let report = attack(&original, &original, 1);
    assert!(report.is_complete());
    for sub in report.sub_keys() {
        assert_eq!(sub.key.len(), 0);
    }
}

/// Split selection is deterministic and respects N across strategies.
#[test]
fn split_selection_invariants() {
    let original = generate_random(&RandomCircuitSpec::new("sel", 12, 4, 100, 77));
    let locked =
        Rll::new(8).with_seed(2).lock_random(&original, &mut rng(2)).expect("lockable");
    for n in 0..=4 {
        for strategy in [
            SplitStrategy::FanoutCone,
            SplitStrategy::FirstInputs,
            SplitStrategy::Random { seed: 1 },
        ] {
            let a = select_split_inputs(&locked.netlist, n, strategy).expect("valid");
            let b = select_split_inputs(&locked.netlist, n, strategy).expect("valid");
            assert_eq!(a, b, "deterministic for {strategy:?}");
            assert_eq!(a.len(), n);
            let mut dedup = a.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), n, "distinct ports for {strategy:?}");
            for id in &a {
                assert!(locked.netlist.inputs().contains(id));
            }
        }
    }
}

/// AppSAT on Anti-SAT: non-unique correct keys, approximate termination
/// still produces a functionally correct key (Anti-SAT's flip rate is low
/// but its key space collapses fast under DIPs).
#[test]
fn appsat_on_antisat() {
    let original = arith::ripple_adder(3);
    let locked = AntiSat::new(3).lock_random(&original, &mut rng(6)).expect("lockable");
    let mut oracle = SimOracle::new(&original).expect("oracle");
    let config = AppSatConfig { queries_per_round: 128, ..AppSatConfig::default() };
    let outcome = appsat_attack(&locked.netlist, &mut oracle, &config).expect("runs");
    let key = outcome.key.expect("key");
    // Error must be tiny; for Anti-SAT usually exactly zero.
    assert!(outcome.estimated_error <= 0.05, "err {}", outcome.estimated_error);
    let mismatches =
        polykey_attack::random_sim_mismatches(&original, &locked.netlist, &key, 512, 9)
            .expect("sim");
    assert!(mismatches <= 25, "{mismatches}/512 mismatches");
}

/// Oracle query accounting flows through the multi-key reports, and the
/// shared session oracle sees exactly the sum of the per-term counts.
#[test]
fn multikey_oracle_accounting() {
    let original: Netlist = generate_random(&RandomCircuitSpec::new("acc", 6, 2, 40, 31));
    let locked = Sarlock::new(4).lock(&original, &Key::from_u64(6, 4)).expect("lockable");
    let mut oracle = SimOracle::new(&original).expect("oracle");
    let report = AttackSession::builder()
        .oracle(&mut oracle)
        .split_effort(2)
        .threads(1)
        .build()
        .unwrap()
        .run(&locked.netlist)
        .expect("runs");
    let outcome = report.as_multi_key().expect("N > 0");
    for r in &outcome.reports {
        assert_eq!(r.oracle_queries, r.dips, "term {:b}", r.pattern);
    }
    // Total DIPs across terms ≈ sum of sub-space eliminations; at minimum
    // every term requires at least one solver round.
    assert!(report.stats().dips >= 1);
    assert_eq!(oracle.queries(), report.stats().oracle_queries);
}

/// The acceptance pipeline for adaptive splitting: on a SARLock-locked
/// ISCAS cell, a per-term DIP budget must (a) recombine to the same formal
/// equivalence a static `N` achieves, (b) subdivide at least one hard term
/// deeper than the root `N`, and (c) keep every leaf within budget.
#[test]
fn adaptive_budget_matches_static_equivalence_on_sarlock_iscas() {
    let original = Iscas85::C432.build();
    let locked =
        Sarlock::new(6).lock(&original, &Key::from_u64(0b101101, 6)).expect("lockable");

    // Static N = 2 reference: 4 terms, each eliminating ~2^4 wrong keys.
    let mut oracle = SimOracle::new(&original).expect("oracle");
    let static_report = AttackSession::builder()
        .oracle(&mut oracle)
        .split_effort(2)
        .record_dips(false)
        .build()
        .unwrap()
        .run(&locked.netlist)
        .expect("runs");
    assert!(static_report.is_complete());
    let rec = static_report.recombine(&locked.netlist).expect("recombine");
    assert_eq!(check_equivalence(&original, &rec).expect("equiv"), EquivResult::Equivalent);

    // Adaptive: root N = 1 with a DIP budget of 8. The comparator-pinned
    // term needs ~2^5 DIPs at depth 1, so it must subdivide past the root.
    let mut oracle = SimOracle::new(&original).expect("oracle");
    let adaptive_report = AttackSession::builder()
        .oracle(&mut oracle)
        .split_effort(1)
        .term_dip_budget(8)
        .record_dips(false)
        .build()
        .unwrap()
        .run(&locked.netlist)
        .expect("runs");
    assert!(adaptive_report.is_complete());
    let outcome = adaptive_report.as_multi_key().expect("N > 0");
    assert!(
        outcome.max_depth() > 1,
        "a hard term must have split deeper than the root (depths: {:?})",
        outcome.reports.iter().map(|r| r.width).collect::<Vec<_>>()
    );
    assert!(!outcome.resplit_reports.is_empty());
    assert!(
        outcome.reports.iter().all(|r| r.dips <= 8),
        "every leaf converged within its budget"
    );
    assert_eq!(oracle.queries(), adaptive_report.stats().oracle_queries);
    let rec = adaptive_report.recombine(&locked.netlist).expect("recombine");
    assert_eq!(check_equivalence(&original, &rec).expect("equiv"), EquivResult::Equivalent);
}

/// An oracle whose k-th query panics — the "hardware fault" rig for the
/// poisoned-mutex regression tests.
struct PanickingOracle<'a> {
    inner: SimOracle<'a>,
    /// Panic once, on exactly this (1-based) query…
    panic_at: Option<u64>,
    /// …or on this and every later query.
    poison_from: Option<u64>,
    seen: u64,
}

impl<'a> PanickingOracle<'a> {
    fn once_at(inner: SimOracle<'a>, panic_at: u64) -> Self {
        PanickingOracle { inner, panic_at: Some(panic_at), poison_from: None, seen: 0 }
    }

    fn from_query(inner: SimOracle<'a>, poison_from: u64) -> Self {
        PanickingOracle { inner, panic_at: None, poison_from: Some(poison_from), seen: 0 }
    }
}

impl Oracle for PanickingOracle<'_> {
    fn num_inputs(&self) -> usize {
        self.inner.num_inputs()
    }

    fn num_outputs(&self) -> usize {
        self.inner.num_outputs()
    }

    fn query(&mut self, input: &[bool]) -> Vec<bool> {
        self.seen += 1;
        if self.panic_at == Some(self.seen) || self.poison_from.is_some_and(|k| self.seen >= k)
        {
            panic!("oracle hardware fault at query {}", self.seen);
        }
        self.inner.query(input)
    }

    fn queries(&self) -> u64 {
        self.inner.queries()
    }
}

/// One term's oracle panicking mid-run (poisoning the shared mutex) fails
/// that term only: its siblings recover the lock, finish, and the session
/// returns a report instead of panicking.
#[test]
fn panicking_oracle_fails_one_term_not_the_session() {
    let original = arith::ripple_adder(2);
    let locked = Sarlock::new(4).lock(&original, &Key::from_u64(0b0110, 4)).expect("lockable");
    let inner = SimOracle::new(&original).expect("oracle");
    let mut oracle = PanickingOracle::once_at(inner, 3);
    let report = AttackSession::builder()
        .oracle(&mut oracle)
        .split_effort(1)
        .threads(1)
        // A batch width > 1 makes the panic land mid-batch, exercising the
        // partial-batch accounting path.
        .dip_batch(4)
        .build()
        .unwrap()
        .run(&locked.netlist)
        .expect("the session must survive the panic");
    let outcome = report.as_multi_key().expect("N > 0");
    assert!(!report.is_complete());
    assert_eq!(report.status(), AttackStatus::Failed);
    let statuses: Vec<AttackStatus> = outcome.reports.iter().map(|r| r.status).collect();
    assert_eq!(
        statuses.iter().filter(|&&s| s == AttackStatus::Failed).count(),
        1,
        "exactly one term failed: {statuses:?}"
    );
    assert_eq!(
        statuses.iter().filter(|&&s| s == AttackStatus::Success).count(),
        1,
        "the sibling term recovered the poisoned oracle lock: {statuses:?}"
    );
    // The surviving term's key is still sub-space correct.
    assert_eq!(report.sub_keys().len(), 1);
    // Served-query accounting survives the panic: the failed term reports
    // the queries the oracle actually answered before crashing (counted
    // outside the panic boundary), so the totals still reconcile.
    assert_eq!(oracle.queries(), report.stats().oracle_queries);
}

/// The same recovery under a parallel worker pool: every term's oracle
/// access panics, every term reports `Failed`, nothing propagates.
#[test]
fn fully_poisoned_oracle_fails_every_term_gracefully() {
    let original = arith::ripple_adder(2);
    let locked = Sarlock::new(4).lock(&original, &Key::from_u64(0b1001, 4)).expect("lockable");
    let inner = SimOracle::new(&original).expect("oracle");
    let mut oracle = PanickingOracle::from_query(inner, 1);
    let report = AttackSession::builder()
        .oracle(&mut oracle)
        .split_effort(2)
        .threads(4)
        .build()
        .unwrap()
        .run(&locked.netlist)
        .expect("the session must survive every panic");
    let outcome = report.as_multi_key().expect("N > 0");
    assert_eq!(outcome.reports.len(), 4);
    assert!(outcome.reports.iter().all(|r| r.status == AttackStatus::Failed));
    assert!(report.sub_keys().is_empty());
}

/// Regression for the split-width overflow: `1u64 << 64` used to wrap to
/// one silent term in release builds. A 64-input circuit at `N = 64` —
/// which the old `n > inputs` check accepted — must now error out.
#[test]
fn split_effort_64_is_rejected_at_the_session_surface() {
    let mut nl = polykey_netlist::Netlist::new("wide64");
    let inputs: Vec<_> = (0..64).map(|i| nl.add_input(format!("x{i}")).unwrap()).collect();
    let y = nl.add_gate("y", polykey_netlist::GateKind::Or, &inputs).unwrap();
    nl.mark_output(y).unwrap();
    let mut oracle = SimOracle::new(&nl).expect("oracle");
    let err = AttackSession::builder()
        .oracle(&mut oracle)
        .split_effort(64)
        .build()
        .unwrap()
        .run(&nl)
        .expect_err("must be rejected");
    assert!(
        matches!(err, AttackError::SplitTooDeep { requested: 64, max: MAX_SPLIT_WIDTH }),
        "{err}"
    );
}

/// The deprecated free functions must keep producing the same results as
/// the session surface for one release.
#[allow(deprecated)]
#[test]
fn legacy_shims_agree_with_session() {
    use polykey_attack::{multi_key_attack, sat_attack, MultiKeyConfig, SatAttackConfig};

    let original = generate_random(&RandomCircuitSpec::new("shim", 6, 2, 40, 13));
    let locked = Sarlock::new(4).lock(&original, &Key::from_u64(5, 4)).expect("lockable");

    let mut oracle = SimOracle::new(&original).expect("oracle");
    let legacy =
        sat_attack(&locked.netlist, &mut oracle, &SatAttackConfig::new()).expect("runs");
    let session = attack(&original, &locked.netlist, 0);
    assert_eq!(legacy.status, session.status());
    assert_eq!(legacy.stats.dips, session.stats().dips);

    let mut config = MultiKeyConfig::with_split_effort(2);
    config.parallel = false;
    let legacy = multi_key_attack(&locked.netlist, &original, &config).expect("runs");
    let session = attack(&original, &locked.netlist, 2);
    assert!(legacy.is_complete() && session.is_complete());
    let legacy_dips: Vec<u64> = legacy.reports.iter().map(|r| r.dips).collect();
    let session_dips: Vec<u64> =
        session.as_multi_key().expect("multi").reports.iter().map(|r| r.dips).collect();
    assert_eq!(legacy_dips, session_dips);
}
