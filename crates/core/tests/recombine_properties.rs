//! Property tests for prefix-tree recombination: random adaptive-depth
//! key sets must recombine to a netlist equivalent to the original, and
//! malformed sets — overlapping, non-covering, or duplicated paths — must
//! be rejected with `BadKeySet`.
//!
//! The rig is a 4-input circuit locked with a 2-bit SARLock whose
//! comparator sits on inputs 0 and 1. Splitting on exactly those ports
//! makes sub-space-correct-but-globally-wrong keys easy to construct: a
//! key whose comparator bit `j` disagrees with the pinned value of split
//! port `j` never matches any input of that sub-space, so it never flips
//! the output there.

use proptest::prelude::*;

use polykey_attack::{recombine_multikey, AttackError, SubKey};
use polykey_locking::{Key, LockScheme, Sarlock};
use polykey_netlist::{bits_of, GateKind, Netlist, NodeId, Simulator};

/// A tiny deterministic generator (SplitMix64) for deriving tree shapes
/// and key choices from one proptest-supplied seed.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn bit(&mut self) -> bool {
        self.next() & 1 == 1
    }
}

/// The victim: y = (x0 & x1) ^ (x2 | x3).
fn base4() -> Netlist {
    let mut nl = Netlist::new("base4");
    let xs: Vec<NodeId> = (0..4).map(|i| nl.add_input(format!("x{i}")).unwrap()).collect();
    let a = nl.add_gate("a", GateKind::And, &[xs[0], xs[1]]).unwrap();
    let o = nl.add_gate("o", GateKind::Or, &[xs[2], xs[3]]).unwrap();
    let y = nl.add_gate("y", GateKind::Xor, &[a, o]).unwrap();
    nl.mark_output(y).unwrap();
    nl
}

/// Locks `base4` with a 2-bit SARLock comparing inputs 0 and 1.
fn lock4(correct: &Key) -> Netlist {
    Sarlock::new(2)
        .with_compare_inputs(vec![0, 1])
        .lock(&base4(), correct)
        .expect("lockable")
        .netlist
}

/// Expands a random prefix tree of depth <= 2 into its leaf paths.
fn random_paths(mix: &mut Mix) -> Vec<(u64, u8)> {
    fn expand(mix: &mut Mix, pattern: u64, width: u8, leaves: &mut Vec<(u64, u8)>) {
        if width < 2 && mix.bit() {
            expand(mix, pattern, width + 1, leaves);
            expand(mix, pattern | 1 << width, width + 1, leaves);
        } else {
            leaves.push((pattern, width));
        }
    }
    let mut leaves = Vec::new();
    expand(mix, 0, 0, &mut leaves);
    leaves
}

/// Assigns each leaf a sub-space-correct key: the full-space leaf gets the
/// correct key; pinned leaves randomly get the correct key or a wrong key
/// whose comparator bit disagrees with one of the pinned values.
fn random_cover(mix: &mut Mix, correct: &Key) -> Vec<SubKey> {
    random_paths(mix)
        .into_iter()
        .map(|(pattern, width)| {
            let key = if width == 0 {
                correct.clone()
            } else {
                match mix.next() % 3 {
                    0 => correct.clone(),
                    1 => {
                        // Comparator bit 0 disagrees with pinned port 0.
                        let b0 = pattern & 1 == 1;
                        Key::new(vec![!b0, mix.bit()])
                    }
                    _ if width == 2 => {
                        // Comparator bit 1 disagrees with pinned port 1.
                        let b1 = pattern >> 1 & 1 == 1;
                        Key::new(vec![mix.bit(), !b1])
                    }
                    _ => correct.clone(),
                }
            };
            SubKey { pattern, width, key }
        })
        .collect()
}

fn split_ports(locked: &Netlist) -> Vec<NodeId> {
    locked.inputs()[..2].to_vec()
}

/// Exhaustive functional equivalence over all 16 input patterns.
fn equivalent(original: &Netlist, recombined: &Netlist) -> bool {
    let mut orig = Simulator::new(original).unwrap();
    let mut rec = Simulator::new(recombined).unwrap();
    (0..16u64).all(|v| {
        let bits = bits_of(v, 4);
        orig.eval(&bits, &[]) == rec.eval(&bits, &[])
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any random adaptive-depth exact cover of sub-space-correct keys
    /// recombines to the original function.
    #[test]
    fn random_adaptive_covers_recombine_to_equivalence(seed in any::<u64>()) {
        let mut mix = Mix(seed);
        let correct = Key::from_u64(mix.next() % 4, 2);
        let original = base4();
        let locked = lock4(&correct);
        let keys = random_cover(&mut mix, &correct);
        let recombined =
            recombine_multikey(&locked, &split_ports(&locked), &keys).expect("valid cover");
        prop_assert!(recombined.key_inputs().is_empty());
        prop_assert!(
            equivalent(&original, &recombined),
            "cover {:?} must restore the function",
            keys.iter().map(|k| (k.pattern, k.width)).collect::<Vec<_>>()
        );
    }

    /// Adding a path that is a strict prefix of an existing leaf (its
    /// parent) double-covers that subtree and must be rejected.
    #[test]
    fn overlapping_paths_rejected(seed in any::<u64>()) {
        let mut mix = Mix(seed);
        let correct = Key::from_u64(mix.next() % 4, 2);
        let locked = lock4(&correct);
        let mut keys = random_cover(&mut mix, &correct);
        let deep = keys.iter().find(|k| k.width > 0).cloned();
        prop_assume!(deep.is_some()); // a lone width-0 root has no parent
        let deep = deep.unwrap();
        keys.push(SubKey {
            pattern: deep.pattern & ((1 << (deep.width - 1)) - 1),
            width: deep.width - 1,
            key: correct.clone(),
        });
        let err = recombine_multikey(&locked, &split_ports(&locked), &keys).unwrap_err();
        prop_assert!(matches!(err, AttackError::BadKeySet { .. }), "{err}");
    }

    /// Removing any leaf leaves a gap (or an empty set) and must be
    /// rejected.
    #[test]
    fn non_covering_sets_rejected(seed in any::<u64>()) {
        let mut mix = Mix(seed);
        let correct = Key::from_u64(mix.next() % 4, 2);
        let locked = lock4(&correct);
        let mut keys = random_cover(&mut mix, &correct);
        let victim = (mix.next() as usize) % keys.len();
        keys.remove(victim);
        let err = recombine_multikey(&locked, &split_ports(&locked), &keys).unwrap_err();
        prop_assert!(matches!(err, AttackError::BadKeySet { .. }), "{err}");
    }

    /// Duplicating any path must be rejected.
    #[test]
    fn duplicate_paths_rejected(seed in any::<u64>()) {
        let mut mix = Mix(seed);
        let correct = Key::from_u64(mix.next() % 4, 2);
        let locked = lock4(&correct);
        let mut keys = random_cover(&mut mix, &correct);
        let victim = (mix.next() as usize) % keys.len();
        keys.push(keys[victim].clone());
        let err = recombine_multikey(&locked, &split_ports(&locked), &keys).unwrap_err();
        prop_assert!(matches!(err, AttackError::BadKeySet { .. }), "{err}");
    }
}
