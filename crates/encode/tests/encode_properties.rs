//! Property-based tests: Tseitin encodings must agree with circuit
//! simulation under every binding mode, and miters must be exactly as
//! satisfiable as the circuits differ.

use proptest::prelude::*;

use polykey_encode::{
    assert_value, build_miter, check_equivalence, encode, encode_key_variant, Binding,
    CnfValue, EquivResult, PortBinding,
};
use polykey_netlist::{bits_of, GateKind, Netlist, NodeId, Simulator};
use polykey_sat::{SolveResult, Solver};

/// Builds a random DAG netlist with `num_inputs` inputs and `num_keys` key
/// inputs from a byte recipe (deterministic, always valid).
fn build_circuit(
    num_inputs: usize,
    num_keys: usize,
    recipe: &[(u8, u16, u16, u16)],
) -> Netlist {
    let mut nl = Netlist::new("prop");
    let mut pool: Vec<NodeId> = Vec::new();
    for i in 0..num_inputs {
        pool.push(nl.add_input(format!("i{i}")).expect("fresh"));
    }
    for k in 0..num_keys {
        pool.push(nl.add_key_input(format!("k{k}")).expect("fresh"));
    }
    for (g, &(sel, f0, f1, f2)) in recipe.iter().enumerate() {
        let kind = match sel % 10 {
            0 => GateKind::And,
            1 => GateKind::Nand,
            2 => GateKind::Or,
            3 => GateKind::Nor,
            4 => GateKind::Xor,
            5 => GateKind::Xnor,
            6 => GateKind::Not,
            7 => GateKind::Buf,
            8 => GateKind::Mux,
            _ => GateKind::And,
        };
        let picks = [f0, f1, f2];
        let arity = kind.arity().unwrap_or(2 + (sel as usize >> 4) % 2);
        let fanins: Vec<NodeId> =
            (0..arity).map(|i| pool[picks[i.min(2)] as usize % pool.len()]).collect();
        pool.push(nl.add_gate(format!("g{g}"), kind, &fanins).expect("fresh"));
    }
    // Mark the last few nodes as outputs.
    let n = pool.len();
    for o in 0..2.min(n) {
        nl.mark_output(pool[n - 1 - o]).expect("distinct");
    }
    nl
}

fn arb_circuit(num_inputs: usize, num_keys: usize) -> impl Strategy<Value = Netlist> {
    proptest::collection::vec((any::<u8>(), any::<u16>(), any::<u16>(), any::<u16>()), 1..25)
        .prop_map(move |recipe| build_circuit(num_inputs, num_keys, &recipe))
}

/// Solves the encoded circuit with pinned ports and compares each output
/// against simulation.
fn check_encoding(nl: &Netlist, ibits: &[bool], kbits: &[bool]) {
    let mut sim = Simulator::new(nl).expect("acyclic");
    let expected = sim.eval(ibits, kbits);

    // Mode 1: fresh vars, values imposed with unit clauses.
    let mut solver = Solver::new();
    let enc = encode(&mut solver, nl, &Binding::fresh(nl)).expect("encode");
    for (v, &b) in enc.inputs.iter().zip(ibits) {
        assert_value(&mut solver, *v, b);
    }
    for (v, &b) in enc.keys.iter().zip(kbits) {
        assert_value(&mut solver, *v, b);
    }
    assert_eq!(solver.solve(&[]), SolveResult::Sat);
    for (o, v) in enc.outputs.iter().enumerate() {
        let got = match v {
            CnfValue::Lit(l) => solver.model_value(*l).expect("assigned"),
            CnfValue::Const(b) => *b,
        };
        assert_eq!(got, expected[o], "fresh-binding output {o}");
    }

    // Mode 2: everything pinned — outputs must be constants.
    let mut solver = Solver::new();
    let binding = Binding {
        inputs: ibits.iter().map(|&b| PortBinding::Pinned(b)).collect(),
        keys: kbits.iter().map(|&b| PortBinding::Pinned(b)).collect(),
    };
    let enc = encode(&mut solver, nl, &binding).expect("encode");
    for (o, v) in enc.outputs.iter().enumerate() {
        assert_eq!(v.constant(), Some(expected[o]), "pinned-binding output {o}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn encodings_match_simulation(nl in arb_circuit(4, 2), pattern in 0u64..64) {
        let ibits = bits_of(pattern & 0xF, 4);
        let kbits = bits_of(pattern >> 4, 2);
        check_encoding(&nl, &ibits, &kbits);
    }

    #[test]
    fn key_variant_encoding_matches_full_encoding(nl in arb_circuit(3, 3), pattern in 0u64..64) {
        // encode_key_variant with pinned keys must give the same outputs as
        // a full encoding with the same pinned keys, for all inputs.
        let kbits = bits_of(pattern >> 3, 3);
        let ibits = bits_of(pattern & 0x7, 3);
        let mut sim = Simulator::new(&nl).expect("acyclic");
        let expected = sim.eval(&ibits, &kbits);

        let mut solver = Solver::new();
        let base = encode(&mut solver, &nl, &Binding::fresh(&nl)).expect("encode");
        let variant = encode_key_variant(
            &mut solver,
            &nl,
            &base,
            &kbits.iter().map(|&b| PortBinding::Pinned(b)).collect::<Vec<_>>(),
        ).expect("variant");
        // Pin the (shared) inputs.
        for (v, &b) in base.inputs.iter().zip(&ibits) {
            assert_value(&mut solver, *v, b);
        }
        prop_assert_eq!(solver.solve(&[]), SolveResult::Sat);
        for (o, v) in variant.outputs.iter().enumerate() {
            let got = match v {
                CnfValue::Lit(l) => solver.model_value(*l).expect("assigned"),
                CnfValue::Const(b) => *b,
            };
            prop_assert_eq!(got, expected[o], "variant output {}", o);
        }
    }

    #[test]
    fn self_miter_is_unsat_for_keyless(nl in arb_circuit(5, 0)) {
        // A circuit mitered against itself can never differ.
        let mut solver = Solver::new();
        let miter = build_miter(&mut solver, &nl, &nl).expect("miter");
        prop_assert_eq!(solver.solve(&[miter.diff]), SolveResult::Unsat);
    }

    #[test]
    fn miter_agrees_with_exhaustive_difference(a in arb_circuit(4, 0), b in arb_circuit(4, 0)) {
        // For keyless same-interface circuits, the miter is satisfiable
        // exactly when the functions differ somewhere.
        prop_assume!(a.outputs().len() == b.outputs().len());
        let mut sa = Simulator::new(&a).expect("acyclic");
        let mut sb = Simulator::new(&b).expect("acyclic");
        let differs = (0..16u64).any(|v| {
            let bits = bits_of(v, 4);
            sa.eval(&bits, &[]) != sb.eval(&bits, &[])
        });
        let mut solver = Solver::new();
        let miter = build_miter(&mut solver, &a, &b).expect("miter");
        let sat = solver.solve(&[miter.diff]) == SolveResult::Sat;
        prop_assert_eq!(sat, differs);
        // And check_equivalence must agree too.
        let equiv = check_equivalence(&a, &b).expect("equiv");
        prop_assert_eq!(equiv == EquivResult::Equivalent, !differs);
    }

    #[test]
    fn counterexamples_are_genuine(a in arb_circuit(4, 0), b in arb_circuit(4, 0)) {
        prop_assume!(a.outputs().len() == b.outputs().len());
        if let EquivResult::Inequivalent { counterexample } =
            check_equivalence(&a, &b).expect("equiv")
        {
            let mut sa = Simulator::new(&a).expect("acyclic");
            let mut sb = Simulator::new(&b).expect("acyclic");
            prop_assert_ne!(
                sa.eval(&counterexample, &[]),
                sb.eval(&counterexample, &[])
            );
        }
    }
}
