//! Miter construction: the difference detector at the heart of the SAT
//! attack and of SAT-based equivalence checking.

use polykey_netlist::Netlist;
use polykey_sat::{Lit, Solver};

use crate::tseitin::{encode, Binding, CnfValue, EncodeError};

/// Errors raised while building a miter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MiterError {
    /// The two netlists have different interface arity.
    InterfaceMismatch {
        /// Description of the mismatching port class.
        what: &'static str,
        /// Arity on the left.
        left: usize,
        /// Arity on the right.
        right: usize,
    },
    /// Encoding failed.
    Encode(EncodeError),
}

impl std::fmt::Display for MiterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MiterError::InterfaceMismatch { what, left, right } => {
                write!(f, "interface mismatch: {left} vs {right} {what}")
            }
            MiterError::Encode(e) => write!(f, "encode error: {e}"),
        }
    }
}

impl std::error::Error for MiterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MiterError::Encode(e) => Some(e),
            MiterError::InterfaceMismatch { .. } => None,
        }
    }
}

impl From<EncodeError> for MiterError {
    fn from(e: EncodeError) -> MiterError {
        MiterError::Encode(e)
    }
}

/// A miter of two circuit copies sharing primary inputs.
///
/// The `diff` literal is one-sided: asserting `diff` forces the two copies
/// to produce different outputs somewhere. Solving under the assumption
/// `diff` therefore yields a distinguishing input, and `Unsat` proves the
/// copies are equivalent for all remaining key/input combinations.
#[derive(Clone, Debug)]
pub struct Miter {
    /// Shared primary-input literals, in declaration order.
    pub inputs: Vec<Lit>,
    /// Key literals of the left copy (empty for keyless circuits).
    pub keys_left: Vec<Lit>,
    /// Key literals of the right copy.
    pub keys_right: Vec<Lit>,
    /// Output values of the left copy.
    pub outputs_left: Vec<CnfValue>,
    /// Output values of the right copy.
    pub outputs_right: Vec<CnfValue>,
    /// Assert this literal to require an output difference.
    pub diff: Lit,
    /// True when a pair of constant outputs already differs: the circuits
    /// are unconditionally distinguishable and `diff` is forced true.
    pub always_differs: bool,
}

/// Builds a miter between `left` and `right` inside `solver`.
///
/// The circuits must agree on the number of primary inputs and outputs; the
/// inputs are shared between the copies while each copy receives fresh key
/// variables (key counts may differ, e.g. original vs. locked).
///
/// # Errors
///
/// Returns [`MiterError::InterfaceMismatch`] when input/output arities
/// differ and [`MiterError::Encode`] for encoding failures.
pub fn build_miter(
    solver: &mut Solver,
    left: &Netlist,
    right: &Netlist,
) -> Result<Miter, MiterError> {
    if left.inputs().len() != right.inputs().len() {
        return Err(MiterError::InterfaceMismatch {
            what: "primary inputs",
            left: left.inputs().len(),
            right: right.inputs().len(),
        });
    }
    if left.outputs().len() != right.outputs().len() {
        return Err(MiterError::InterfaceMismatch {
            what: "outputs",
            left: left.outputs().len(),
            right: right.outputs().len(),
        });
    }
    let enc_left = encode(solver, left, &Binding::fresh(left))?;
    let shared: Vec<Lit> =
        enc_left.inputs.iter().map(|v| v.lit().expect("fresh inputs are literals")).collect();
    // When both sides are literally the same netlist (the SAT attack's
    // self-miter), share every node outside the key cone between the two
    // copies: the solver then never re-proves the equality of identical
    // key-independent logic, and only the key cone is duplicated.
    let enc_right = if std::ptr::eq(left, right) {
        crate::tseitin::encode_key_variant(
            solver,
            right,
            &enc_left,
            &vec![crate::tseitin::PortBinding::Fresh; right.key_inputs().len()],
        )?
    } else {
        encode(solver, right, &Binding::with_shared_inputs(&shared, right.key_inputs().len()))?
    };

    let keys_left: Vec<Lit> =
        enc_left.keys.iter().map(|v| v.lit().expect("fresh keys are literals")).collect();
    let keys_right: Vec<Lit> =
        enc_right.keys.iter().map(|v| v.lit().expect("fresh keys are literals")).collect();

    let diff = solver.new_var().positive();
    let mut disjuncts: Vec<Lit> = vec![!diff];
    let mut always_differs = false;
    for (l, r) in enc_left.outputs.iter().zip(&enc_right.outputs) {
        if l == r {
            // Structurally identical outputs (shared encoding) can never
            // differ; no disjunct needed.
            continue;
        }
        match (l, r) {
            (CnfValue::Const(a), CnfValue::Const(b)) => {
                if a != b {
                    always_differs = true;
                }
            }
            (CnfValue::Lit(a), CnfValue::Const(b)) | (CnfValue::Const(b), CnfValue::Lit(a)) => {
                // d → (a ≠ b) collapses to d → (a = ¬b).
                let d = solver.new_var().positive();
                let target = if *b { !*a } else { *a };
                solver.add_clause(&[!d, target]);
                disjuncts.push(d);
            }
            (CnfValue::Lit(a), CnfValue::Lit(b)) => {
                let d = solver.new_var().positive();
                // d → (a ⊕ b): two one-sided clauses suffice under assumption.
                solver.add_clause(&[!d, *a, *b]);
                solver.add_clause(&[!d, !*a, !*b]);
                disjuncts.push(d);
            }
        }
    }
    if always_differs {
        solver.add_clause(&[diff]);
    } else {
        // diff → at least one output pair differs.
        solver.add_clause(&disjuncts);
    }

    Ok(Miter {
        inputs: shared,
        keys_left,
        keys_right,
        outputs_left: enc_left.outputs,
        outputs_right: enc_right.outputs,
        diff,
        always_differs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use polykey_netlist::{GateKind, Netlist};
    use polykey_sat::SolveResult;

    fn and_circuit() -> Netlist {
        let mut nl = Netlist::new("and");
        let a = nl.add_input("a").unwrap();
        let b = nl.add_input("b").unwrap();
        let y = nl.add_gate("y", GateKind::And, &[a, b]).unwrap();
        nl.mark_output(y).unwrap();
        nl
    }

    fn and_circuit_demorgan() -> Netlist {
        // y = ¬(¬a ∨ ¬b): equivalent to AND.
        let mut nl = Netlist::new("and_dm");
        let a = nl.add_input("a").unwrap();
        let b = nl.add_input("b").unwrap();
        let na = nl.add_gate("na", GateKind::Not, &[a]).unwrap();
        let nb = nl.add_gate("nb", GateKind::Not, &[b]).unwrap();
        let y = nl.add_gate("y", GateKind::Nor, &[na, nb]).unwrap();
        nl.mark_output(y).unwrap();
        nl
    }

    fn or_circuit() -> Netlist {
        let mut nl = Netlist::new("or");
        let a = nl.add_input("a").unwrap();
        let b = nl.add_input("b").unwrap();
        let y = nl.add_gate("y", GateKind::Or, &[a, b]).unwrap();
        nl.mark_output(y).unwrap();
        nl
    }

    #[test]
    fn equivalent_circuits_give_unsat_miter() {
        let mut solver = Solver::new();
        let miter = build_miter(&mut solver, &and_circuit(), &and_circuit_demorgan()).unwrap();
        assert_eq!(solver.solve(&[miter.diff]), SolveResult::Unsat);
    }

    #[test]
    fn different_circuits_give_distinguishing_input() {
        let mut solver = Solver::new();
        let miter = build_miter(&mut solver, &and_circuit(), &or_circuit()).unwrap();
        assert_eq!(solver.solve(&[miter.diff]), SolveResult::Sat);
        let a = solver.model_value(miter.inputs[0]).unwrap();
        let b = solver.model_value(miter.inputs[1]).unwrap();
        // AND and OR differ exactly when a ≠ b.
        assert_ne!(a, b, "distinguishing input must separate AND from OR");
    }

    #[test]
    fn interface_mismatch_detected() {
        let mut big = Netlist::new("big");
        let a = big.add_input("a").unwrap();
        let b = big.add_input("b").unwrap();
        let c = big.add_input("c").unwrap();
        let y = big.add_gate("y", GateKind::And, &[a, b, c]).unwrap();
        big.mark_output(y).unwrap();
        let mut solver = Solver::new();
        let err = build_miter(&mut solver, &and_circuit(), &big).unwrap_err();
        assert!(matches!(err, MiterError::InterfaceMismatch { what: "primary inputs", .. }));
    }

    #[test]
    fn locked_vs_original_miter_finds_wrong_key() {
        // Locked buffer: y = a ⊕ k. Original: y = a. The miter (with fresh
        // key on the right) is satisfiable exactly when k = 1.
        let mut orig = Netlist::new("orig");
        let a = orig.add_input("a").unwrap();
        let y = orig.add_gate("y", GateKind::Buf, &[a]).unwrap();
        orig.mark_output(y).unwrap();

        let mut locked = Netlist::new("locked");
        let a = locked.add_input("a").unwrap();
        let k = locked.add_key_input("k").unwrap();
        let y = locked.add_gate("y", GateKind::Xor, &[a, k]).unwrap();
        locked.mark_output(y).unwrap();

        let mut solver = Solver::new();
        let miter = build_miter(&mut solver, &orig, &locked).unwrap();
        assert_eq!(miter.keys_left.len(), 0);
        assert_eq!(miter.keys_right.len(), 1);
        assert_eq!(solver.solve(&[miter.diff]), SolveResult::Sat);
        assert_eq!(solver.model_value(miter.keys_right[0]), Some(true), "only k=1 differs");

        // Pinning the key to 0 makes the miter unsat: correct key.
        assert_eq!(solver.solve(&[miter.diff, !miter.keys_right[0]]), SolveResult::Unsat);
    }

    #[test]
    fn constant_difference_forces_diff() {
        // Left outputs constant 0, right outputs constant 1.
        let mut zero = Netlist::new("zero");
        let _a = zero.add_input("a").unwrap();
        let z = zero.add_const("z", false).unwrap();
        zero.mark_output(z).unwrap();
        let mut one = Netlist::new("one");
        let _a = one.add_input("a").unwrap();
        let o = one.add_const("o", true).unwrap();
        one.mark_output(o).unwrap();

        let mut solver = Solver::new();
        let miter = build_miter(&mut solver, &zero, &one).unwrap();
        assert!(miter.always_differs);
        assert_eq!(solver.solve(&[miter.diff]), SolveResult::Sat);
    }
}
