//! SAT-based combinational equivalence checking.

use polykey_netlist::Netlist;
use polykey_sat::{SolveResult, Solver};

use crate::miter::{build_miter, Miter, MiterError};

/// The verdict of an equivalence check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EquivResult {
    /// The circuits compute the same function on all inputs.
    Equivalent,
    /// The circuits differ; a distinguishing input pattern is attached.
    Inequivalent {
        /// An input pattern (in input declaration order) on which the two
        /// circuits produce different outputs.
        counterexample: Vec<bool>,
    },
}

impl EquivResult {
    /// True iff the verdict is [`EquivResult::Equivalent`].
    pub fn is_equivalent(&self) -> bool {
        matches!(self, EquivResult::Equivalent)
    }
}

/// Errors raised by equivalence checking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EquivError {
    /// Equivalence checking requires keyless circuits; pin keys first
    /// (e.g. with `polykey_netlist::pin_keys`).
    HasKeyInputs {
        /// Name of the offending circuit.
        name: String,
    },
    /// Miter construction failed.
    Miter(MiterError),
}

impl std::fmt::Display for EquivError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EquivError::HasKeyInputs { name } => {
                write!(f, "circuit `{name}` still has key inputs; pin them before checking")
            }
            EquivError::Miter(e) => write!(f, "miter error: {e}"),
        }
    }
}

impl std::error::Error for EquivError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EquivError::Miter(e) => Some(e),
            EquivError::HasKeyInputs { .. } => None,
        }
    }
}

impl From<MiterError> for EquivError {
    fn from(e: MiterError) -> EquivError {
        EquivError::Miter(e)
    }
}

/// Checks whether two keyless combinational circuits are functionally
/// equivalent, via a miter and one SAT call.
///
/// # Errors
///
/// - [`EquivError::HasKeyInputs`] if either circuit still has key ports.
/// - [`EquivError::Miter`] for interface mismatches.
///
/// # Examples
///
/// ```
/// use polykey_netlist::{GateKind, Netlist};
/// use polykey_encode::{check_equivalence, EquivResult};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut a = Netlist::new("and");
/// let x = a.add_input("x")?;
/// let y = a.add_input("y")?;
/// let g = a.add_gate("g", GateKind::And, &[x, y])?;
/// a.mark_output(g)?;
///
/// let mut b = Netlist::new("nand_not");
/// let x = b.add_input("x")?;
/// let y = b.add_input("y")?;
/// let n = b.add_gate("n", GateKind::Nand, &[x, y])?;
/// let g = b.add_gate("g", GateKind::Not, &[n])?;
/// b.mark_output(g)?;
///
/// assert_eq!(check_equivalence(&a, &b)?, EquivResult::Equivalent);
/// # Ok(())
/// # }
/// ```
pub fn check_equivalence(left: &Netlist, right: &Netlist) -> Result<EquivResult, EquivError> {
    for nl in [left, right] {
        if !nl.key_inputs().is_empty() {
            return Err(EquivError::HasKeyInputs { name: nl.name().to_string() });
        }
    }
    let mut solver = Solver::new();
    let miter = build_miter(&mut solver, left, right)?;
    match solver.solve(&[miter.diff]) {
        SolveResult::Sat => {
            Ok(EquivResult::Inequivalent { counterexample: extract_inputs(&solver, &miter) })
        }
        SolveResult::Unsat => Ok(EquivResult::Equivalent),
        SolveResult::Unknown => unreachable!("no budget was set on the solver"),
    }
}

fn extract_inputs(solver: &Solver, miter: &Miter) -> Vec<bool> {
    miter.inputs.iter().map(|&l| solver.model_value(l).unwrap_or(false)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use polykey_netlist::{bits_of, GateKind, Netlist, Simulator};

    fn xor3(name: &str, order: [usize; 3]) -> Netlist {
        // Xor of three inputs, associated in the given order: all equivalent.
        let mut nl = Netlist::new(name);
        let ins = [
            nl.add_input("a").unwrap(),
            nl.add_input("b").unwrap(),
            nl.add_input("c").unwrap(),
        ];
        let g1 = nl.add_gate("g1", GateKind::Xor, &[ins[order[0]], ins[order[1]]]).unwrap();
        let g2 = nl.add_gate("g2", GateKind::Xor, &[g1, ins[order[2]]]).unwrap();
        nl.mark_output(g2).unwrap();
        nl
    }

    #[test]
    fn xor_associativity() {
        let a = xor3("a", [0, 1, 2]);
        let b = xor3("b", [2, 0, 1]);
        assert_eq!(check_equivalence(&a, &b).unwrap(), EquivResult::Equivalent);
    }

    #[test]
    fn counterexample_is_real() {
        let a = xor3("a", [0, 1, 2]);
        // Inequivalent: one output inverted.
        let mut b = Netlist::new("b");
        let ins =
            [b.add_input("a").unwrap(), b.add_input("b").unwrap(), b.add_input("c").unwrap()];
        let g1 = b.add_gate("g1", GateKind::Xor, &[ins[0], ins[1]]).unwrap();
        let g2 = b.add_gate("g2", GateKind::Xnor, &[g1, ins[2]]).unwrap();
        b.mark_output(g2).unwrap();

        match check_equivalence(&a, &b).unwrap() {
            EquivResult::Inequivalent { counterexample } => {
                let mut sa = Simulator::new(&a).unwrap();
                let mut sb = Simulator::new(&b).unwrap();
                assert_ne!(
                    sa.eval(&counterexample, &[]),
                    sb.eval(&counterexample, &[]),
                    "counterexample must actually distinguish"
                );
            }
            other => panic!("expected inequivalent, got {other:?}"),
        }
    }

    #[test]
    fn keyed_circuits_rejected() {
        let mut a = Netlist::new("keyed");
        let x = a.add_input("x").unwrap();
        let k = a.add_key_input("k").unwrap();
        let g = a.add_gate("g", GateKind::Xor, &[x, k]).unwrap();
        a.mark_output(g).unwrap();
        let err = check_equivalence(&a, &a.clone()).unwrap_err();
        assert!(matches!(err, EquivError::HasKeyInputs { .. }));
        assert!(err.to_string().contains("keyed"));
    }

    #[test]
    fn equivalence_is_exhaustive_on_small_circuits() {
        // Compare the SAT verdict with exhaustive simulation for a few pairs.
        let a = xor3("a", [0, 1, 2]);
        let b = xor3("b", [1, 2, 0]);
        let verdict = check_equivalence(&a, &b).unwrap();
        let mut sa = Simulator::new(&a).unwrap();
        let mut sb = Simulator::new(&b).unwrap();
        let all_equal = (0..8u64).all(|v| {
            let bits = bits_of(v, 3);
            sa.eval(&bits, &[]) == sb.eval(&bits, &[])
        });
        assert_eq!(verdict.is_equivalent(), all_equal);
    }
}
