//! # polykey-encode: netlists ⇄ CNF
//!
//! Bridges the [`polykey_netlist`] circuit world and the [`polykey_sat`]
//! solver world:
//!
//! - [`encode`]: Tseitin encoding of a netlist copy with caller-controlled
//!   port bindings ([`Binding`]): fresh variables, shared literals, or
//!   pinned constants (with on-the-fly constant propagation);
//! - [`build_miter`]: two circuit copies sharing primary inputs plus a
//!   `diff` literal that, when assumed, forces an output difference — the
//!   engine of the oracle-guided SAT attack;
//! - [`check_equivalence`]: one-call combinational equivalence checking.
//!
//! # Examples
//!
//! Prove a locked circuit equals its original under the correct key:
//!
//! ```
//! use polykey_netlist::{GateKind, Netlist, pin_keys};
//! use polykey_encode::{check_equivalence, EquivResult};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut orig = Netlist::new("orig");
//! let a = orig.add_input("a")?;
//! let y = orig.add_gate("y", GateKind::Not, &[a])?;
//! orig.mark_output(y)?;
//!
//! let mut locked = Netlist::new("locked");
//! let a = locked.add_input("a")?;
//! let k = locked.add_key_input("keyinput0")?;
//! let x = locked.add_gate("x", GateKind::Xnor, &[a, k])?;
//! locked.mark_output(x)?;
//!
//! // k = 0 turns the XNOR into a NOT (Xnor(a, 0) = ¬a).
//! let unlocked = pin_keys(&locked, &[false])?;
//! assert_eq!(check_equivalence(&orig, &unlocked)?, EquivResult::Equivalent);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod equiv;
mod miter;
mod tseitin;

pub use equiv::{check_equivalence, EquivError, EquivResult};
pub use miter::{build_miter, Miter, MiterError};
pub use tseitin::{
    assert_equal, assert_value, encode, encode_key_variant, Binding, CnfValue, EncodeError,
    EncodedCircuit, PortBinding,
};
