//! Tseitin encoding of netlists into CNF, with caller-controlled port
//! bindings.
//!
//! The SAT attack builds many CNF copies of the same circuit that differ
//! only in how ports are presented: the miter shares primary-input variables
//! between two copies while giving each copy its own key variables; the
//! per-DIP consistency constraints pin inputs to constants while sharing key
//! variables with the miter copies. [`Binding`] expresses all of these cases
//! and [`encode`] performs constant propagation on the fly, so pinned copies
//! shrink to just the key-dependent logic.

use polykey_netlist::{GateKind, Netlist, NetlistError};
use polykey_sat::{ClauseSink, Lit};

/// A CNF-level value: either a literal or a known constant.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum CnfValue {
    /// The value of this signal is the literal's value.
    Lit(Lit),
    /// The signal is a known constant.
    Const(bool),
}

impl CnfValue {
    /// Logical negation (free for both representations).
    pub fn negate(self) -> CnfValue {
        match self {
            CnfValue::Lit(l) => CnfValue::Lit(!l),
            CnfValue::Const(b) => CnfValue::Const(!b),
        }
    }

    /// The literal, if this value is not a constant.
    pub fn lit(self) -> Option<Lit> {
        match self {
            CnfValue::Lit(l) => Some(l),
            CnfValue::Const(_) => None,
        }
    }

    /// The constant, if known.
    pub fn constant(self) -> Option<bool> {
        match self {
            CnfValue::Lit(_) => None,
            CnfValue::Const(b) => Some(b),
        }
    }
}

impl From<Lit> for CnfValue {
    fn from(l: Lit) -> CnfValue {
        CnfValue::Lit(l)
    }
}

impl From<bool> for CnfValue {
    fn from(b: bool) -> CnfValue {
        CnfValue::Const(b)
    }
}

/// How one port of the circuit is presented to the encoding.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum PortBinding {
    /// Allocate a fresh solver variable for this port.
    #[default]
    Fresh,
    /// Reuse an existing literal (e.g. shared with another circuit copy).
    Shared(Lit),
    /// Pin the port to a constant; downstream logic is folded away.
    Pinned(bool),
}

/// Port bindings for one circuit copy: one entry per primary input and per
/// key input, in declaration order.
#[derive(Clone, Debug, Default)]
pub struct Binding {
    /// Bindings for the primary inputs.
    pub inputs: Vec<PortBinding>,
    /// Bindings for the key inputs.
    pub keys: Vec<PortBinding>,
}

impl Binding {
    /// All ports fresh: an independent copy of the circuit.
    pub fn fresh(netlist: &Netlist) -> Binding {
        Binding {
            inputs: vec![PortBinding::Fresh; netlist.inputs().len()],
            keys: vec![PortBinding::Fresh; netlist.key_inputs().len()],
        }
    }

    /// Fresh keys, inputs pinned to the given pattern.
    pub fn with_pinned_inputs(netlist: &Netlist, pattern: &[bool]) -> Binding {
        Binding {
            inputs: pattern.iter().map(|&b| PortBinding::Pinned(b)).collect(),
            keys: vec![PortBinding::Fresh; netlist.key_inputs().len()],
        }
    }

    /// Inputs pinned to a pattern, keys shared with an existing copy.
    pub fn with_pinned_inputs_shared_keys(pattern: &[bool], keys: &[Lit]) -> Binding {
        Binding {
            inputs: pattern.iter().map(|&b| PortBinding::Pinned(b)).collect(),
            keys: keys.iter().map(|&l| PortBinding::Shared(l)).collect(),
        }
    }

    /// Inputs shared with an existing copy, fresh keys.
    pub fn with_shared_inputs(inputs: &[Lit], num_keys: usize) -> Binding {
        Binding {
            inputs: inputs.iter().map(|&l| PortBinding::Shared(l)).collect(),
            keys: vec![PortBinding::Fresh; num_keys],
        }
    }
}

/// The result of encoding one circuit copy.
#[derive(Clone, Debug)]
pub struct EncodedCircuit {
    /// CNF values of the primary inputs, in declaration order.
    pub inputs: Vec<CnfValue>,
    /// CNF values of the key inputs, in declaration order.
    pub keys: Vec<CnfValue>,
    /// CNF values of the outputs, in declaration order.
    pub outputs: Vec<CnfValue>,
    /// CNF value of every node, indexed by [`polykey_netlist::NodeId`].
    /// Enables structure sharing between circuit copies
    /// (see [`encode_key_variant`]).
    pub node_values: Vec<CnfValue>,
}

/// Errors raised by encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// Binding vector length does not match the port count.
    BindingWidth {
        /// "inputs" or "keys".
        which: &'static str,
        /// Ports in the netlist.
        expected: usize,
        /// Bindings supplied.
        got: usize,
    },
    /// The netlist is structurally broken (e.g. cyclic).
    Netlist(NetlistError),
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodeError::BindingWidth { which, expected, got } => {
                write!(f, "binding for {which} has {got} entries, netlist has {expected}")
            }
            EncodeError::Netlist(e) => write!(f, "netlist error: {e}"),
        }
    }
}

impl std::error::Error for EncodeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EncodeError::Netlist(e) => Some(e),
            EncodeError::BindingWidth { .. } => None,
        }
    }
}

impl From<NetlistError> for EncodeError {
    fn from(e: NetlistError) -> EncodeError {
        EncodeError::Netlist(e)
    }
}

/// Encodes one copy of `netlist` into `sink` under the given port bindings.
///
/// Constants propagate during encoding: gates whose value is forced by
/// pinned ports produce no variables or clauses. Inverting gates (`Not`,
/// `Nand`, `Nor`, `Xnor`) reuse their base gate's variable with a negated
/// literal, costing nothing extra.
///
/// # Errors
///
/// Returns [`EncodeError::BindingWidth`] on port-count mismatch and
/// [`EncodeError::Netlist`] for cyclic netlists.
pub fn encode<S: ClauseSink>(
    sink: &mut S,
    netlist: &Netlist,
    binding: &Binding,
) -> Result<EncodedCircuit, EncodeError> {
    if binding.inputs.len() != netlist.inputs().len() {
        return Err(EncodeError::BindingWidth {
            which: "inputs",
            expected: netlist.inputs().len(),
            got: binding.inputs.len(),
        });
    }
    if binding.keys.len() != netlist.key_inputs().len() {
        return Err(EncodeError::BindingWidth {
            which: "keys",
            expected: netlist.key_inputs().len(),
            got: binding.keys.len(),
        });
    }
    let order = netlist.topological_order()?;
    let mut values: Vec<Option<CnfValue>> = vec![None; netlist.num_nodes()];

    let bind_port = |sink: &mut S, b: PortBinding| -> CnfValue {
        match b {
            PortBinding::Fresh => CnfValue::Lit(sink.new_var().positive()),
            PortBinding::Shared(l) => CnfValue::Lit(l),
            PortBinding::Pinned(v) => CnfValue::Const(v),
        }
    };
    let mut input_values = Vec::with_capacity(binding.inputs.len());
    for (i, &pi) in netlist.inputs().iter().enumerate() {
        let v = bind_port(sink, binding.inputs[i]);
        values[pi.index()] = Some(v);
        input_values.push(v);
    }
    let mut key_values = Vec::with_capacity(binding.keys.len());
    for (i, &ki) in netlist.key_inputs().iter().enumerate() {
        let v = bind_port(sink, binding.keys[i]);
        values[ki.index()] = Some(v);
        key_values.push(v);
    }

    for id in order {
        let node = netlist.node(id);
        if node.kind().is_input() {
            continue;
        }
        let fanins: Vec<CnfValue> =
            node.fanins().iter().map(|f| values[f.index()].expect("topo order")).collect();
        values[id.index()] = Some(encode_gate(sink, node.kind(), &fanins));
    }

    let outputs =
        netlist.outputs().iter().map(|o| values[o.index()].expect("outputs encoded")).collect();
    let node_values = values.into_iter().map(|v| v.expect("all nodes encoded")).collect();
    Ok(EncodedCircuit { inputs: input_values, keys: key_values, outputs, node_values })
}

/// Encodes a *key variant* of an already-encoded circuit copy: primary
/// inputs and every node **not** in the transitive fanout of a key input
/// reuse `prior`'s CNF values verbatim; only the key inputs (bound per
/// `key_binding`) and the key-controlled cone are encoded fresh.
///
/// This is how the SAT attack's miter shares structure between its two
/// copies: the copies agree everywhere except downstream of the keys, so
/// the solver never has to re-derive the equality of shared logic.
///
/// `prior` must come from [`encode`] (or this function) over the *same*
/// netlist value.
///
/// # Errors
///
/// Returns [`EncodeError::BindingWidth`] on key-count mismatch (also used
/// when `prior` does not match the netlist's node count) and
/// [`EncodeError::Netlist`] for cyclic netlists.
pub fn encode_key_variant<S: ClauseSink>(
    sink: &mut S,
    netlist: &Netlist,
    prior: &EncodedCircuit,
    key_binding: &[PortBinding],
) -> Result<EncodedCircuit, EncodeError> {
    if key_binding.len() != netlist.key_inputs().len() {
        return Err(EncodeError::BindingWidth {
            which: "keys",
            expected: netlist.key_inputs().len(),
            got: key_binding.len(),
        });
    }
    if prior.node_values.len() != netlist.num_nodes() {
        return Err(EncodeError::BindingWidth {
            which: "prior node values",
            expected: netlist.num_nodes(),
            got: prior.node_values.len(),
        });
    }
    let order = netlist.topological_order()?;
    let key_cone = polykey_netlist::analysis::transitive_fanout(netlist, netlist.key_inputs());
    let mut values: Vec<Option<CnfValue>> = vec![None; netlist.num_nodes()];

    for &pi in netlist.inputs() {
        values[pi.index()] = Some(prior.node_values[pi.index()]);
    }
    let mut key_values = Vec::with_capacity(key_binding.len());
    for (i, &ki) in netlist.key_inputs().iter().enumerate() {
        let v = match key_binding[i] {
            PortBinding::Fresh => CnfValue::Lit(sink.new_var().positive()),
            PortBinding::Shared(l) => CnfValue::Lit(l),
            PortBinding::Pinned(b) => CnfValue::Const(b),
        };
        values[ki.index()] = Some(v);
        key_values.push(v);
    }
    for id in order {
        let node = netlist.node(id);
        if node.kind().is_input() {
            continue;
        }
        if !key_cone[id.index()] {
            values[id.index()] = Some(prior.node_values[id.index()]);
            continue;
        }
        let fanins: Vec<CnfValue> =
            node.fanins().iter().map(|f| values[f.index()].expect("topo order")).collect();
        values[id.index()] = Some(encode_gate(sink, node.kind(), &fanins));
    }
    let outputs =
        netlist.outputs().iter().map(|o| values[o.index()].expect("outputs encoded")).collect();
    let node_values = values.into_iter().map(|v| v.expect("all nodes encoded")).collect();
    Ok(EncodedCircuit { inputs: prior.inputs.clone(), keys: key_values, outputs, node_values })
}

/// Encodes a single gate, folding constants.
fn encode_gate<S: ClauseSink>(sink: &mut S, kind: GateKind, fanins: &[CnfValue]) -> CnfValue {
    match kind {
        GateKind::Input | GateKind::KeyInput => unreachable!("handled by caller"),
        GateKind::Const(v) => CnfValue::Const(v),
        GateKind::Buf => fanins[0],
        GateKind::Not => fanins[0].negate(),
        GateKind::And => encode_and(sink, fanins),
        GateKind::Nand => encode_and(sink, fanins).negate(),
        GateKind::Or => encode_and(sink, &negate_all(fanins)).negate(),
        GateKind::Nor => encode_and(sink, &negate_all(fanins)),
        GateKind::Xor => encode_xor(sink, fanins),
        GateKind::Xnor => encode_xor(sink, fanins).negate(),
        GateKind::Mux => encode_mux(sink, fanins[0], fanins[1], fanins[2]),
    }
}

fn negate_all(fanins: &[CnfValue]) -> Vec<CnfValue> {
    fanins.iter().map(|v| v.negate()).collect()
}

/// `y = AND(fanins)` with constant folding and degenerate-case elision.
fn encode_and<S: ClauseSink>(sink: &mut S, fanins: &[CnfValue]) -> CnfValue {
    let mut lits: Vec<Lit> = Vec::with_capacity(fanins.len());
    for &v in fanins {
        match v {
            CnfValue::Const(false) => return CnfValue::Const(false),
            CnfValue::Const(true) => {}
            CnfValue::Lit(l) => lits.push(l),
        }
    }
    lits.sort_unstable();
    lits.dedup();
    // x ∧ ¬x = 0.
    for w in lits.windows(2) {
        if w[0] == !w[1] {
            return CnfValue::Const(false);
        }
    }
    match lits.len() {
        0 => CnfValue::Const(true),
        1 => CnfValue::Lit(lits[0]),
        _ => {
            let y = sink.new_var().positive();
            // y → l_i, and (∧ l_i) → y.
            let mut long = Vec::with_capacity(lits.len() + 1);
            long.push(y);
            for &l in &lits {
                sink.add_clause(&[!y, l]);
                long.push(!l);
            }
            sink.add_clause(&long);
            CnfValue::Lit(y)
        }
    }
}

/// Parity via a chain of binary XOR variables.
fn encode_xor<S: ClauseSink>(sink: &mut S, fanins: &[CnfValue]) -> CnfValue {
    let mut acc = CnfValue::Const(false);
    for &v in fanins {
        acc = encode_xor2(sink, acc, v);
    }
    acc
}

fn encode_xor2<S: ClauseSink>(sink: &mut S, a: CnfValue, b: CnfValue) -> CnfValue {
    match (a, b) {
        (CnfValue::Const(x), CnfValue::Const(y)) => CnfValue::Const(x ^ y),
        (CnfValue::Const(false), v) | (v, CnfValue::Const(false)) => v,
        (CnfValue::Const(true), v) | (v, CnfValue::Const(true)) => v.negate(),
        (CnfValue::Lit(x), CnfValue::Lit(y)) => {
            if x == y {
                return CnfValue::Const(false);
            }
            if x == !y {
                return CnfValue::Const(true);
            }
            let y2 = sink.new_var().positive();
            sink.add_clause(&[!y2, x, y]);
            sink.add_clause(&[!y2, !x, !y]);
            sink.add_clause(&[y2, !x, y]);
            sink.add_clause(&[y2, x, !y]);
            CnfValue::Lit(y2)
        }
    }
}

/// `y = s ? d1 : d0`.
fn encode_mux<S: ClauseSink>(
    sink: &mut S,
    s: CnfValue,
    d0: CnfValue,
    d1: CnfValue,
) -> CnfValue {
    match s {
        CnfValue::Const(true) => d1,
        CnfValue::Const(false) => d0,
        CnfValue::Lit(sl) => {
            if d0 == d1 {
                return d0;
            }
            match (d0, d1) {
                (CnfValue::Const(false), CnfValue::Const(true)) => CnfValue::Lit(sl),
                (CnfValue::Const(true), CnfValue::Const(false)) => CnfValue::Lit(!sl),
                (CnfValue::Const(false), d1) => encode_and(sink, &[CnfValue::Lit(sl), d1]),
                (CnfValue::Const(true), d1) => {
                    // ¬s ∨ d1 = ¬(s ∧ ¬d1)
                    encode_and(sink, &[CnfValue::Lit(sl), d1.negate()]).negate()
                }
                (d0, CnfValue::Const(false)) => encode_and(sink, &[CnfValue::Lit(!sl), d0]),
                (d0, CnfValue::Const(true)) => {
                    encode_and(sink, &[CnfValue::Lit(!sl), d0.negate()]).negate()
                }
                (CnfValue::Lit(a), CnfValue::Lit(b)) => {
                    let y = sink.new_var().positive();
                    // s → (y = b)
                    sink.add_clause(&[!sl, !y, b]);
                    sink.add_clause(&[!sl, y, !b]);
                    // ¬s → (y = a)
                    sink.add_clause(&[sl, !y, a]);
                    sink.add_clause(&[sl, y, !a]);
                    CnfValue::Lit(y)
                }
            }
        }
    }
}

/// Asserts that two CNF values are equal, without fixing what the value is.
///
/// Used by the batched SAT attack to mark a harvested DIP as *resolved*
/// before the oracle has answered it: requiring the two key copies to agree
/// at that input is a relaxation of the eventual response constraint, so no
/// consistent key pair is lost — but the miter can no longer propose a key
/// pair that the pending answer would eliminate anyway.
pub fn assert_equal<S: ClauseSink>(sink: &mut S, a: CnfValue, b: CnfValue) {
    match (a, b) {
        (CnfValue::Const(x), CnfValue::Const(y)) => {
            if x != y {
                sink.add_clause(&[]);
            }
        }
        (CnfValue::Lit(l), CnfValue::Const(c)) | (CnfValue::Const(c), CnfValue::Lit(l)) => {
            sink.add_clause(&[if c { l } else { !l }]);
        }
        (CnfValue::Lit(l), CnfValue::Lit(r)) => {
            sink.add_clause(&[!l, r]);
            sink.add_clause(&[l, !r]);
        }
    }
}

/// Asserts that a CNF value equals a boolean constant. For a constant value
/// that disagrees, adds the empty clause (making the formula unsatisfiable),
/// which faithfully encodes the contradiction.
pub fn assert_value<S: ClauseSink>(sink: &mut S, value: CnfValue, expected: bool) {
    match value {
        CnfValue::Lit(l) => {
            let lit = if expected { l } else { !l };
            sink.add_clause(&[lit]);
        }
        CnfValue::Const(b) => {
            if b != expected {
                sink.add_clause(&[]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polykey_netlist::{bits_of, GateKind, Netlist, Simulator};
    use polykey_sat::{SolveResult, Solver};

    /// Builds a 3-input test circuit with a couple of gate types.
    fn sample() -> Netlist {
        let mut nl = Netlist::new("s");
        let a = nl.add_input("a").unwrap();
        let b = nl.add_input("b").unwrap();
        let c = nl.add_input("c").unwrap();
        let g1 = nl.add_gate("g1", GateKind::Nand, &[a, b]).unwrap();
        let g2 = nl.add_gate("g2", GateKind::Xor, &[g1, c]).unwrap();
        let g3 = nl.add_gate("g3", GateKind::Mux, &[a, g2, c]).unwrap();
        nl.mark_output(g2).unwrap();
        nl.mark_output(g3).unwrap();
        nl
    }

    /// The encoded CNF must agree with simulation on every input pattern.
    fn check_against_simulation(nl: &Netlist) {
        let ni = nl.inputs().len();
        let nk = nl.key_inputs().len();
        let mut sim = Simulator::new(nl).unwrap();
        for v in 0..(1u64 << (ni + nk)) {
            let bits = bits_of(v, ni + nk);
            let (ibits, kbits) = bits.split_at(ni);
            let expected = sim.eval(ibits, kbits);

            let mut solver = Solver::new();
            let enc = encode(&mut solver, nl, &Binding::fresh(nl)).unwrap();
            for (val, &b) in enc.inputs.iter().zip(ibits) {
                assert_value(&mut solver, *val, b);
            }
            for (val, &b) in enc.keys.iter().zip(kbits) {
                assert_value(&mut solver, *val, b);
            }
            assert_eq!(solver.solve(&[]), SolveResult::Sat);
            for (o, val) in enc.outputs.iter().enumerate() {
                let got = match val {
                    CnfValue::Lit(l) => solver.model_value(*l).expect("assigned"),
                    CnfValue::Const(b) => *b,
                };
                assert_eq!(got, expected[o], "output {o} at pattern {v:b}");
            }
        }
    }

    #[test]
    fn encoding_matches_simulation() {
        check_against_simulation(&sample());
    }

    #[test]
    fn encoding_matches_simulation_with_keys() {
        let mut nl = Netlist::new("locked");
        let a = nl.add_input("a").unwrap();
        let k0 = nl.add_key_input("k0").unwrap();
        let k1 = nl.add_key_input("k1").unwrap();
        let x = nl.add_gate("x", GateKind::Xnor, &[a, k0]).unwrap();
        let y = nl.add_gate("y", GateKind::Or, &[x, k1]).unwrap();
        nl.mark_output(y).unwrap();
        check_against_simulation(&nl);
    }

    #[test]
    fn pinned_inputs_fold_everything() {
        let nl = sample();
        let mut solver = Solver::new();
        let binding = Binding::with_pinned_inputs(&nl, &[true, false, true]);
        let enc = encode(&mut solver, &nl, &binding).unwrap();
        // No keys, all inputs pinned: outputs must be compile-time constants
        // and the solver must have received no variables at all.
        assert_eq!(solver.num_vars(), 0);
        let mut sim = Simulator::new(&nl).unwrap();
        let expected = sim.eval(&[true, false, true], &[]);
        for (o, val) in enc.outputs.iter().enumerate() {
            assert_eq!(val.constant(), Some(expected[o]));
        }
    }

    #[test]
    fn shared_inputs_are_reused() {
        let nl = sample();
        let mut solver = Solver::new();
        let enc1 = encode(&mut solver, &nl, &Binding::fresh(&nl)).unwrap();
        let shared: Vec<Lit> = enc1.inputs.iter().map(|v| v.lit().unwrap()).collect();
        let enc2 = encode(&mut solver, &nl, &Binding::with_shared_inputs(&shared, 0)).unwrap();
        // Same inputs ⇒ same outputs: the miter over a circuit and itself
        // with shared ports is unsatisfiable when outputs are forced apart.
        let (o1, o2) = (enc1.outputs[0].lit().unwrap(), enc2.outputs[0].lit().unwrap());
        solver.add_clause(&[o1, o2]);
        solver.add_clause(&[!o1, !o2]);
        assert_eq!(solver.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn binding_width_checked() {
        let nl = sample();
        let mut solver = Solver::new();
        let bad = Binding { inputs: vec![PortBinding::Fresh; 2], keys: vec![] };
        let err = encode(&mut solver, &nl, &bad).unwrap_err();
        assert!(matches!(err, EncodeError::BindingWidth { which: "inputs", .. }));
        assert!(err.to_string().contains("2 entries"));
    }

    #[test]
    fn assert_value_on_conflicting_const_is_unsat() {
        let mut solver = Solver::new();
        assert_value(&mut solver, CnfValue::Const(true), false);
        assert_eq!(solver.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn cnf_value_algebra() {
        let l = polykey_sat::Var::new(0).positive();
        assert_eq!(CnfValue::Lit(l).negate(), CnfValue::Lit(!l));
        assert_eq!(CnfValue::Const(true).negate(), CnfValue::Const(false));
        assert_eq!(CnfValue::from(l).lit(), Some(l));
        assert_eq!(CnfValue::from(true).constant(), Some(true));
        assert_eq!(CnfValue::Lit(l).constant(), None);
    }
}
