//! Property tests for the offline JSON emitter/parser and the telemetry
//! document round-trip: arbitrary scenario results must survive
//! emit → parse unchanged, whatever hostile characters their labels carry.

use proptest::prelude::*;

use polykey_bench::harness::{document, parse_document, Record};
use polykey_bench::json::Json;

/// Strings biased toward the characters that break naive emitters:
/// quotes, backslashes, control characters, and non-ASCII.
fn arb_hostile_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(any::<u8>(), 0..24).prop_map(|bytes| {
        bytes
            .into_iter()
            .map(|b| match b % 12 {
                0 => '"',
                1 => '\\',
                2 => '\n',
                3 => '\t',
                4 => '\r',
                5 => '\u{08}',
                6 => '\u{0c}',
                7 => char::from(b % 0x20), // other raw control chars
                8 => '\u{263a}',
                9 => '\u{1f600}',
                _ => char::from(b'a' + (b % 26)),
            })
            .collect()
    })
}

/// Finite metric values across the magnitudes the harness emits
/// (sub-millisecond timings to large counters), positive and negative.
fn arb_metric_value() -> impl Strategy<Value = f64> {
    (any::<u32>(), any::<u16>()).prop_map(|(mantissa, micro)| {
        (f64::from(mantissa) - f64::from(u32::MAX / 2)) + f64::from(micro) / 65536.0
    })
}

fn arb_record() -> impl Strategy<Value = Record> {
    (
        arb_hostile_string(),
        proptest::collection::vec((arb_hostile_string(), arb_hostile_string()), 0..4),
        proptest::collection::vec((arb_hostile_string(), arb_metric_value()), 0..6),
    )
        .prop_map(|(scenario, labels, metrics)| {
            let mut record = Record::new(&scenario);
            for (k, v) in labels {
                record = record.label(&k, v);
            }
            for (k, v) in metrics {
                record = record.metric(&k, v);
            }
            record
        })
}

/// Builds a scalar leaf from a selector byte and raw material.
fn scalar(sel: u8, num: f64, s: &str) -> Json {
    match sel % 5 {
        0 => Json::Null,
        1 => Json::Bool(sel & 0x80 != 0),
        2 | 3 => Json::Number(num),
        _ => Json::String(s.to_string()),
    }
}

/// An arbitrary JSON tree (depth-bounded by construction: scalar leaves,
/// up to two container levels above).
fn arb_json() -> impl Strategy<Value = Json> {
    (
        any::<u8>(),
        arb_metric_value(),
        arb_hostile_string(),
        proptest::collection::vec(
            (arb_hostile_string(), any::<u8>(), arb_metric_value(), arb_hostile_string()),
            0..5,
        ),
    )
        .prop_map(|(shape, num, s, items)| {
            let leaves: Vec<(String, Json)> =
                items.iter().map(|(k, sel, n, v)| (k.clone(), scalar(*sel, *n, v))).collect();
            let array = Json::Array(leaves.iter().map(|(_, v)| v.clone()).collect());
            let object = Json::Object(leaves);
            match shape % 4 {
                0 => scalar(shape / 4, num, &s),
                1 => array,
                2 => object,
                // Nested: an object holding both container kinds.
                _ => Json::Object(vec![(s, array), ("obj".to_string(), object)]),
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Emit → parse is the identity on arbitrary JSON trees, in both the
    /// pretty and the compact rendering.
    #[test]
    fn json_roundtrips(value in arb_json()) {
        prop_assert_eq!(&Json::parse(&value.render()).unwrap(), &value);
        prop_assert_eq!(&Json::parse(&value.render_compact()).unwrap(), &value);
    }

    /// Hostile strings — quotes, backslashes, control characters — are
    /// escaped correctly: they round-trip and never produce raw control
    /// bytes or unescaped quotes in the emitted text.
    #[test]
    fn strings_escape_correctly(s in arb_hostile_string()) {
        let value = Json::String(s.clone());
        let text = value.render_compact();
        prop_assert!(!text.bytes().any(|b| b < 0x20), "raw control byte in {text:?}");
        let inner = &text[1..text.len() - 1];
        // Any `"` inside the literal must be preceded by an odd run of
        // backslashes (i.e. be escaped).
        let bytes = inner.as_bytes();
        for (i, &b) in bytes.iter().enumerate() {
            if b == b'"' {
                let run = bytes[..i].iter().rev().take_while(|&&c| c == b'\\').count();
                prop_assert!(run % 2 == 1, "unescaped quote in {text:?}");
            }
        }
        prop_assert_eq!(Json::parse(&text).unwrap(), value);
    }

    /// Telemetry documents round-trip arbitrary scenario records through
    /// the `polykey-bench/v1` schema.
    #[test]
    fn documents_roundtrip_records(records in proptest::collection::vec(arb_record(), 0..8)) {
        let text = document("all", "quick", &records).render();
        let parsed = parse_document(&text).unwrap();
        prop_assert_eq!(parsed, records);
    }
}
