//! The registered scenario implementations.
//!
//! Each function is the body of one evaluation binary, refactored to
//! return a structured [`ScenarioResult`] (records + rendered text)
//! instead of printing: the standalone bins print `rendered`, while the
//! `bench` bin persists `records` as `BENCH_*.json` telemetry. Progress
//! chatter still goes to stderr, so long runs stay observable either way.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use polykey_attack::{AttackSession, AttackStatus, SimOracle, SplitStrategy};
use polykey_circuits::Iscas85;
use polykey_encode::{build_miter, check_equivalence, EquivResult};
use polykey_locking::{
    lock_sarlock_on_signals, AntiSat, Key, LockScheme, LutLock, Rll, Sarlock,
};
use polykey_netlist::analysis::levels;
use polykey_netlist::{bits_of, GateKind, Netlist, NodeId, Simulator};
use polykey_sat::Solver;
use rand::SeedableRng;

use super::{ms, Record, ScenarioCtx, ScenarioResult};
use crate::{fmt_duration, TextTable};

/// The scheme roster the sweeps share (matrix, batch, encode).
fn scheme_roster(seed: u64) -> Vec<Box<dyn LockScheme>> {
    vec![
        Box::new(Rll::new(8).with_seed(seed)),
        Box::new(Sarlock::new(6)),
        Box::new(AntiSat::new(4)),
        Box::new(LutLock::small().with_seed(seed)),
    ]
}

/// The running example of Fig. 1: a 3-input majority gate.
fn majority3() -> Netlist {
    let mut nl = Netlist::new("maj3");
    let a = nl.add_input("a").expect("fresh");
    let b = nl.add_input("b").expect("fresh");
    let c = nl.add_input("c").expect("fresh");
    let ab = nl.add_gate("ab", GateKind::And, &[a, b]).expect("fresh");
    let ac = nl.add_gate("ac", GateKind::And, &[a, c]).expect("fresh");
    let bc = nl.add_gate("bc", GateKind::And, &[b, c]).expect("fresh");
    let y = nl.add_gate("y", GateKind::Or, &[ab, ac, bc]).expect("fresh");
    nl.mark_output(y).expect("distinct");
    nl
}

/// The `LockScheme` × effort × circuit sweep behind the `matrix` bin:
/// every cell is attacked, recombined (Fig. 1b), and formally verified.
pub fn matrix(ctx: &ScenarioCtx) -> ScenarioResult {
    let seed = ctx.seed.unwrap_or(0xD1CE);
    let circuits: Vec<Iscas85> = if ctx.quick {
        vec![Iscas85::C432]
    } else if ctx.full {
        vec![Iscas85::C432, Iscas85::C880, Iscas85::C1908]
    } else {
        vec![Iscas85::C432, Iscas85::C880]
    };
    let max_effort = if ctx.full { 3 } else { 2 };
    let time_cap = Duration::from_secs(ctx.time_cap.unwrap_or(300));
    let schemes = scheme_roster(seed);

    let mut out = String::new();
    let mut records = Vec::new();
    let _ = writeln!(
        out,
        "Attack matrix: {} schemes x N = 0..={max_effort} x {} circuits (cap {} per attack)",
        schemes.len(),
        circuits.len(),
        fmt_duration(time_cap)
    );
    let _ = writeln!(
        out,
        "cells: #DIP (max over terms) / max term time; * = formally verified recombination\n"
    );

    let mut header = vec!["circuit / scheme".to_string()];
    for n in 0..=max_effort {
        header.push(format!("N={n}"));
    }
    let mut table = TextTable::new(header);

    for circuit in &circuits {
        let original = circuit.build();
        for scheme in &schemes {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let locked = match scheme.lock_random(&original, &mut rng) {
                Ok(locked) => locked,
                Err(e) => {
                    eprintln!("{circuit}/{}: cannot lock ({e})", scheme.name());
                    continue;
                }
            };
            let mut row = vec![format!("{}/{}", circuit.name(), scheme.name())];
            for n in 0..=max_effort {
                let mut oracle = SimOracle::new(&original).expect("keyless oracle");
                let report = AttackSession::builder()
                    .oracle(&mut oracle)
                    .split_effort(n)
                    .record_dips(false)
                    .time_budget(time_cap)
                    .build()
                    .expect("oracle provided")
                    .run(&locked.netlist)
                    .expect("attack runs");
                if !report.is_complete() {
                    row.push(format!("{:?}", report.status()));
                    continue;
                }
                let max_dips = match report.as_multi_key() {
                    Some(outcome) => outcome.reports.iter().map(|r| r.dips).max().unwrap_or(0),
                    None => report.stats().dips,
                };
                // The executable correctness check: recombined sub-keys
                // restore the original function, for every scheme.
                let recombined = report.recombine(&locked.netlist).expect("recombine");
                let verified = check_equivalence(&original, &recombined).expect("equiv")
                    == EquivResult::Equivalent;
                assert!(verified, "{}/{} N={n} must recombine", circuit.name(), scheme.name());
                records.push(
                    Record::new("matrix")
                        .label("circuit", circuit.name())
                        .label("scheme", scheme.name())
                        .label("n", n)
                        .attack_metrics(&report.stats())
                        .metric("max_dips", max_dips as f64)
                        .metric("verified", 1.0),
                );
                row.push(format!(
                    "{max_dips} / {}{}",
                    fmt_duration(report.stats().max_subtask_time()),
                    if verified { " *" } else { "" }
                ));
            }
            table.row(row);
            eprintln!("{}/{} done", circuit.name(), scheme.name());
        }
    }

    let _ = writeln!(out, "{}", table.render());
    let _ = writeln!(out, "SARLock #DIP halves per splitting level; RLL and Anti-SAT are");
    let _ = writeln!(out, "cheap everywhere; LUT cost sits in the miter size, which the");
    let _ = writeln!(out, "cofactored terms shrink. One harness, every scheme.");
    ScenarioResult { records, rendered: out, table: Some(table) }
}

const BATCH_WIDTHS: [usize; 4] = [1, 8, 32, 64];

/// The batched-DIP sweep behind the `batch` bin: oracle rounds vs oracle
/// queries for batch widths 1/8/32/64.
pub fn batch(ctx: &ScenarioCtx) -> ScenarioResult {
    let seed = ctx.seed.unwrap_or(0xBA7C);
    let circuits: Vec<Iscas85> = if ctx.quick {
        vec![Iscas85::C432]
    } else if ctx.full {
        vec![Iscas85::C432, Iscas85::C880, Iscas85::C1908]
    } else {
        vec![Iscas85::C432, Iscas85::C880]
    };
    // SARLock is the interesting row: ~2^|K| DIPs, so batching collapses
    // dozens of round-trips per attack. RLL/Anti-SAT/LUT converge in a
    // handful of DIPs and bound the overhead side of the trade.
    let schemes = scheme_roster(seed);

    let mut out = String::new();
    let mut records = Vec::new();
    let _ = writeln!(
        out,
        "Batched-DIP sweep: {} schemes x batch widths {BATCH_WIDTHS:?} x {} circuits",
        schemes.len(),
        circuits.len()
    );
    let _ = writeln!(out, "cells: oracle rounds / oracle queries (speedup x)");
    let _ = writeln!(out, "key vs k=1 run: `=` bit-identical, `≡` functionally equivalent");
    let _ = writeln!(out, "every cell is recombined (Fig. 1b) and formally verified\n");

    let mut header = vec!["circuit / scheme".to_string()];
    for k in BATCH_WIDTHS {
        header.push(format!("k={k}"));
    }
    let mut table = TextTable::new(header);
    let mut best_speedup: (f64, String) = (1.0, String::new());

    for circuit in &circuits {
        let original = circuit.build();
        for scheme in &schemes {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let locked = match scheme.lock_random(&original, &mut rng) {
                Ok(locked) => locked,
                Err(e) => {
                    eprintln!("{circuit}/{}: cannot lock ({e})", scheme.name());
                    continue;
                }
            };
            let mut row = vec![format!("{}/{}", circuit.name(), scheme.name())];
            let mut sequential_key = None;
            for k in BATCH_WIDTHS {
                let mut oracle = SimOracle::new(&original).expect("keyless oracle");
                let report = AttackSession::builder()
                    .oracle(&mut oracle)
                    .dip_batch(k)
                    .record_dips(false)
                    .build()
                    .expect("oracle provided")
                    .run(&locked.netlist)
                    .expect("attack runs");
                assert!(
                    report.is_complete(),
                    "{}/{} k={k} must succeed",
                    circuit.name(),
                    scheme.name()
                );
                let stats = report.stats();
                // Correctness first: the recombined design must be exactly
                // the original function at every batch width.
                let recombined = report.recombine(&locked.netlist).expect("recombine");
                assert_eq!(
                    check_equivalence(&original, &recombined).expect("equiv"),
                    EquivResult::Equivalent,
                    "{}/{} k={k} must recombine to the original",
                    circuit.name(),
                    scheme.name()
                );
                let key = report.key().expect("single-key run").clone();
                let key_mark = match &sequential_key {
                    None => {
                        sequential_key = Some(key);
                        String::new()
                    }
                    Some(reference) if *reference == key => " =".to_string(),
                    Some(_) => " ≡".to_string(),
                };
                let speedup = stats.oracle_queries as f64 / stats.oracle_rounds.max(1) as f64;
                if speedup > best_speedup.0 {
                    best_speedup =
                        (speedup, format!("{}/{} at k={k}", circuit.name(), scheme.name()));
                }
                records.push(
                    Record::new("batch")
                        .label("circuit", circuit.name())
                        .label("scheme", scheme.name())
                        .label("k", k)
                        .attack_metrics(&stats)
                        .metric("speedup", speedup),
                );
                row.push(format!(
                    "{}/{} ({speedup:.1}x){key_mark} {}",
                    stats.oracle_rounds,
                    stats.oracle_queries,
                    fmt_duration(stats.wall_time)
                ));
            }
            table.row(row);
            eprintln!("{}/{} done", circuit.name(), scheme.name());
        }
    }

    let _ = writeln!(out, "{}", table.render());
    let _ = writeln!(
        out,
        "best round amortization: {:.1}x fewer oracle round-trips ({})",
        best_speedup.0, best_speedup.1
    );
    let _ = writeln!(out, "queries (= #DIP) stay flat while rounds collapse: the oracle");
    let _ = writeln!(out, "cost of the attack is round-trips, and k=64 packs each round");
    let _ = writeln!(out, "into one 64-pattern simulator pass.");
    ScenarioResult { records, rendered: out, table: Some(table) }
}

/// Table 1 behind the `table1` bin: `#DIP` vs splitting effort on
/// SARLock-locked c7552.
pub fn table1(ctx: &ScenarioCtx) -> ScenarioResult {
    let key_sizes: Vec<usize> = if ctx.quick { vec![4, 8] } else { vec![4, 8, 12] };
    let seed = ctx.seed.unwrap_or(0xDAC24);

    let mut out = String::new();
    let mut records = Vec::new();
    let _ = writeln!(out, "Table 1: #DIP for SARLock-locked c7552 (stand-in netlist)");
    let _ = writeln!(
        out,
        "splitting ports chosen by fan-out cone analysis; N = 0 is the baseline\n"
    );

    let c7552 = Iscas85::C7552.build();
    let mut table = TextTable::new(vec![
        "|K|".to_string(),
        "N=0 (baseline)".to_string(),
        "N=1".to_string(),
        "N=2".to_string(),
        "N=3".to_string(),
        "N=4".to_string(),
    ]);
    let mut spread_note = Vec::new();

    for &kw in &key_sizes {
        // A fixed correct key derived from the seed keeps runs reproducible.
        let key = Key::from_u64(seed & ((1 << kw) - 1), kw);
        let locked = Sarlock::new(kw).lock(&c7552, &key).expect("c7552 has enough inputs");
        let mut row = vec![format!("{kw}")];
        for n in 0..=4usize {
            let started = Instant::now();
            let mut oracle = SimOracle::new(&c7552).expect("keyless oracle");
            let report = AttackSession::builder()
                .oracle(&mut oracle)
                .split_effort(n)
                .strategy(SplitStrategy::FanoutCone)
                .build()
                .expect("oracle provided")
                .run(&locked.netlist)
                .expect("attack runs");
            assert!(report.is_complete(), "|K|={kw} N={n} must succeed");
            let (max_dips, min_dips, terms) = match report.as_multi_key() {
                Some(outcome) => (
                    outcome.reports.iter().map(|r| r.dips).max().unwrap_or(0),
                    outcome.reports.iter().map(|r| r.dips).min().unwrap_or(0),
                    outcome.reports.len(),
                ),
                None => (report.stats().dips, report.stats().dips, 1),
            };
            if max_dips != min_dips {
                spread_note.push(format!(
                    "|K|={kw} N={n}: per-term #DIP ranges {min_dips}..{max_dips}"
                ));
            }
            records.push(
                Record::new("table1")
                    .label("kw", kw)
                    .label("n", n)
                    .attack_metrics(&report.stats())
                    .metric("max_dips", max_dips as f64)
                    .metric("min_dips", min_dips as f64)
                    .metric("terms", terms as f64),
            );
            row.push(format!("{max_dips}"));
            eprintln!(
                "  |K|={kw} N={n}: #DIP(max)={max_dips} across {terms} terms in {}",
                fmt_duration(started.elapsed()),
            );
        }
        table.row(row);
    }

    let _ = writeln!(out, "{}", table.render());
    let _ = writeln!(out, "(cells report the maximum #DIP over the 2^N parallel terms;");
    let _ = writeln!(out, " the paper reports the same quantity and observes identical");
    let _ = writeln!(out, " #DIP across terms)");
    if spread_note.is_empty() {
        let _ = writeln!(out, "\nall parallel terms reported identical #DIP  [matches paper]");
    } else {
        let _ = writeln!(out, "\nper-term #DIP spreads:");
        for s in spread_note {
            let _ = writeln!(out, "  {s}");
        }
    }
    ScenarioResult { records, rendered: out, table: Some(table) }
}

/// Table 2 behind the `table2` bin: runtime of attacking LUT-based
/// insertion — baseline SAT attack vs the multi-key attack at N = 4.
pub fn table2(ctx: &ScenarioCtx) -> ScenarioResult {
    let base_scheme = if ctx.full { LutLock::paper() } else { LutLock::small() };
    let circuits: Vec<Iscas85> = if ctx.quick {
        vec![Iscas85::C880, Iscas85::C1355, Iscas85::C1908, Iscas85::C6288]
    } else {
        Iscas85::table2_set().to_vec()
    };
    let time_cap = Duration::from_secs(ctx.time_cap.unwrap_or(600));
    let seed = ctx.seed.unwrap_or(0x7AB1E2);
    let scheme = base_scheme.with_seed(seed);

    let mut out = String::new();
    let mut records = Vec::new();
    let _ = writeln!(
        out,
        "Table 2: runtime of attacking LUT-based insertion ({} key bits, {} tapped nets)",
        scheme.key_bits(),
        scheme.module_inputs()
    );
    let _ =
        writeln!(out, "baseline = plain SAT attack; this work = 16 parallel terms at N = 4");
    let _ = writeln!(
        out,
        "per-attack time cap: {} (cells show >cap when hit)\n",
        fmt_duration(time_cap)
    );

    let mut table = TextTable::new(vec![
        "Circuit",
        "Baseline",
        "Minimum",
        "Mean",
        "Maximum",
        "Maximum/Baseline",
    ]);

    for bench in circuits {
        let original = bench.build();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let locked = scheme.lock_random(&original, &mut rng).expect("lockable");
        eprintln!(
            "{}: locked with {} key bits ({} gates -> {})",
            bench,
            locked.key.len(),
            original.num_gates(),
            locked.netlist.num_gates()
        );

        // Baseline: the conventional SAT attack on the whole circuit, in
        // the textbook formulation (full circuit copies per DIP) that the
        // paper's tooling uses; dropping `.textbook(true)` would measure
        // the optimized folded engine instead.
        let mut oracle = SimOracle::new(&original).expect("keyless oracle");
        let baseline = AttackSession::builder()
            .oracle(&mut oracle)
            .textbook(true)
            .time_budget(time_cap)
            .record_dips(false)
            .build()
            .expect("oracle provided")
            .run(&locked.netlist)
            .expect("attack runs");
        let baseline_capped = baseline.status() == AttackStatus::TimeLimit;
        let baseline_time = baseline.stats().wall_time;
        records.push(
            Record::new("table2")
                .label("circuit", bench.name())
                .label("variant", "baseline")
                .attack_metrics(&baseline.stats())
                .metric("capped", u64::from(baseline_capped) as f64),
        );
        eprintln!(
            "  baseline: {} ({} DIPs, status {:?})",
            fmt_duration(baseline_time),
            baseline.stats().dips,
            baseline.status()
        );

        // This work: N = 4, 16 parallel terms.
        let mut oracle = SimOracle::new(&original).expect("keyless oracle");
        let report = AttackSession::builder()
            .oracle(&mut oracle)
            .split_effort(4)
            .strategy(SplitStrategy::FanoutCone)
            .textbook(true)
            .time_budget(time_cap)
            .record_dips(false)
            .build()
            .expect("oracle provided")
            .run(&locked.netlist)
            .expect("attack runs");
        let outcome = report.as_multi_key().expect("N > 0");
        let any_capped = outcome.reports.iter().any(|r| r.status == AttackStatus::TimeLimit);
        let min = outcome.min_task_time();
        let mean = outcome.mean_task_time();
        let max = outcome.max_task_time();
        let max_term_dips = outcome.reports.iter().map(|r| r.dips).max().unwrap_or(0);
        let min_gates = outcome.reports.iter().map(|r| r.gates_after).min().unwrap_or(0);
        eprintln!(
            "  this work: min {} mean {} max {} over {} terms (max {} DIPs, term gates >= {}){}",
            fmt_duration(min),
            fmt_duration(mean),
            fmt_duration(max),
            outcome.reports.len(),
            max_term_dips,
            min_gates,
            if any_capped { " (some terms hit the cap)" } else { "" }
        );

        let ratio = max.as_secs_f64() / baseline_time.as_secs_f64().max(1e-9);
        records.push(
            Record::new("table2")
                .label("circuit", bench.name())
                .label("variant", "multikey_n4")
                .attack_metrics(&report.stats())
                .metric("min_term_ms", ms(min))
                .metric("mean_term_ms", ms(mean))
                .metric("max_over_baseline", ratio)
                .metric("capped", u64::from(any_capped) as f64),
        );
        let fmt_capped = |d: Duration, capped: bool| {
            if capped {
                format!(">{}", fmt_duration(d))
            } else {
                fmt_duration(d)
            }
        };
        table.row(vec![
            bench.name().to_string(),
            fmt_capped(baseline_time, baseline_capped),
            fmt_duration(min),
            fmt_duration(mean),
            fmt_capped(max, any_capped),
            format!(
                "{ratio:.3}{}",
                if baseline_capped { " (lower bound on speedup)" } else { "" }
            ),
        ]);
    }

    let _ = writeln!(out, "\n{}", table.render());
    let _ =
        writeln!(out, "break-even for single-core execution of 16 terms: ratio 1/16 = 0.0625");
    ScenarioResult { records, rendered: out, table: Some(table) }
}

/// The diagnostic probe behind the `probe` bin: baseline vs per-term cost
/// across LUT sizes and simplification settings on one circuit.
pub fn probe(ctx: &ScenarioCtx) -> ScenarioResult {
    let seed = ctx.seed.unwrap_or(0x7AB1E2);
    let cap = Duration::from_secs(ctx.time_cap.unwrap_or(180));
    let circuit = if ctx.full { Iscas85::C6288 } else { Iscas85::C880 };
    let original = circuit.build();

    let mut out = String::new();
    let mut records = Vec::new();
    for (label, keys, scheme) in [
        ("8+8+8=24 keys", "24", LutLock::new(vec![3, 3], 1)),
        ("16+16+16=48 keys", "48", LutLock::new(vec![4, 4], 2)),
        ("32+32+16=80 keys", "80", LutLock::new(vec![5, 5], 2)),
    ] {
        let scheme = scheme.with_seed(seed);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let locked = match scheme.lock_random(&original, &mut rng) {
            Ok(l) => l,
            Err(e) => {
                let _ = writeln!(out, "{label}: cannot lock ({e})");
                continue;
            }
        };
        let mut oracle = SimOracle::new(&original).expect("oracle");
        let baseline = AttackSession::builder()
            .oracle(&mut oracle)
            .record_dips(false)
            .time_budget(cap)
            .build()
            .expect("oracle provided")
            .run(&locked.netlist)
            .expect("runs");
        let stats = baseline.stats();
        records.push(
            Record::new("probe")
                .label("circuit", circuit.name())
                .label("keys", keys)
                .label("variant", "baseline")
                .attack_metrics(&stats),
        );
        let _ = writeln!(
            out,
            "{} on {}: baseline {} ({} DIPs, {:?}, {} conflicts)",
            label,
            circuit,
            fmt_duration(stats.wall_time),
            stats.dips,
            baseline.status(),
            stats.solver.conflicts
        );
        for simplify in [true, false] {
            let mut oracle = SimOracle::new(&original).expect("oracle");
            let report = AttackSession::builder()
                .oracle(&mut oracle)
                .split_effort(4)
                .strategy(SplitStrategy::FanoutCone)
                .simplify(simplify)
                .record_dips(false)
                .time_budget(cap)
                .build()
                .expect("oracle provided")
                .run(&locked.netlist)
                .expect("runs");
            let outcome = report.as_multi_key().expect("N > 0");
            let max_dips = outcome.reports.iter().map(|r| r.dips).max().unwrap_or(0);
            let gates: Vec<usize> = outcome.reports.iter().map(|r| r.gates_after).collect();
            records.push(
                Record::new("probe")
                    .label("circuit", circuit.name())
                    .label("keys", keys)
                    .label("variant", if simplify { "n4_resynth" } else { "n4_pinned" })
                    .attack_metrics(&report.stats())
                    .metric("max_dips", max_dips as f64)
                    .metric("min_gates", *gates.iter().min().expect("terms") as f64)
                    .metric("max_gates", *gates.iter().max().expect("terms") as f64),
            );
            let _ = writeln!(
                out,
                "  N=4 simplify={simplify}: min {} mean {} max {} (max {} DIPs, gates {}..{}, complete={})",
                fmt_duration(outcome.min_task_time()),
                fmt_duration(outcome.mean_task_time()),
                fmt_duration(outcome.max_task_time()),
                max_dips,
                gates.iter().min().expect("terms"),
                gates.iter().max().expect("terms"),
                report.is_complete(),
            );
        }
    }
    ScenarioResult { records, rendered: out, table: None }
}

/// Picks `n` deep internal nets, spread across the circuit (the
/// `defense_probe` comparator placement).
fn deep_signals(nl: &Netlist, n: usize) -> Vec<NodeId> {
    let lv = levels(nl).expect("acyclic");
    let mut candidates: Vec<NodeId> = nl
        .node_ids()
        .filter(|&id| {
            !nl.node(id).kind().is_input() && !nl.outputs().contains(&id) && lv[id.index()] >= 3
        })
        .collect();
    // Deterministic spread: sort by level descending, then stride.
    candidates.sort_by_key(|id| std::cmp::Reverse(lv[id.index()]));
    let stride = (candidates.len() / n.max(1)).max(1);
    candidates.into_iter().step_by(stride).take(n).collect()
}

/// The defense probe behind the `defense_probe` bin: SARLock comparing on
/// primary inputs vs on deep internal nets, N = 0..3.
pub fn defense_probe(ctx: &ScenarioCtx) -> ScenarioResult {
    let kw = 6usize;
    let circuit = if ctx.full { Iscas85::C7552 } else { Iscas85::C880 };
    let original = circuit.build();
    let key = Key::from_u64(ctx.seed.unwrap_or(0b101101) & ((1 << kw) - 1), kw);

    let mut out = String::new();
    let mut records = Vec::new();
    let _ = writeln!(out, "Defense probe: SARLock |K| = {kw} on {circuit}");
    let _ = writeln!(out, "attack = multi-key, fan-out-cone splitting, N = 0..3\n");

    let input_locked = Sarlock::new(kw).lock(&original, &key).expect("lockable");
    let signals = deep_signals(&original, kw);
    let names: Vec<&str> = signals.iter().map(|&s| original.node_name(s)).collect();
    let _ = writeln!(out, "internal comparator nets: {names:?}\n");
    let internal_locked =
        lock_sarlock_on_signals(&original, &signals, &key, None).expect("lockable");

    let mut table = TextTable::new(vec![
        "variant",
        "N=0 #DIP",
        "N=1 #DIP",
        "N=2 #DIP",
        "N=3 #DIP",
        "N=3 max time",
    ]);
    for (label, variant, locked) in [
        ("SARLock on inputs (paper)", "inputs", &input_locked.netlist),
        ("SARLock on internal nets (defense)", "internal", &internal_locked.netlist),
    ] {
        let mut row = vec![label.to_string()];
        let mut last_time = String::new();
        for n in 0..=3usize {
            let mut oracle = SimOracle::new(&original).expect("oracle");
            let report = AttackSession::builder()
                .oracle(&mut oracle)
                .split_effort(n)
                .strategy(SplitStrategy::FanoutCone)
                .record_dips(false)
                .build()
                .expect("oracle provided")
                .run(locked)
                .expect("runs");
            assert!(report.is_complete(), "{label} N={n}");
            let max_dips = match report.as_multi_key() {
                Some(outcome) => outcome.reports.iter().map(|r| r.dips).max().unwrap_or(0),
                None => report.stats().dips,
            };
            records.push(
                Record::new("defense_probe")
                    .label("circuit", circuit.name())
                    .label("variant", variant)
                    .label("n", n)
                    .attack_metrics(&report.stats())
                    .metric("max_dips", max_dips as f64),
            );
            row.push(format!("{max_dips}"));
            last_time = fmt_duration(report.stats().max_subtask_time());
        }
        row.push(last_time);
        table.row(row);
    }
    let _ = writeln!(out, "{}", table.render());
    let _ = writeln!(out, "input-comparator #DIP halves per split level; the internal-net");
    let _ = writeln!(out, "variant resists splitting because no small set of input ports");
    let _ = writeln!(out, "pins the comparator's observed value.");
    ScenarioResult { records, rendered: out, table: Some(table) }
}

/// The split-port heuristic ablation behind the `ablation_split` bin:
/// fan-out-cone vs first-inputs vs random splitting on SARLock.
pub fn ablation_split(ctx: &ScenarioCtx) -> ScenarioResult {
    let kw = if ctx.full { 10 } else { 8 };
    let seed = ctx.seed.unwrap_or(0x5EED);

    // SARLock compares on inputs *after* the first few declared ones so
    // that FirstInputs genuinely misses them.
    let circuit = if ctx.quick { Iscas85::C880 } else { Iscas85::C7552 };
    let original = circuit.build();
    let key = Key::from_u64(seed & ((1 << kw) - 1), kw);
    let locked = Sarlock::new(kw)
        .with_compare_inputs((10..10 + kw).collect())
        .lock(&original, &key)
        .expect("lockable");

    let mut out = String::new();
    let mut records = Vec::new();
    let _ = writeln!(
        out,
        "Split-strategy ablation: SARLock(|K|={kw}) on {}, N = 3, comparator on inputs 10..{}",
        circuit,
        10 + kw
    );
    let _ = writeln!(out, "baseline (N=0) needs ~2^{kw} DIPs\n");

    let mut table = TextTable::new(vec!["strategy", "#DIP (max over terms)", "max term time"]);
    for (name, tag, strategy) in [
        ("fan-out cone (paper)", "fanout_cone", SplitStrategy::FanoutCone),
        ("first inputs", "first_inputs", SplitStrategy::FirstInputs),
        ("random", "random", SplitStrategy::Random { seed }),
    ] {
        let mut oracle = SimOracle::new(&original).expect("oracle");
        let report = AttackSession::builder()
            .oracle(&mut oracle)
            .split_effort(3)
            .strategy(strategy)
            .record_dips(false)
            .build()
            .expect("oracle provided")
            .run(&locked.netlist)
            .expect("attack runs");
        assert!(report.is_complete());
        let outcome = report.as_multi_key().expect("N > 0");
        let max_dips = outcome.reports.iter().map(|r| r.dips).max().unwrap_or(0);
        records.push(
            Record::new("ablation_split")
                .label("circuit", circuit.name())
                .label("strategy", tag)
                .attack_metrics(&report.stats())
                .metric("max_dips", max_dips as f64),
        );
        table.row(vec![
            name.to_string(),
            format!("{max_dips}"),
            fmt_duration(report.stats().max_subtask_time()),
        ]);
        let picked: Vec<&str> =
            report.split_inputs().iter().map(|&id| locked.netlist.node_name(id)).collect();
        eprintln!("  {name}: split ports {picked:?}");
    }
    let _ = writeln!(out, "{}", table.render());
    let _ = writeln!(out, "fan-out cone analysis finds the comparator inputs, so every");
    let _ = writeln!(out, "split level halves the remaining key space; naive choices");
    let _ = writeln!(out, "leave #DIP near the baseline 2^|K|.");
    ScenarioResult { records, rendered: out, table: Some(table) }
}

/// The re-synthesis ablation behind the `ablation_simplify` bin:
/// Algorithm 1 line 4 on vs off, on a LUT-locked circuit.
pub fn ablation_simplify(ctx: &ScenarioCtx) -> ScenarioResult {
    let circuit = if ctx.quick { Iscas85::C880 } else { Iscas85::C1908 };
    let scheme = if ctx.full { LutLock::paper() } else { LutLock::small() };
    let seed = ctx.seed.unwrap_or(0xAB1A7E);
    let scheme = scheme.with_seed(seed);

    let original = circuit.build();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let locked = scheme.lock_random(&original, &mut rng).expect("lockable");

    let mut out = String::new();
    let mut records = Vec::new();
    let _ = writeln!(
        out,
        "Re-synthesis ablation: LUT({} keys) on {}, N = 4, 16 parallel terms\n",
        scheme.key_bits(),
        circuit
    );

    let mut table = TextTable::new(vec![
        "variant",
        "term gates (min..max)",
        "max term time",
        "mean term time",
    ]);
    for (name, tag, simplify) in [
        ("with re-synthesis (paper)", "resynth", true),
        ("without (pinned only)", "pinned", false),
    ] {
        let mut builder = AttackSession::builder()
            .split_effort(4)
            .strategy(SplitStrategy::FanoutCone)
            .simplify(simplify)
            .record_dips(false);
        if let Some(cap) = ctx.time_cap {
            builder = builder.time_budget(Duration::from_secs(cap));
        }
        let mut oracle = SimOracle::new(&original).expect("oracle");
        let report = builder
            .oracle(&mut oracle)
            .build()
            .expect("oracle provided")
            .run(&locked.netlist)
            .expect("attack runs");
        assert!(report.is_complete());
        let outcome = report.as_multi_key().expect("N > 0");
        let min_g = outcome.reports.iter().map(|r| r.gates_after).min().unwrap_or(0);
        let max_g = outcome.reports.iter().map(|r| r.gates_after).max().unwrap_or(0);
        records.push(
            Record::new("ablation_simplify")
                .label("circuit", circuit.name())
                .label("variant", tag)
                .attack_metrics(&report.stats())
                .metric("min_gates", min_g as f64)
                .metric("max_gates", max_g as f64)
                .metric("mean_term_ms", ms(outcome.mean_task_time())),
        );
        table.row(vec![
            name.to_string(),
            format!("{min_g}..{max_g}"),
            fmt_duration(outcome.max_task_time()),
            fmt_duration(outcome.mean_task_time()),
        ]);
        eprintln!("  {name}: done in {}", fmt_duration(report.stats().wall_time));
    }
    let _ = writeln!(out, "{}", table.render());
    let _ = writeln!(
        out,
        "locked design has {} gates; pinning alone keeps them all, while",
        locked.netlist.num_gates()
    );
    let _ = writeln!(out, "re-synthesis folds the pinned logic away before the SAT attack.");
    ScenarioResult { records, rendered: out, table: Some(table) }
}

/// Fig. 1(a) behind the `fig1a` bin: the SARLock error distribution of the
/// running example (`|I| = |K| = 3`, correct key 101).
pub fn fig1a(_ctx: &ScenarioCtx) -> ScenarioResult {
    // The paper reads bit strings MSB-first: "101" has MSB 1. Our Key is
    // bit0-first, so build 101 (MSB-first) as bits [1,0,1] reversed.
    let k_star_msb_first = [true, false, true];
    let key = Key::new(k_star_msb_first.iter().rev().copied().collect());
    let nl = majority3();
    let locked = Sarlock::new(3).lock(&nl, &key).expect("valid lock");

    let mut orig = Simulator::new(&nl).expect("acyclic");
    let mut lsim = Simulator::new(&locked.netlist).expect("acyclic");

    let mut header = vec!["Input \\ Key".to_string()];
    for k in 0..8u64 {
        header.push(format!("{k:03b}"));
    }
    let mut table = TextTable::new(header);
    for i in 0..8u64 {
        // Paper convention: the row label is MSB-first; our simulator takes
        // bit0-first vectors, and the comparator compares input j with key
        // bit j, so MSB-first labels match when both are reversed alike.
        let ibits: Vec<bool> = (0..3).rev().map(|j| i >> j & 1 == 1).collect();
        let want = orig.eval(&ibits, &[]);
        let mut row = vec![format!("{i:03b}")];
        for k in 0..8u64 {
            let kbits: Vec<bool> = (0..3).rev().map(|j| k >> j & 1 == 1).collect();
            let got = lsim.eval(&ibits, &kbits);
            row.push(if got == want { "ok".to_string() } else { "X".to_string() });
        }
        table.row(row);
    }

    let mut out = String::new();
    let _ = writeln!(out, "Fig. 1(a): SARLock error distribution, |I| = |K| = 3, k* = 101");
    let _ = writeln!(out, "(X marks input/key pairs where the locked circuit errs)");
    let _ = writeln!(out);
    let _ = writeln!(out, "{}", table.render());
    let _ = writeln!(out, "Reading: every wrong key k errs exactly at input i = k; the");
    let _ = writeln!(out, "correct key column (101) and the row i = k* are error-free,");
    let _ = writeln!(out, "so each SAT-attack DIP can eliminate only one wrong key.");

    // Sanity assertions so the scenario doubles as an executable check.
    let mut errors = 0usize;
    for i in 0..8u64 {
        let ibits = bits_of(i, 3);
        let want = orig.eval(&ibits, &[]);
        for k in 0..8u64 {
            let kbits = bits_of(k, 3);
            if lsim.eval(&ibits, &kbits) != want {
                errors += 1;
                assert_eq!(i, k, "errors only on the diagonal");
            }
        }
    }
    assert_eq!(errors, 7, "exactly one error per wrong key");
    let _ = writeln!(out);
    let _ =
        writeln!(out, "check: 7 wrong keys x 1 corrupted pattern each = {errors} errors  [ok]");

    let records = vec![Record::new("fig1a")
        .label("circuit", "maj3")
        .metric("errors", errors as f64)
        .metric("wrong_keys", 7.0)];
    ScenarioResult { records, rendered: out, table: Some(table) }
}

/// Adaptive recursive splitting vs the paper's static grid on SARLock —
/// the scheme whose term hardness motivates the budget-driven term tree.
/// Every cell is recombined and formally verified; adaptive cells also
/// assert that the tree actually grew past its root. Only reachable
/// through the harness (there is no standalone bin).
pub fn adaptive(ctx: &ScenarioCtx) -> ScenarioResult {
    let seed = ctx.seed.unwrap_or(0xADA97);
    let circuits: Vec<Iscas85> =
        if ctx.quick { vec![Iscas85::C432] } else { vec![Iscas85::C432, Iscas85::C880] };
    let key_width = 6usize;
    // (mode label, root N, per-term DIP budget).
    let variants: [(&str, usize, Option<u64>); 3] = [
        ("static_n2", 2, None),
        ("adaptive_n1_b8", 1, Some(8)),
        ("adaptive_n0_b16", 0, Some(16)),
    ];

    let mut out = String::new();
    let mut records = Vec::new();
    let _ = writeln!(
        out,
        "Adaptive splitting on SARLock |K| = {key_width}: static grid vs budget-driven term \
         tree"
    );
    let _ = writeln!(out, "cells: total #DIP / leaves @ max depth (resplits); all verified\n");

    let mut table = TextTable::new(vec![
        "circuit / mode".to_string(),
        "dips".to_string(),
        "leaves".to_string(),
        "depth".to_string(),
        "resplits".to_string(),
        "time".to_string(),
    ]);

    for circuit in &circuits {
        let original = circuit.build();
        let key = Key::from_u64(seed & ((1 << key_width) - 1), key_width);
        let locked = Sarlock::new(key_width).lock(&original, &key).expect("lockable");
        for (mode, root_n, budget) in variants {
            let mut oracle = SimOracle::new(&original).expect("keyless oracle");
            let mut builder = AttackSession::builder()
                .oracle(&mut oracle)
                .split_effort(root_n)
                // Sequential execution keeps the resplit order — and with
                // it every counter — deterministic for the regression gate.
                .threads(1)
                .record_dips(false);
            if let Some(b) = budget {
                builder = builder.term_dip_budget(b);
            }
            let report = builder
                .build()
                .expect("oracle provided")
                .run(&locked.netlist)
                .expect("attack runs");
            assert!(report.is_complete(), "{}/{mode} must succeed", circuit.name());
            let outcome = report.as_multi_key().expect("multi-key engine");
            let (leaves, depth, resplits) =
                (outcome.reports.len(), outcome.max_depth(), outcome.resplit_reports.len());
            if budget.is_some() {
                assert!(
                    depth > root_n,
                    "{}/{mode}: the budget must subdivide at least one term",
                    circuit.name()
                );
            }
            let recombined = report.recombine(&locked.netlist).expect("recombine");
            let verified = check_equivalence(&original, &recombined).expect("equiv")
                == EquivResult::Equivalent;
            assert!(verified, "{}/{mode} must recombine", circuit.name());
            let stats = report.stats();
            records.push(
                Record::new("adaptive")
                    .label("circuit", circuit.name())
                    .label("mode", mode)
                    .attack_metrics(&stats)
                    .metric("leaves", leaves as f64)
                    .metric("max_depth", depth as f64)
                    .metric("resplits", resplits as f64)
                    .metric("verified", 1.0),
            );
            table.row(vec![
                format!("{}/{mode}", circuit.name()),
                format!("{}", stats.dips),
                format!("{leaves}"),
                format!("{depth}"),
                format!("{resplits}"),
                fmt_duration(stats.wall_time),
            ]);
            eprintln!("{}/{mode} done", circuit.name());
        }
    }

    let _ = writeln!(out, "{}", table.render());
    let _ = writeln!(out, "static N spends the same effort on every sub-space; the budgeted");
    let _ = writeln!(out, "tree spends splits only where terms refuse to converge, and the");
    let _ = writeln!(out, "mixed-depth prefix tree still recombines to the exact design.");
    ScenarioResult { records, rendered: out, table: Some(table) }
}

/// CNF miter-encoding cost per scheme × circuit — the substrate the whole
/// attack stands on, measured without running any attack. Only reachable
/// through the harness (there is no standalone bin).
pub fn encode(ctx: &ScenarioCtx) -> ScenarioResult {
    let seed = ctx.seed.unwrap_or(0xE4C0DE);
    let circuits: Vec<Iscas85> = if ctx.quick {
        vec![Iscas85::C432, Iscas85::C880]
    } else if ctx.full {
        Iscas85::all().to_vec()
    } else {
        vec![Iscas85::C432, Iscas85::C880, Iscas85::C1908]
    };
    let schemes = scheme_roster(seed);

    let mut out = String::new();
    let mut records = Vec::new();
    let _ = writeln!(
        out,
        "Miter encoding cost: {} schemes x {} circuits (Tseitin CNF of two locked copies)",
        schemes.len(),
        circuits.len()
    );
    let _ = writeln!(out, "cells: CNF vars / clauses (encode time)\n");

    let mut table =
        TextTable::new(vec!["circuit / scheme", "key bits", "vars", "clauses", "time"]);
    for circuit in &circuits {
        let original = circuit.build();
        for scheme in &schemes {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let locked = match scheme.lock_random(&original, &mut rng) {
                Ok(locked) => locked,
                Err(e) => {
                    eprintln!("{circuit}/{}: cannot lock ({e})", scheme.name());
                    continue;
                }
            };
            let started = Instant::now();
            let mut solver = Solver::new();
            build_miter(&mut solver, &locked.netlist, &locked.netlist).expect("acyclic");
            let elapsed = started.elapsed();
            records.push(
                Record::new("encode")
                    .label("circuit", circuit.name())
                    .label("scheme", scheme.name())
                    .metric("encode_ms", ms(elapsed))
                    .metric("cnf_vars", solver.num_vars() as f64)
                    .metric("cnf_clauses", solver.num_clauses() as f64)
                    .metric("key_bits", locked.key.len() as f64)
                    .metric("locked_gates", locked.netlist.num_gates() as f64),
            );
            table.row(vec![
                format!("{}/{}", circuit.name(), scheme.name()),
                format!("{}", locked.key.len()),
                format!("{}", solver.num_vars()),
                format!("{}", solver.num_clauses()),
                fmt_duration(elapsed),
            ]);
        }
    }
    let _ = writeln!(out, "{}", table.render());
    let _ = writeln!(out, "the miter dominates each attack's base CNF; per-DIP copies then");
    let _ = writeln!(out, "grow it (folded copies add only the key cones).");
    ScenarioResult { records, rendered: out, table: Some(table) }
}
