//! The unified benchmark harness: a scenario registry, machine-readable
//! telemetry, and baseline comparison for CI regression gating.
//!
//! Every evaluation binary in this crate is a registered [`Scenario`]: a
//! named, tagged function that returns a structured [`ScenarioResult`]
//! (one [`Record`] per benchmark cell, plus the human-readable rendering
//! the standalone bins print). The `bench` bin runs any subset of the
//! registry, groups the records by [`Group`], and writes one
//! `BENCH_<group>.json` telemetry file per group — see [`document`] for
//! the schema. [`compare`] checks a run against a committed baseline with
//! per-metric-class thresholds, which is what the CI perf-regression gate
//! runs.
//!
//! # Telemetry schema (`polykey-bench/v1`)
//!
//! ```json
//! {
//!   "schema": "polykey-bench/v1",
//!   "group": "attack",
//!   "mode": "quick",
//!   "records": [
//!     {
//!       "scenario": "matrix",
//!       "labels": {"circuit": "c432", "scheme": "rll", "n": "0"},
//!       "metrics": {"wall_ms": 12.5, "dips": 5, "oracle_rounds": 5,
//!                   "oracle_queries": 5, "epochs": 5, "conflicts": 113,
//!                   "restarts": 1, "learnt_clauses": 95}
//!     }
//!   ]
//! }
//! ```
//!
//! `labels` identify the cell (circuit, scheme, sweep point); `metrics`
//! are numbers. Metric names ending in `_ms` are wall-clock timings;
//! the counter names listed in [`is_cost_metric`] are deterministic work
//! counters. Both classes are regression-gated; all other metrics are
//! informational.

pub mod scenarios;

use std::time::Duration;

use polykey_attack::AttackStats;

use crate::json::Json;
use crate::TextTable;

/// Version tag carried by every emitted document; [`parse_document`]
/// rejects documents from a different schema generation.
pub const SCHEMA: &str = "polykey-bench/v1";

/// Scaled-down / paper-scale knobs shared by every scenario, mirroring the
/// standalone bins' `--quick` / `--full` / `--time-cap` / `--seed` flags.
#[derive(Clone, Debug, Default)]
pub struct ScenarioCtx {
    /// Run the scaled-down configuration (fast; CI-friendly).
    pub quick: bool,
    /// Run the full paper-scale configuration.
    pub full: bool,
    /// Per-attack time cap in seconds, if any.
    pub time_cap: Option<u64>,
    /// Random seed override.
    pub seed: Option<u64>,
}

/// Which telemetry file a scenario's records land in.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Group {
    /// Oracle-guided attack scenarios: `BENCH_attack.json`.
    Attack,
    /// Encoding / simulation scenarios: `BENCH_encode.json`.
    Encode,
}

impl Group {
    /// The group's name as used in tags and the `group` document field.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Group::Attack => "attack",
            Group::Encode => "encode",
        }
    }

    /// The telemetry file this group is written to.
    #[must_use]
    pub fn file_name(self) -> &'static str {
        match self {
            Group::Attack => "BENCH_attack.json",
            Group::Encode => "BENCH_encode.json",
        }
    }

    /// Every group, in emission order.
    #[must_use]
    pub fn all() -> [Group; 2] {
        [Group::Attack, Group::Encode]
    }
}

/// One benchmark cell: labels identifying it plus its measured metrics.
///
/// Labels and metrics keep insertion order so emitted JSON is stable and
/// diff-friendly; record identity for comparison sorts the labels (see
/// [`Record::key`]).
#[derive(Clone, Debug, PartialEq)]
pub struct Record {
    /// The scenario that produced this cell.
    pub scenario: String,
    /// Cell coordinates, e.g. `circuit=c432`, `scheme=rll`, `n=2`.
    pub labels: Vec<(String, String)>,
    /// Measured numbers, e.g. `wall_ms`, `dips`, `conflicts`.
    pub metrics: Vec<(String, f64)>,
}

impl Record {
    /// Starts an empty record for `scenario`.
    #[must_use]
    pub fn new(scenario: &str) -> Record {
        Record { scenario: scenario.to_string(), labels: Vec::new(), metrics: Vec::new() }
    }

    /// Appends a label (builder-style).
    #[must_use]
    pub fn label(mut self, name: &str, value: impl std::fmt::Display) -> Record {
        self.labels.push((name.to_string(), value.to_string()));
        self
    }

    /// Appends a metric (builder-style).
    #[must_use]
    pub fn metric(mut self, name: &str, value: f64) -> Record {
        self.metrics.push((name.to_string(), value));
        self
    }

    /// Appends the uniform attack counters every attack cell reports:
    /// `wall_ms`, `max_term_ms`, `dips`, `oracle_queries`,
    /// `oracle_rounds`, `epochs`, `conflicts`, `restarts`,
    /// `learnt_clauses`.
    #[must_use]
    pub fn attack_metrics(self, stats: &AttackStats) -> Record {
        self.metric("wall_ms", ms(stats.wall_time))
            .metric("max_term_ms", ms(stats.max_subtask_time()))
            .metric("dips", stats.dips as f64)
            .metric("oracle_queries", stats.oracle_queries as f64)
            .metric("oracle_rounds", stats.oracle_rounds as f64)
            .metric("epochs", stats.epochs as f64)
            .metric("conflicts", stats.solver.conflicts as f64)
            .metric("restarts", stats.solver.restarts as f64)
            .metric("learnt_clauses", stats.solver.learnt_clauses as f64)
    }

    /// Looks up a metric by name.
    #[must_use]
    pub fn metric_value(&self, name: &str) -> Option<f64> {
        self.metrics.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// The cell's identity for baseline matching: scenario plus sorted
    /// labels, e.g. `matrix{circuit=c432, n=0, scheme=rll}`.
    #[must_use]
    pub fn key(&self) -> String {
        let mut labels = self.labels.clone();
        labels.sort();
        let body: Vec<String> = labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
        format!("{}{{{}}}", self.scenario, body.join(", "))
    }
}

/// Converts a duration to fractional milliseconds (the unit of every
/// `*_ms` metric).
#[must_use]
pub fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// What running one scenario produced.
pub struct ScenarioResult {
    /// One record per benchmark cell.
    pub records: Vec<Record>,
    /// The human-readable output the standalone bin prints.
    pub rendered: String,
    /// The scenario's main table, for `--csv` compatibility.
    pub table: Option<TextTable>,
}

/// A registered benchmark scenario.
pub struct Scenario {
    /// Unique name; `bench --only <name>` selects it and the standalone
    /// bin of the same name runs exactly this scenario.
    pub name: &'static str,
    /// The telemetry file the records land in.
    pub group: Group,
    /// Free-form tags for `bench --tag <t>` selection (the group name
    /// always matches too).
    pub tags: &'static [&'static str],
    /// Whether the scenario is part of the `--quick` CI subset.
    pub quick: bool,
    /// One-line description for `bench --list`.
    pub summary: &'static str,
    /// Runs the scenario.
    pub run: fn(&ScenarioCtx) -> ScenarioResult,
}

impl Scenario {
    /// True iff `tag` equals the group name or one of the scenario tags.
    #[must_use]
    pub fn has_tag(&self, tag: &str) -> bool {
        self.group.as_str() == tag || self.tags.contains(&tag)
    }
}

/// The full scenario registry: every evaluation binary of this crate,
/// plus the harness-only scenarios (`adaptive`, `encode`) that have no
/// standalone bin.
#[must_use]
pub fn registry() -> &'static [Scenario] {
    &[
        Scenario {
            name: "matrix",
            group: Group::Attack,
            tags: &["sweep", "session"],
            quick: true,
            summary: "LockScheme x splitting effort x circuit sweep, formally verified",
            run: scenarios::matrix,
        },
        Scenario {
            name: "batch",
            group: Group::Attack,
            tags: &["sweep", "batching"],
            quick: true,
            summary: "batched-DIP sweep: oracle rounds vs queries at widths 1/8/32/64",
            run: scenarios::batch,
        },
        Scenario {
            name: "adaptive",
            group: Group::Attack,
            tags: &["sweep", "adaptive"],
            quick: true,
            summary: "adaptive budget-driven term tree vs static N on SARLock",
            run: scenarios::adaptive,
        },
        Scenario {
            name: "table1",
            group: Group::Attack,
            tags: &["paper"],
            quick: false,
            summary: "Table 1: #DIP vs splitting effort on SARLock-locked c7552",
            run: scenarios::table1,
        },
        Scenario {
            name: "table2",
            group: Group::Attack,
            tags: &["paper"],
            quick: false,
            summary: "Table 2: runtime vs LUT-based insertion, baseline vs N=4",
            run: scenarios::table2,
        },
        Scenario {
            name: "probe",
            group: Group::Attack,
            tags: &["diagnostic"],
            quick: false,
            summary: "diagnostic probe: baseline vs per-term cost across LUT sizes",
            run: scenarios::probe,
        },
        Scenario {
            name: "defense_probe",
            group: Group::Attack,
            tags: &["diagnostic", "defense"],
            quick: false,
            summary: "defense probe: SARLock on inputs vs on internal nets",
            run: scenarios::defense_probe,
        },
        Scenario {
            name: "ablation_split",
            group: Group::Attack,
            tags: &["ablation"],
            quick: false,
            summary: "split-port heuristic ablation (fan-out cone vs naive)",
            run: scenarios::ablation_split,
        },
        Scenario {
            name: "ablation_simplify",
            group: Group::Attack,
            tags: &["ablation"],
            quick: false,
            summary: "Alg. 1 line 4 re-synthesis ablation",
            run: scenarios::ablation_simplify,
        },
        Scenario {
            name: "fig1a",
            group: Group::Encode,
            tags: &["paper"],
            quick: true,
            summary: "Fig. 1(a): SARLock error distribution on the running example",
            run: scenarios::fig1a,
        },
        Scenario {
            name: "encode",
            group: Group::Encode,
            tags: &["cnf"],
            quick: true,
            summary: "CNF miter encoding cost per scheme x circuit",
            run: scenarios::encode,
        },
    ]
}

/// Looks up a scenario by name.
#[must_use]
pub fn find(name: &str) -> Option<&'static Scenario> {
    registry().iter().find(|s| s.name == name)
}

/// Runs the named scenario (`None` if it is not registered).
#[must_use]
pub fn run_scenario(name: &str, ctx: &ScenarioCtx) -> Option<ScenarioResult> {
    find(name).map(|s| (s.run)(ctx))
}

/// Builds a `polykey-bench/v1` telemetry document from `records`.
///
/// `group_label` is `"attack"` / `"encode"` for the per-group
/// `BENCH_*.json` files and `"all"` for combined baseline files; `mode`
/// records how the run was scaled (`"quick"`, `"default"`, `"full"`).
#[must_use]
pub fn document(group_label: &str, mode: &str, records: &[Record]) -> Json {
    let records: Vec<Json> = records
        .iter()
        .map(|r| {
            Json::Object(vec![
                ("scenario".into(), Json::String(r.scenario.clone())),
                (
                    "labels".into(),
                    Json::Object(
                        r.labels
                            .iter()
                            .map(|(k, v)| (k.clone(), Json::String(v.clone())))
                            .collect(),
                    ),
                ),
                (
                    "metrics".into(),
                    Json::Object(
                        r.metrics.iter().map(|(k, v)| (k.clone(), Json::Number(*v))).collect(),
                    ),
                ),
            ])
        })
        .collect();
    Json::Object(vec![
        ("schema".into(), Json::String(SCHEMA.into())),
        ("group".into(), Json::String(group_label.into())),
        ("mode".into(), Json::String(mode.into())),
        ("records".into(), Json::Array(records)),
    ])
}

/// Parses a `polykey-bench/v1` document back into records — the inverse
/// of [`document`], used for `--baseline` files and by the tests.
///
/// # Errors
///
/// A human-readable message on malformed JSON, a wrong `schema` tag, or a
/// structurally invalid record.
pub fn parse_document(text: &str) -> Result<Vec<Record>, String> {
    let doc = Json::parse(text).map_err(|e| e.to_string())?;
    match doc.get("schema").and_then(Json::as_str) {
        Some(SCHEMA) => {}
        Some(other) => return Err(format!("unsupported schema `{other}` (want `{SCHEMA}`)")),
        None => return Err("missing `schema` field".into()),
    }
    let records =
        doc.get("records").and_then(Json::as_array).ok_or("missing `records` array")?;
    records
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let scenario = r
                .get("scenario")
                .and_then(Json::as_str)
                .ok_or(format!("record {i}: missing `scenario`"))?
                .to_string();
            let labels = r
                .get("labels")
                .and_then(Json::as_object)
                .ok_or(format!("record {i}: missing `labels`"))?
                .iter()
                .map(|(k, v)| {
                    v.as_str()
                        .map(|v| (k.clone(), v.to_string()))
                        .ok_or(format!("record {i}: label `{k}` is not a string"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            let metrics = r
                .get("metrics")
                .and_then(Json::as_object)
                .ok_or(format!("record {i}: missing `metrics`"))?
                .iter()
                .map(|(k, v)| {
                    v.as_f64()
                        .map(|v| (k.clone(), v))
                        .ok_or(format!("record {i}: metric `{k}` is not a number"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Record { scenario, labels, metrics })
        })
        .collect()
}

/// Counter metrics that are regression-gated alongside the `*_ms`
/// timings. Everything else (`speedup`, `ratio`, shape descriptors) is
/// informational: it may legitimately move in either direction.
const COST_COUNTERS: &[&str] = &[
    "dips",
    "max_dips",
    "min_dips",
    "oracle_queries",
    "oracle_rounds",
    "epochs",
    "conflicts",
    "restarts",
    "learnt_clauses",
    "cnf_vars",
    "cnf_clauses",
    "resplits",
    "leaves",
];

/// True iff `name` is a cost metric (lower is better): a `*_ms` timing or
/// one of the gated work counters.
#[must_use]
pub fn is_cost_metric(name: &str) -> bool {
    name.ends_with("_ms") || COST_COUNTERS.contains(&name)
}

/// Synthesizes one aggregate record per scenario (labelled
/// `cell=__total__`) summing every cost metric over that scenario's
/// cells.
///
/// Individual quick-mode cells often sit below the timing noise floor
/// ([`CompareConfig::min_time_ms`]), which would leave wall-clock time
/// effectively ungated; the per-scenario totals telescope above the
/// floor and average out per-cell jitter, so a broad slowdown is caught
/// even when every single cell is fast. The `bench` bin appends these to
/// every run (and hence to every saved baseline) automatically.
#[must_use]
pub fn scenario_totals(records: &[Record]) -> Vec<Record> {
    let mut totals: Vec<Record> = Vec::new();
    for record in records {
        let total = match totals.iter_mut().find(|t| t.scenario == record.scenario) {
            Some(total) => total,
            None => {
                totals.push(Record::new(&record.scenario).label("cell", "__total__"));
                totals.last_mut().expect("just pushed")
            }
        };
        for (name, value) in &record.metrics {
            if !is_cost_metric(name) {
                continue;
            }
            match total.metrics.iter_mut().find(|(n, _)| n == name) {
                Some((_, sum)) => *sum += value,
                None => total.metrics.push((name.clone(), *value)),
            }
        }
    }
    totals
}

/// Thresholds for [`compare`]. All bounds are on the `current / baseline`
/// ratio of cost metrics; increases beyond them are regressions.
#[derive(Clone, Debug)]
pub struct CompareConfig {
    /// Allowed ratio for `*_ms` timing metrics. Generous by default (CI
    /// machines are noisy); tighten locally with `--threshold`.
    pub time_ratio: f64,
    /// Allowed ratio for deterministic work counters.
    pub count_ratio: f64,
    /// Timing cells whose baseline is below this many milliseconds are
    /// skipped: sub-noise-floor ratios are meaningless.
    pub min_time_ms: f64,
    /// Absolute slack added to counter bounds so near-zero baselines
    /// (e.g. `restarts = 0`) do not produce infinite ratios.
    pub count_slack: f64,
}

impl Default for CompareConfig {
    fn default() -> CompareConfig {
        CompareConfig {
            time_ratio: 3.0,
            count_ratio: 2.0,
            min_time_ms: 25.0,
            count_slack: 16.0,
        }
    }
}

impl CompareConfig {
    /// Scales both ratio bounds to `threshold` (the CLI `--threshold`
    /// override).
    #[must_use]
    pub fn with_threshold(threshold: f64) -> CompareConfig {
        CompareConfig {
            time_ratio: threshold,
            count_ratio: threshold,
            ..CompareConfig::default()
        }
    }
}

/// One metric that regressed past its threshold.
#[derive(Clone, Debug)]
pub struct Regression {
    /// The cell, as [`Record::key`].
    pub cell: String,
    /// The offending metric.
    pub metric: String,
    /// Its baseline value.
    pub baseline: f64,
    /// Its current value.
    pub current: f64,
    /// The maximum the threshold allowed.
    pub limit: f64,
}

/// The outcome of comparing a run against a baseline.
#[derive(Clone, Debug, Default)]
pub struct CompareReport {
    /// Metrics that regressed past their thresholds.
    pub regressions: Vec<Regression>,
    /// Baseline cells with no matching cell in the current run (a
    /// timed-out attack, lost coverage, or a stale baseline); any entry
    /// fails the comparison.
    pub missing_cells: Vec<String>,
    /// Gated baseline metrics absent from their matching current cell
    /// (`"<cell> <metric>"`); any entry fails the comparison.
    pub missing_metrics: Vec<String>,
    /// Cells present in both runs.
    pub matched_cells: usize,
    /// Cost metrics actually checked.
    pub checked_metrics: usize,
}

impl CompareReport {
    /// True iff no metric regressed and every baseline cell and gated
    /// metric was present.
    ///
    /// Vanished cells and vanished metrics fail deliberately: either one
    /// means the gate's coverage silently shrank — a cell vanishes when an
    /// attack times out (no record at all), a metric vanishes when a
    /// scenario stops emitting it — and a stale-but-green gate is worse
    /// than a loud one. Refreshing the baseline is the reviewed, explicit
    /// way to shrink coverage.
    #[must_use]
    pub fn is_pass(&self) -> bool {
        self.regressions.is_empty()
            && self.missing_cells.is_empty()
            && self.missing_metrics.is_empty()
    }

    /// A human-readable summary (one line per regression / missing cell).
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for r in &self.regressions {
            // The growth ratio is reported only when the baseline supports
            // one: a zero baseline would print `inf`/`NaN` noise.
            let ratio = if r.baseline > 0.0 {
                format!(" ({:.2}x)", r.current / r.baseline)
            } else {
                String::new()
            };
            let _ = writeln!(
                out,
                "REGRESSION {} {}: {:.2} -> {:.2} (limit {:.2}){ratio}",
                r.cell, r.metric, r.baseline, r.current, r.limit
            );
        }
        for cell in &self.missing_cells {
            let _ = writeln!(
                out,
                "MISSING {cell}: no matching cell in this run (timed out, lost \
                 coverage, or stale baseline — refresh bench/baselines/)"
            );
        }
        for entry in &self.missing_metrics {
            let _ = writeln!(
                out,
                "MISSING METRIC {entry}: gated in the baseline but not emitted \
                 by this run (refresh bench/baselines/)"
            );
        }
        let _ = writeln!(
            out,
            "compared {} cells / {} cost metrics: {}",
            self.matched_cells,
            self.checked_metrics,
            if self.is_pass() {
                "PASS".to_string()
            } else {
                format!(
                    "FAIL ({} regressions, {} missing cells, {} missing metrics)",
                    self.regressions.len(),
                    self.missing_cells.len(),
                    self.missing_metrics.len()
                )
            }
        );
        out
    }
}

/// Compares the `current` run against `baseline` records.
///
/// For every baseline cell found in the current run, each cost metric
/// (see [`is_cost_metric`]) is bounded: timings by
/// `baseline * time_ratio` (skipped below the noise floor), counters by
/// `baseline * count_ratio + count_slack`. Baseline cells *absent* from
/// the current run fail the comparison, as do gated baseline metrics
/// their matching cell no longer emits (see [`CompareReport::is_pass`]);
/// new cells and metrics that only exist in the current run pass
/// automatically. Compare against a baseline produced by the same
/// scenario selection.
#[must_use]
pub fn compare(
    baseline: &[Record],
    current: &[Record],
    config: &CompareConfig,
) -> CompareReport {
    let mut report = CompareReport::default();
    let current_by_key: std::collections::HashMap<String, &Record> =
        current.iter().map(|r| (r.key(), r)).collect();
    for base in baseline {
        let key = base.key();
        let Some(cur) = current_by_key.get(&key) else {
            report.missing_cells.push(key);
            continue;
        };
        report.matched_cells += 1;
        for (metric, base_value) in &base.metrics {
            if !is_cost_metric(metric) {
                continue;
            }
            let Some(cur_value) = cur.metric_value(metric) else {
                // A gated metric the run no longer emits is lost coverage,
                // not a pass.
                report.missing_metrics.push(format!("{key} {metric}"));
                continue;
            };
            let limit = if metric.ends_with("_ms") {
                if *base_value < config.min_time_ms {
                    continue;
                }
                base_value * config.time_ratio
            } else if *base_value == 0.0 {
                // A legitimately-zero baseline counter (e.g. `restarts: 0`)
                // has no meaningful ratio: fall back to absolute slack only,
                // so the cell can neither divide-by-zero in ratio reporting
                // nor auto-fail the moment the counter becomes nonzero.
                config.count_slack
            } else {
                base_value * config.count_ratio + config.count_slack
            };
            report.checked_metrics += 1;
            if cur_value > limit {
                report.regressions.push(Regression {
                    cell: key.clone(),
                    metric: metric.clone(),
                    baseline: *base_value,
                    current: cur_value,
                    limit,
                });
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(scenario: &str, circuit: &str, wall_ms: f64, dips: f64) -> Record {
        Record::new(scenario)
            .label("circuit", circuit)
            .metric("wall_ms", wall_ms)
            .metric("dips", dips)
            .metric("speedup", 4.0)
    }

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let mut names: Vec<&str> = registry().iter().map(|s| s.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate scenario names");
        for name in names {
            assert!(find(name).is_some());
        }
    }

    #[test]
    fn quick_subset_covers_both_groups() {
        let quick: Vec<&Scenario> = registry().iter().filter(|s| s.quick).collect();
        assert!(quick.iter().any(|s| s.group == Group::Attack));
        assert!(quick.iter().any(|s| s.group == Group::Encode));
    }

    #[test]
    fn document_roundtrips_records() {
        let records = vec![
            cell("matrix", "c432", 120.0, 7.0),
            Record::new("weird").label("name", "quote\" comma, tab\t").metric("cnf_vars", 9.0),
        ];
        let text = document("all", "quick", &records).render();
        let parsed = parse_document(&text).expect("well-formed");
        assert_eq!(parsed, records);
    }

    #[test]
    fn parse_rejects_other_schemas() {
        let text = "{\"schema\": \"polykey-bench/v0\", \"records\": []}";
        assert!(parse_document(text).unwrap_err().contains("unsupported schema"));
    }

    #[test]
    fn identical_baseline_passes() {
        let records =
            vec![cell("matrix", "c432", 120.0, 7.0), cell("matrix", "c880", 80.0, 3.0)];
        let report = compare(&records, &records, &CompareConfig::default());
        assert!(report.is_pass(), "{}", report.render());
        assert_eq!(report.matched_cells, 2);
        assert!(report.missing_cells.is_empty());
    }

    #[test]
    fn injected_slowdown_is_flagged() {
        let baseline = vec![cell("matrix", "c432", 120.0, 7.0)];
        // 10x wall-clock inflation, well past the default 3x bound.
        let current = vec![cell("matrix", "c432", 1200.0, 7.0)];
        let report = compare(&baseline, &current, &CompareConfig::default());
        assert!(!report.is_pass());
        assert_eq!(report.regressions.len(), 1);
        let r = &report.regressions[0];
        assert_eq!(r.metric, "wall_ms");
        assert_eq!(r.current, 1200.0);
        assert!(report.render().contains("REGRESSION"));
    }

    #[test]
    fn counter_inflation_is_flagged_and_slack_tolerates_noise() {
        let baseline = vec![cell("matrix", "c432", 120.0, 100.0)];
        // +10 DIPs sits inside 2x + 16 slack; 10x does not.
        let ok = vec![cell("matrix", "c432", 120.0, 110.0)];
        assert!(compare(&baseline, &ok, &CompareConfig::default()).is_pass());
        let bad = vec![cell("matrix", "c432", 120.0, 1000.0)];
        let report = compare(&baseline, &bad, &CompareConfig::default());
        assert_eq!(report.regressions.len(), 1);
        assert_eq!(report.regressions[0].metric, "dips");
    }

    #[test]
    fn zero_baseline_counters_gate_on_absolute_slack_only() {
        // A legitimately-zero baseline cell (`restarts: 0`) must neither
        // divide-by-zero nor auto-fail: growth inside the absolute slack
        // passes, growth beyond it still regresses with a finite limit.
        let mut baseline = vec![cell("matrix", "c432", 120.0, 7.0)];
        baseline[0].metrics.push(("restarts".into(), 0.0));
        let mut within = vec![cell("matrix", "c432", 120.0, 7.0)];
        within[0].metrics.push(("restarts".into(), 10.0));
        assert!(compare(&baseline, &within, &CompareConfig::default()).is_pass());

        let mut beyond = vec![cell("matrix", "c432", 120.0, 7.0)];
        beyond[0].metrics.push(("restarts".into(), 40.0));
        let report = compare(&baseline, &beyond, &CompareConfig::default());
        assert_eq!(report.regressions.len(), 1);
        let r = &report.regressions[0];
        assert_eq!(r.metric, "restarts");
        assert!(r.limit.is_finite());
        assert_eq!(r.limit, CompareConfig::default().count_slack);
        let rendered = report.render();
        assert!(
            !rendered.contains("inf") && !rendered.contains("NaN"),
            "render must stay finite: {rendered}"
        );
    }

    #[test]
    fn zero_baseline_timings_are_never_gated() {
        // A 0 ms baseline timing sits under the noise floor by definition;
        // no ratio is ever computed against it.
        let mut baseline = vec![cell("matrix", "c432", 120.0, 7.0)];
        baseline[0].metrics.push(("extra_ms".into(), 0.0));
        let mut current = vec![cell("matrix", "c432", 120.0, 7.0)];
        current[0].metrics.push(("extra_ms".into(), 20.0));
        assert!(compare(&baseline, &current, &CompareConfig::default()).is_pass());
    }

    #[test]
    fn regression_render_includes_growth_ratio_when_defined() {
        let baseline = vec![cell("matrix", "c432", 120.0, 7.0)];
        let current = vec![cell("matrix", "c432", 1200.0, 7.0)];
        let report = compare(&baseline, &current, &CompareConfig::default());
        assert!(report.render().contains("(10.00x)"), "{}", report.render());
    }

    #[test]
    fn sub_noise_floor_timings_are_skipped() {
        let baseline = vec![cell("matrix", "c432", 2.0, 5.0)];
        // 2ms -> 20ms is a 10x ratio but under the 25ms floor: not gated.
        let current = vec![cell("matrix", "c432", 20.0, 5.0)];
        assert!(compare(&baseline, &current, &CompareConfig::default()).is_pass());
    }

    #[test]
    fn improvements_in_informational_metrics_never_fail() {
        let mut baseline = vec![cell("matrix", "c432", 120.0, 7.0)];
        baseline[0].metrics.push(("ratio".into(), 0.5));
        let mut current = vec![cell("matrix", "c432", 120.0, 7.0)];
        // speedup collapses, ratio explodes: neither is a cost metric.
        current[0].metrics[2].1 = 0.1;
        current[0].metrics.push(("ratio".into(), 50.0));
        assert!(compare(&baseline, &current, &CompareConfig::default()).is_pass());
    }

    #[test]
    fn missing_cells_fail_the_gate() {
        // A cell that vanishes (e.g. an attack that now times out emits no
        // record) must fail even though no per-metric threshold trips.
        let baseline =
            vec![cell("matrix", "c432", 120.0, 7.0), cell("matrix", "gone", 1.0, 1.0)];
        let current = vec![cell("matrix", "c432", 120.0, 7.0)];
        let report = compare(&baseline, &current, &CompareConfig::default());
        assert!(!report.is_pass());
        assert!(report.regressions.is_empty());
        assert_eq!(report.missing_cells.len(), 1);
        assert!(report.missing_cells[0].contains("gone"));
        assert!(report.render().contains("MISSING"));
    }

    #[test]
    fn vanished_gated_metrics_fail_the_gate() {
        let baseline = vec![cell("matrix", "c432", 120.0, 7.0)];
        // Same cell, but it stopped emitting `dips`: coverage shrank.
        let mut current = vec![cell("matrix", "c432", 120.0, 7.0)];
        current[0].metrics.retain(|(n, _)| n != "dips");
        let report = compare(&baseline, &current, &CompareConfig::default());
        assert!(!report.is_pass());
        assert!(report.regressions.is_empty());
        assert_eq!(report.missing_metrics.len(), 1);
        assert!(report.missing_metrics[0].ends_with(" dips"));
        assert!(report.render().contains("MISSING METRIC"));
        // Dropping an informational metric is fine.
        let mut current = vec![cell("matrix", "c432", 120.0, 7.0)];
        current[0].metrics.retain(|(n, _)| n != "speedup");
        assert!(compare(&baseline, &current, &CompareConfig::default()).is_pass());
    }

    #[test]
    fn scenario_totals_sum_cost_metrics_and_gate_broad_slowdowns() {
        // Four 8 ms cells: each is under the 25 ms noise floor, but the
        // 32 ms total is gated, so a uniform 10x slowdown still fails.
        let baseline: Vec<Record> =
            (0..4).map(|i| cell("matrix", &format!("c{i}"), 8.0, 5.0)).collect();
        let slowed: Vec<Record> =
            (0..4).map(|i| cell("matrix", &format!("c{i}"), 80.0, 5.0)).collect();
        let totals = scenario_totals(&baseline);
        assert_eq!(totals.len(), 1);
        assert_eq!(totals[0].key(), "matrix{cell=__total__}");
        assert_eq!(totals[0].metric_value("wall_ms"), Some(32.0));
        assert_eq!(totals[0].metric_value("dips"), Some(20.0));
        // Informational metrics are not aggregated.
        assert_eq!(totals[0].metric_value("speedup"), None);

        let with_totals = |mut records: Vec<Record>| {
            let totals = scenario_totals(&records);
            records.extend(totals);
            records
        };
        let report =
            compare(&with_totals(baseline), &with_totals(slowed), &CompareConfig::default());
        assert!(!report.is_pass());
        assert!(report
            .regressions
            .iter()
            .any(|r| r.cell.contains("__total__") && r.metric == "wall_ms"));
    }

    #[test]
    fn label_order_does_not_affect_matching() {
        let a = Record::new("s").label("x", "1").label("y", "2").metric("dips", 1.0);
        let b = Record::new("s").label("y", "2").label("x", "1").metric("dips", 1.0);
        assert_eq!(a.key(), b.key());
    }
}
