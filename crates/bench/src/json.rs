//! A small, dependency-free JSON emitter and parser.
//!
//! The workspace must build fully offline, so the benchmark telemetry
//! (`BENCH_*.json`, committed baselines) cannot pull in `serde`. This
//! module implements the subset of JSON the harness needs — which is all
//! of JSON, minus any notion of deserializing into user types: documents
//! are built and inspected as [`Json`] trees.
//!
//! Guarantees:
//!
//! - emission is escaping-correct: `"`, `\`, and every control character
//!   below `U+0020` round-trip through [`Json::render`] → [`Json::parse`];
//! - parsing accepts arbitrary valid JSON, including `\uXXXX` escapes and
//!   UTF-16 surrogate pairs;
//! - numbers are emitted as integers whenever they are integral (so
//!   counters never gain a spurious `.0`) and via Rust's shortest
//!   round-trip float formatting otherwise. Non-finite numbers (which JSON
//!   cannot represent) are emitted as `null`.
//!
//! # Examples
//!
//! ```
//! use polykey_bench::json::Json;
//!
//! let doc = Json::Object(vec![
//!     ("name".into(), Json::String("c432/\"rll\"".into())),
//!     ("wall_ms".into(), Json::Number(12.5)),
//! ]);
//! let text = doc.render();
//! assert_eq!(Json::parse(&text).unwrap(), doc);
//! ```

use std::fmt::Write as _;

/// A JSON value: the full data model, held as a tree.
///
/// Objects preserve insertion order (they are association lists, not
/// maps), so emitted documents are stable and diff-friendly.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`, like JavaScript).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, as an ordered list of `(key, value)` pairs.
    Object(Vec<(String, Json)>),
}

/// Where and why parsing failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input at which the error was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Looks up a key in an object (`None` for non-objects and missing
    /// keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Renders the value as pretty-printed JSON (two-space indent,
    /// trailing newline) — the format of `BENCH_*.json` and the committed
    /// baselines, chosen to keep diffs reviewable.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write_indented(&mut out, 0);
        out.push('\n');
        out
    }

    /// Renders the value as compact single-line JSON.
    #[must_use]
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(n) => write_number(out, *n),
            Json::String(s) => write_string(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_indented(&self, out: &mut String, depth: usize) {
        match self {
            Json::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    indent(out, depth + 1);
                    item.write_indented(out, depth + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push(']');
            }
            Json::Object(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    indent(out, depth + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write_indented(out, depth + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push('}');
            }
            // Empty containers and scalars print compactly.
            other => other.write_compact(out),
        }
    }

    /// Parses a complete JSON document (leading/trailing whitespace
    /// allowed, nothing else after the value).
    ///
    /// # Errors
    ///
    /// [`JsonError`] with the byte offset of the first offending input.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Emits a number: integral values as integers, the rest via Rust's
/// shortest-round-trip float `Display`; non-finite values become `null`.
fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

/// Emits a string literal with full escaping: quote, backslash, and every
/// control character below `U+0020`.
fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { offset: self.pos, message: message.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("expected a JSON value")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("expected digits in number"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("expected digits after `.`"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("expected digits in exponent"));
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number spans are ASCII");
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| JsonError { offset: start, message: "malformed number".into() })
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("non-ASCII in \\u escape"))?;
        let code = u16::from_str_radix(text, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // A high surrogate must be followed by
                                // `\uXXXX` with a low surrogate.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000
                                    + ((u32::from(hi) - 0xD800) << 10)
                                    + (u32::from(lo) - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(u32::from(hi))
                                    .ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(self.err("raw control character in string"));
                }
                Some(_) => {
                    // Copy one UTF-8 scalar; the input is a &str so the
                    // encoding is already valid.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Json) {
        assert_eq!(Json::parse(&v.render()).unwrap(), *v);
        assert_eq!(Json::parse(&v.render_compact()).unwrap(), *v);
    }

    #[test]
    fn scalars_roundtrip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Number(0.0),
            Json::Number(-17.0),
            Json::Number(3.25),
            Json::Number(1e-9),
            Json::String(String::new()),
            Json::String("plain".into()),
        ] {
            roundtrip(&v);
        }
    }

    #[test]
    fn integral_numbers_emit_without_fraction() {
        assert_eq!(Json::Number(42.0).render_compact(), "42");
        assert_eq!(Json::Number(-3.0).render_compact(), "-3");
        assert_eq!(Json::Number(2.5).render_compact(), "2.5");
    }

    #[test]
    fn non_finite_numbers_emit_null() {
        assert_eq!(Json::Number(f64::NAN).render_compact(), "null");
        assert_eq!(Json::Number(f64::INFINITY).render_compact(), "null");
    }

    #[test]
    fn hostile_strings_roundtrip() {
        for s in [
            "quote\" backslash\\ slash/",
            "newline\n tab\t return\r",
            "control \u{01}\u{1f} backspace\u{08} formfeed\u{0c}",
            "unicode \u{263a} beyond bmp \u{1f600}",
        ] {
            roundtrip(&Json::String(s.to_string()));
        }
    }

    #[test]
    fn containers_roundtrip() {
        let doc = Json::Object(vec![
            ("empty_arr".into(), Json::Array(vec![])),
            ("empty_obj".into(), Json::Object(vec![])),
            (
                "nested".into(),
                Json::Array(vec![
                    Json::Null,
                    Json::Object(vec![("k\"ey".into(), Json::Number(1.5))]),
                ]),
            ),
        ]);
        roundtrip(&doc);
    }

    #[test]
    fn parses_foreign_escapes_and_whitespace() {
        let v = Json::parse(" { \"a\" : [ 1 , \"\\u0041\\u00e9\\ud83d\\ude00\" ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[1].as_str().unwrap(), "Aé\u{1f600}");
    }

    #[test]
    fn object_lookup_and_accessors() {
        let v = Json::parse("{\"n\": 2e3, \"s\": \"x\", \"b\": false}").unwrap();
        assert_eq!(v.get("n").unwrap().as_f64(), Some(2000.0));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b"), Some(&Json::Bool(false)));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn errors_carry_offsets() {
        for (input, offset) in
            [("", 0), ("{", 1), ("[1,]", 3), ("\"\\x\"", 2), ("nul", 0), ("1 2", 2)]
        {
            let err = Json::parse(input).unwrap_err();
            assert_eq!(err.offset, offset, "input {input:?}: {err}");
        }
    }

    #[test]
    fn rejects_lone_surrogates() {
        assert!(Json::parse("\"\\ud800\"").is_err());
        assert!(Json::parse("\"\\udc00\"").is_err());
        assert!(Json::parse("\"\\ud800\\u0041\"").is_err());
    }
}
