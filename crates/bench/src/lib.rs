//! # polykey-bench: the paper's evaluation, regenerated
//!
//! Binaries that reproduce every table and figure of *"On the One-Key
//! Premise of Logic Locking"* (DAC'24), plus Criterion micro-benchmarks for
//! the substrates:
//!
//! | target | regenerates |
//! |--------|-------------|
//! | `cargo run --release -p polykey-bench --bin fig1a` | Fig. 1(a) error distribution |
//! | `cargo run --release -p polykey-bench --bin table1` | Table 1 (`#DIP` vs splitting effort on SARLock) |
//! | `cargo run --release -p polykey-bench --bin table2` | Table 2 (runtime vs LUT-based insertion) |
//! | `cargo run --release -p polykey-bench --bin matrix` | the `LockScheme` × effort × circuit sweep |
//! | `cargo run --release -p polykey-bench --bin batch` | batched-DIP sweep: oracle rounds vs queries at widths 1/8/32/64 |
//! | `cargo run --release -p polykey-bench --bin ablation_split` | split-port heuristic ablation (§4) |
//! | `cargo run --release -p polykey-bench --bin ablation_simplify` | Alg. 1 line 4 re-synthesis ablation |
//! | `cargo run --release -p polykey-bench --bin defense_probe` | the conclusion's defense direction |
//! | `cargo run --release -p polykey-bench --bin bench` | **the unified harness**: any subset of the above, plus `BENCH_*.json` telemetry and `--compare` regression gating |
//!
//! Every binary above is a registered [`harness::Scenario`]; the
//! standalone bins are thin wrappers that run exactly one scenario and
//! print its rendering. The `bench` bin is the telemetry/CI entry point —
//! see the [`harness`] module docs for the JSON schema and the baseline
//! workflow.
//!
//! This library hosts the harness itself plus the small shared utilities:
//! plain-text table rendering, duration formatting, argument parsing, and
//! an offline JSON emitter/parser ([`json`]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod harness;
pub mod json;

use std::fmt::Write as _;
use std::time::Duration;

/// A plain-text table with aligned columns.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> TextTable {
        TextTable { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends one row (must match the header length).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut width = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.chars().count();
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                width[i] = width[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let print_row = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                let pad = width[i] - cell.chars().count();
                let _ = write!(out, "{}{}", cell, " ".repeat(pad));
                if i + 1 < ncols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        print_row(&self.header, &mut out);
        let total: usize = width.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            print_row(row, &mut out);
        }
        out
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &String| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let _ = writeln!(out, "{}", self.header.iter().map(esc).collect::<Vec<_>>().join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(esc).collect::<Vec<_>>().join(","));
        }
        out
    }
}

/// Formats a duration in engineering style: `421ms`, `3.21s`, `2m14s`.
pub fn fmt_duration(d: Duration) -> String {
    let secs = d.as_secs_f64();
    if secs < 0.001 {
        format!("{:.0}µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.0}ms", secs * 1e3)
    } else if secs < 120.0 {
        format!("{secs:.2}s")
    } else {
        let m = (secs / 60.0).floor();
        format!("{m:.0}m{:.0}s", secs - m * 60.0)
    }
}

/// Minimal CLI flags shared by the harness binaries.
#[derive(Clone, Debug, Default)]
pub struct HarnessArgs {
    /// Run the scaled-down configuration (fast; CI-friendly).
    pub quick: bool,
    /// Run the full paper-scale configuration.
    pub full: bool,
    /// Per-attack time cap in seconds, if any.
    pub time_cap: Option<u64>,
    /// Write results as CSV to this path.
    pub csv: Option<String>,
    /// Random seed override.
    pub seed: Option<u64>,
}

impl HarnessArgs {
    /// Parses flags from `std::env::args`: `--quick`, `--full`,
    /// `--time-cap <secs>`, `--csv <path>`, `--seed <n>`.
    ///
    /// # Panics
    ///
    /// Panics (with a usage message) on malformed arguments — appropriate
    /// for a benchmark binary.
    pub fn parse() -> HarnessArgs {
        let mut args = HarnessArgs::default();
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--quick" => args.quick = true,
                "--full" => args.full = true,
                "--time-cap" => {
                    let v = it.next().expect("--time-cap needs a value in seconds");
                    args.time_cap = Some(v.parse().expect("--time-cap must be an integer"));
                }
                "--csv" => args.csv = Some(it.next().expect("--csv needs a path")),
                "--seed" => {
                    let v = it.next().expect("--seed needs a value");
                    args.seed = Some(v.parse().expect("--seed must be an integer"));
                }
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --quick | --full | --time-cap <secs> | --csv <path> | --seed <n>"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown flag `{other}` (try --help)"),
            }
        }
        args
    }

    /// The scenario-facing subset of these flags, for
    /// [`harness::run_scenario`].
    #[must_use]
    pub fn ctx(&self) -> harness::ScenarioCtx {
        harness::ScenarioCtx {
            quick: self.quick,
            full: self.full,
            time_cap: self.time_cap,
            seed: self.seed,
        }
    }

    /// Writes the table as CSV if `--csv` was given.
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be written.
    pub fn maybe_write_csv(&self, table: &TextTable) {
        if let Some(path) = &self.csv {
            std::fs::write(path, table.to_csv()).expect("write csv");
            eprintln!("csv written to {path}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = TextTable::new(vec!["a", "long-header", "c"]);
        t.row(vec!["1", "2", "3"]);
        t.row(vec!["wide-cell", "x", "y"]);
        let rendered = t.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a"));
        assert!(lines[2].starts_with("1"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn csv_escaping() {
        let mut t = TextTable::new(vec!["x", "y"]);
        t.row(vec!["a,b", "quote\"inside"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"quote\"\"inside\""));
    }

    #[test]
    fn durations_format() {
        assert_eq!(fmt_duration(Duration::from_micros(500)), "500µs");
        assert_eq!(fmt_duration(Duration::from_millis(42)), "42ms");
        assert_eq!(fmt_duration(Duration::from_secs_f64(3.214)), "3.21s");
        assert_eq!(fmt_duration(Duration::from_secs(134)), "2m14s");
    }
}
