//! The batched-DIP sweep: oracle rounds vs oracle queries for batch
//! widths 1/8/32/64, across locking schemes and ISCAS'85 circuits.
//!
//! ```text
//! cargo run --release -p polykey-bench --bin batch             # c432 + c880
//! cargo run --release -p polykey-bench --bin batch -- --quick  # c432 only
//! cargo run --release -p polykey-bench --bin batch -- --full   # + c1908
//! ```
//!
//! Every refinement epoch of the batched SAT attack harvests up to `k`
//! distinct DIPs (re-solving under output-tying relaxations that steer
//! each re-solve toward fresh key space) and answers them in one
//! `Oracle::query_batch` round — one bit-parallel simulation pass for a
//! `SimOracle`. Each cell reports `rounds/queries (speedup×)`:
//! `queries` counts answered DIPs (identical work to the sequential
//! attack's oracle cost) and `rounds` counts round-trips, so the ratio is
//! exactly what batching saves. A trailing `=` marks a recovered key
//! bit-identical to the sequential (`k = 1`) run; `≡` marks a different
//! but functionally equivalent key (schemes like Anti-SAT have many
//! correct keys). Every run is recombined (Fig. 1b) and formally checked
//! against the original, whatever the width.
//!
//! This bin runs the registered `batch` scenario; `bench --only batch`
//! runs the same code and additionally persists `BENCH_attack.json`.

use polykey_bench::{harness, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse();
    let result = harness::run_scenario("batch", &args.ctx()).expect("batch is registered");
    print!("{}", result.rendered);
    if let Some(table) = &result.table {
        args.maybe_write_csv(table);
    }
}
