//! The batched-DIP sweep: oracle rounds vs oracle queries for batch
//! widths 1/8/32/64, across locking schemes and ISCAS'85 circuits.
//!
//! ```text
//! cargo run --release -p polykey-bench --bin batch             # c432 + c880
//! cargo run --release -p polykey-bench --bin batch -- --quick  # c432 only
//! cargo run --release -p polykey-bench --bin batch -- --full   # + c1908
//! ```
//!
//! Every refinement epoch of the batched SAT attack harvests up to `k`
//! distinct DIPs (re-solving under output-tying relaxations that steer
//! each re-solve toward fresh key space) and answers them in one
//! [`Oracle::query_batch`] round — one bit-parallel simulation pass for a
//! `SimOracle`. Each cell reports `rounds/queries (speedup×)`:
//! `queries` counts answered DIPs (identical work to the sequential
//! attack's oracle cost) and `rounds` counts round-trips, so the ratio is
//! exactly what batching saves. A trailing `=` marks a recovered key
//! bit-identical to the sequential (`k = 1`) run; `≡` marks a different
//! but functionally equivalent key (schemes like Anti-SAT have many
//! correct keys). Every run is recombined (Fig. 1b) and formally checked
//! against the original, whatever the width.
//!
//! [`Oracle::query_batch`]: polykey_attack::Oracle

use polykey_attack::{AttackSession, SimOracle};
use polykey_bench::{fmt_duration, HarnessArgs, TextTable};
use polykey_circuits::Iscas85;
use polykey_encode::{check_equivalence, EquivResult};
use polykey_locking::{AntiSat, LockScheme, LutLock, Rll, Sarlock};
use rand::SeedableRng;

const WIDTHS: [usize; 4] = [1, 8, 32, 64];

fn main() {
    let args = HarnessArgs::parse();
    let seed = args.seed.unwrap_or(0xBA7C);
    let circuits: Vec<Iscas85> = if args.quick {
        vec![Iscas85::C432]
    } else if args.full {
        vec![Iscas85::C432, Iscas85::C880, Iscas85::C1908]
    } else {
        vec![Iscas85::C432, Iscas85::C880]
    };

    // SARLock is the interesting row: ~2^|K| DIPs, so batching collapses
    // dozens of round-trips per attack. RLL/Anti-SAT/LUT converge in a
    // handful of DIPs and bound the overhead side of the trade.
    let schemes: Vec<Box<dyn LockScheme>> = vec![
        Box::new(Rll::new(8).with_seed(seed)),
        Box::new(Sarlock::new(6)),
        Box::new(AntiSat::new(4)),
        Box::new(LutLock::small().with_seed(seed)),
    ];

    println!(
        "Batched-DIP sweep: {} schemes x batch widths {WIDTHS:?} x {} circuits",
        schemes.len(),
        circuits.len()
    );
    println!("cells: oracle rounds / oracle queries (speedup x)");
    println!("key vs k=1 run: `=` bit-identical, `≡` functionally equivalent");
    println!("every cell is recombined (Fig. 1b) and formally verified\n");

    let mut header = vec!["circuit / scheme".to_string()];
    for k in WIDTHS {
        header.push(format!("k={k}"));
    }
    let mut table = TextTable::new(header);
    let mut best_speedup: (f64, String) = (1.0, String::new());

    for circuit in &circuits {
        let original = circuit.build();
        for scheme in &schemes {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let locked = match scheme.lock_random(&original, &mut rng) {
                Ok(locked) => locked,
                Err(e) => {
                    eprintln!("{circuit}/{}: cannot lock ({e})", scheme.name());
                    continue;
                }
            };
            let mut row = vec![format!("{}/{}", circuit.name(), scheme.name())];
            let mut sequential_key = None;
            for k in WIDTHS {
                let mut oracle = SimOracle::new(&original).expect("keyless oracle");
                let report = AttackSession::builder()
                    .oracle(&mut oracle)
                    .dip_batch(k)
                    .record_dips(false)
                    .build()
                    .expect("oracle provided")
                    .run(&locked.netlist)
                    .expect("attack runs");
                assert!(
                    report.is_complete(),
                    "{}/{} k={k} must succeed",
                    circuit.name(),
                    scheme.name()
                );
                let stats = report.stats();
                // Correctness first: the recombined design must be exactly
                // the original function at every batch width.
                let recombined = report.recombine(&locked.netlist).expect("recombine");
                assert_eq!(
                    check_equivalence(&original, &recombined).expect("equiv"),
                    EquivResult::Equivalent,
                    "{}/{} k={k} must recombine to the original",
                    circuit.name(),
                    scheme.name()
                );
                let key = report.key().expect("single-key run").clone();
                let key_mark = match &sequential_key {
                    None => {
                        sequential_key = Some(key);
                        String::new()
                    }
                    Some(reference) if *reference == key => " =".to_string(),
                    Some(_) => " ≡".to_string(),
                };
                let speedup = stats.oracle_queries as f64 / stats.oracle_rounds.max(1) as f64;
                if speedup > best_speedup.0 {
                    best_speedup =
                        (speedup, format!("{}/{} at k={k}", circuit.name(), scheme.name()));
                }
                row.push(format!(
                    "{}/{} ({speedup:.1}x){key_mark} {}",
                    stats.oracle_rounds,
                    stats.oracle_queries,
                    fmt_duration(stats.wall_time)
                ));
            }
            table.row(row);
            eprintln!("{}/{} done", circuit.name(), scheme.name());
        }
    }

    println!("{}", table.render());
    println!(
        "best round amortization: {:.1}x fewer oracle round-trips ({})",
        best_speedup.0, best_speedup.1
    );
    println!("queries (= #DIP) stay flat while rounds collapse: the oracle");
    println!("cost of the attack is round-trips, and k=64 packs each round");
    println!("into one 64-pattern simulator pass.");
    args.maybe_write_csv(&table);
}
