//! Ablation: Algorithm 1 line 4 — re-synthesizing the cofactored netlist
//! ("synthesized to remove any redundant logic") vs attacking the pinned
//! netlist as-is.
//!
//! ```text
//! cargo run --release -p polykey-bench --bin ablation_simplify
//! ```
//!
//! Re-synthesis shrinks each term's netlist (smaller miters, smaller
//! per-DIP CNF copies); this binary quantifies both the size and the time
//! effect on a LUT-locked circuit.

use polykey_attack::{AttackSession, SimOracle, SplitStrategy};
use polykey_bench::{fmt_duration, HarnessArgs, TextTable};
use polykey_circuits::Iscas85;
use polykey_locking::{LockScheme, LutLock};
use rand::SeedableRng;

fn main() {
    let args = HarnessArgs::parse();
    let circuit = if args.quick { Iscas85::C880 } else { Iscas85::C1908 };
    let scheme = if args.full { LutLock::paper() } else { LutLock::small() };
    let seed = args.seed.unwrap_or(0xAB1A7E);
    let scheme = scheme.with_seed(seed);

    let original = circuit.build();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let locked = scheme.lock_random(&original, &mut rng).expect("lockable");

    println!(
        "Re-synthesis ablation: LUT({} keys) on {}, N = 4, 16 parallel terms\n",
        scheme.key_bits(),
        circuit
    );

    let mut table = TextTable::new(vec![
        "variant",
        "term gates (min..max)",
        "max term time",
        "mean term time",
    ]);
    for (name, simplify) in
        [("with re-synthesis (paper)", true), ("without (pinned only)", false)]
    {
        let mut builder = AttackSession::builder()
            .split_effort(4)
            .strategy(SplitStrategy::FanoutCone)
            .simplify(simplify)
            .record_dips(false);
        if let Some(cap) = args.time_cap {
            builder = builder.time_budget(std::time::Duration::from_secs(cap));
        }
        let mut oracle = SimOracle::new(&original).expect("oracle");
        let report = builder
            .oracle(&mut oracle)
            .build()
            .expect("oracle provided")
            .run(&locked.netlist)
            .expect("attack runs");
        assert!(report.is_complete());
        let outcome = report.as_multi_key().expect("N > 0");
        let min_g = outcome.reports.iter().map(|r| r.gates_after).min().unwrap_or(0);
        let max_g = outcome.reports.iter().map(|r| r.gates_after).max().unwrap_or(0);
        table.row(vec![
            name.to_string(),
            format!("{min_g}..{max_g}"),
            fmt_duration(outcome.max_task_time()),
            fmt_duration(outcome.mean_task_time()),
        ]);
        eprintln!("  {name}: done in {}", fmt_duration(report.stats().wall_time));
    }
    println!("{}", table.render());
    println!(
        "locked design has {} gates; pinning alone keeps them all, while",
        locked.netlist.num_gates()
    );
    println!("re-synthesis folds the pinned logic away before the SAT attack.");
    args.maybe_write_csv(&table);
}
