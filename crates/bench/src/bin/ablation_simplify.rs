//! Ablation: Algorithm 1 line 4 — re-synthesizing the cofactored netlist
//! ("synthesized to remove any redundant logic") vs attacking the pinned
//! netlist as-is.
//!
//! ```text
//! cargo run --release -p polykey-bench --bin ablation_simplify
//! ```
//!
//! Re-synthesis shrinks each term's netlist (smaller miters, smaller
//! per-DIP CNF copies); this binary quantifies both the size and the time
//! effect on a LUT-locked circuit.
//!
//! This bin runs the registered `ablation_simplify` scenario;
//! `bench --only ablation_simplify` runs the same code and additionally
//! persists `BENCH_attack.json`.

use polykey_bench::{harness, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse();
    let result = harness::run_scenario("ablation_simplify", &args.ctx())
        .expect("ablation_simplify is registered");
    print!("{}", result.rendered);
    if let Some(table) = &result.table {
        args.maybe_write_csv(table);
    }
}
