//! Defense probe — the paper's future-work direction ("creating effective
//! defenses to counter the new multi-key attack scenario"), made concrete.
//!
//! ```text
//! cargo run --release -p polykey-bench --bin defense_probe
//! ```
//!
//! Hypothesis: the multi-key attack's leverage on SARLock comes from the
//! comparator reading *primary inputs* — pinning a compared input halves
//! the reachable comparator domain, so `#DIP` halves per splitting level.
//! If the comparator instead reads *internal* signals (deep nets that no
//! small set of inputs determines), cofactoring cannot bisect the key
//! space and the splitting advantage should collapse.
//!
//! The probe locks the same circuit both ways with the same key width and
//! reports `#DIP` for N = 0..3.

use polykey_attack::{AttackSession, SimOracle, SplitStrategy};
use polykey_bench::{fmt_duration, HarnessArgs, TextTable};
use polykey_circuits::Iscas85;
use polykey_locking::{lock_sarlock_on_signals, Key, LockScheme, Sarlock};
use polykey_netlist::analysis::levels;
use polykey_netlist::{Netlist, NodeId};

/// Picks `n` deep internal nets, spread across the circuit.
fn deep_signals(nl: &Netlist, n: usize) -> Vec<NodeId> {
    let lv = levels(nl).expect("acyclic");
    let out_cones: Vec<bool> = {
        // Avoid nets inside any output's fanout cone (outputs are sinks in
        // these benchmarks, so this only excludes the outputs themselves).
        let mut mask = vec![false; nl.num_nodes()];
        for &o in nl.outputs() {
            mask[o.index()] = true;
        }
        mask
    };
    let mut candidates: Vec<NodeId> = nl
        .node_ids()
        .filter(|&id| {
            !nl.node(id).kind().is_input() && !out_cones[id.index()] && lv[id.index()] >= 3
        })
        .collect();
    // Deterministic spread: sort by level descending, then stride.
    candidates.sort_by_key(|id| std::cmp::Reverse(lv[id.index()]));
    let stride = (candidates.len() / n.max(1)).max(1);
    candidates.into_iter().step_by(stride).take(n).collect()
}

fn main() {
    let args = HarnessArgs::parse();
    let kw = 6usize;
    let circuit = if args.full { Iscas85::C7552 } else { Iscas85::C880 };
    let original = circuit.build();
    let key = Key::from_u64(args.seed.unwrap_or(0b101101) & ((1 << kw) - 1), kw);

    println!("Defense probe: SARLock |K| = {kw} on {circuit}");
    println!("attack = multi-key, fan-out-cone splitting, N = 0..3\n");

    let input_locked = Sarlock::new(kw).lock(&original, &key).expect("lockable");
    let signals = deep_signals(&original, kw);
    let names: Vec<&str> = signals.iter().map(|&s| original.node_name(s)).collect();
    println!("internal comparator nets: {names:?}\n");
    let internal_locked =
        lock_sarlock_on_signals(&original, &signals, &key, None).expect("lockable");

    let mut table = TextTable::new(vec![
        "variant",
        "N=0 #DIP",
        "N=1 #DIP",
        "N=2 #DIP",
        "N=3 #DIP",
        "N=3 max time",
    ]);
    for (label, locked) in [
        ("SARLock on inputs (paper)", &input_locked.netlist),
        ("SARLock on internal nets (defense)", &internal_locked.netlist),
    ] {
        let mut row = vec![label.to_string()];
        let mut last_time = String::new();
        for n in 0..=3usize {
            let mut oracle = SimOracle::new(&original).expect("oracle");
            let report = AttackSession::builder()
                .oracle(&mut oracle)
                .split_effort(n)
                .strategy(SplitStrategy::FanoutCone)
                .record_dips(false)
                .build()
                .expect("oracle provided")
                .run(locked)
                .expect("runs");
            assert!(report.is_complete(), "{label} N={n}");
            let max_dips = match report.as_multi_key() {
                Some(outcome) => outcome.reports.iter().map(|r| r.dips).max().unwrap_or(0),
                None => report.stats().dips,
            };
            row.push(format!("{max_dips}"));
            last_time = fmt_duration(report.stats().max_subtask_time());
        }
        row.push(last_time);
        table.row(row);
    }
    println!("{}", table.render());
    println!("input-comparator #DIP halves per split level; the internal-net");
    println!("variant resists splitting because no small set of input ports");
    println!("pins the comparator's observed value.");
    args.maybe_write_csv(&table);
}
