//! Defense probe — the paper's future-work direction ("creating effective
//! defenses to counter the new multi-key attack scenario"), made concrete.
//!
//! ```text
//! cargo run --release -p polykey-bench --bin defense_probe
//! ```
//!
//! Hypothesis: the multi-key attack's leverage on SARLock comes from the
//! comparator reading *primary inputs* — pinning a compared input halves
//! the reachable comparator domain, so `#DIP` halves per splitting level.
//! If the comparator instead reads *internal* signals (deep nets that no
//! small set of inputs determines), cofactoring cannot bisect the key
//! space and the splitting advantage should collapse.
//!
//! The probe locks the same circuit both ways with the same key width and
//! reports `#DIP` for N = 0..3.
//!
//! This bin runs the registered `defense_probe` scenario;
//! `bench --only defense_probe` runs the same code and additionally
//! persists `BENCH_attack.json`.

use polykey_bench::{harness, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse();
    let result = harness::run_scenario("defense_probe", &args.ctx())
        .expect("defense_probe is registered");
    print!("{}", result.rendered);
    if let Some(table) = &result.table {
        args.maybe_write_csv(table);
    }
}
