//! Diagnostic probe for Table-2 shape tuning (not part of the paper's
//! tables): measures baseline vs per-term cost across LUT sizes and
//! simplification settings on one circuit.
//!
//! ```text
//! cargo run --release -p polykey-bench --bin probe -- --seed 2
//! ```

use std::time::Duration;

use polykey_attack::{AttackSession, SimOracle, SplitStrategy};
use polykey_bench::{fmt_duration, HarnessArgs};
use polykey_circuits::Iscas85;
use polykey_locking::{LockScheme, LutLock};
use rand::SeedableRng;

fn main() {
    let args = HarnessArgs::parse();
    let seed = args.seed.unwrap_or(0x7AB1E2);
    let cap = Duration::from_secs(args.time_cap.unwrap_or(180));
    let circuit = if args.full { Iscas85::C6288 } else { Iscas85::C880 };
    let original = circuit.build();

    for (label, scheme) in [
        ("8+8+8=24 keys", LutLock::new(vec![3, 3], 1)),
        ("16+16+16=48 keys", LutLock::new(vec![4, 4], 2)),
        ("32+32+16=80 keys", LutLock::new(vec![5, 5], 2)),
    ] {
        let scheme = scheme.with_seed(seed);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let locked = match scheme.lock_random(&original, &mut rng) {
            Ok(l) => l,
            Err(e) => {
                println!("{label}: cannot lock ({e})");
                continue;
            }
        };
        let mut oracle = SimOracle::new(&original).expect("oracle");
        let baseline = AttackSession::builder()
            .oracle(&mut oracle)
            .record_dips(false)
            .time_budget(cap)
            .build()
            .expect("oracle provided")
            .run(&locked.netlist)
            .expect("runs");
        let stats = baseline.stats();
        println!(
            "{} on {}: baseline {} ({} DIPs, {:?}, {} conflicts)",
            label,
            circuit,
            fmt_duration(stats.wall_time),
            stats.dips,
            baseline.status(),
            stats.solver_conflicts
        );
        for simplify in [true, false] {
            let mut oracle = SimOracle::new(&original).expect("oracle");
            let report = AttackSession::builder()
                .oracle(&mut oracle)
                .split_effort(4)
                .strategy(SplitStrategy::FanoutCone)
                .simplify(simplify)
                .record_dips(false)
                .time_budget(cap)
                .build()
                .expect("oracle provided")
                .run(&locked.netlist)
                .expect("runs");
            let outcome = report.as_multi_key().expect("N > 0");
            let max_dips = outcome.reports.iter().map(|r| r.dips).max().unwrap_or(0);
            let gates: Vec<usize> = outcome.reports.iter().map(|r| r.gates_after).collect();
            println!(
                "  N=4 simplify={simplify}: min {} mean {} max {} (max {} DIPs, gates {}..{}, complete={})",
                fmt_duration(outcome.min_task_time()),
                fmt_duration(outcome.mean_task_time()),
                fmt_duration(outcome.max_task_time()),
                max_dips,
                gates.iter().min().unwrap(),
                gates.iter().max().unwrap(),
                report.is_complete(),
            );
        }
    }
}
