//! Diagnostic probe for Table-2 shape tuning (not part of the paper's
//! tables): measures baseline vs per-term cost across LUT sizes and
//! simplification settings on one circuit.
//!
//! ```text
//! cargo run --release -p polykey-bench --bin probe -- --seed 2
//! ```
//!
//! This bin runs the registered `probe` scenario; `bench --only probe`
//! runs the same code and additionally persists `BENCH_attack.json`.

use polykey_bench::{harness, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse();
    let result = harness::run_scenario("probe", &args.ctx()).expect("probe is registered");
    print!("{}", result.rendered);
    if let Some(table) = &result.table {
        args.maybe_write_csv(table);
    }
}
