//! Diagnostic probe for Table-2 shape tuning (not part of the paper's
//! tables): measures baseline vs per-term cost across LUT sizes and
//! simplification settings on one circuit.
//!
//! ```text
//! cargo run --release -p polykey-bench --bin probe -- --seed 2
//! ```

use std::time::Duration;

use polykey_attack::{
    multi_key_attack, sat_attack, MultiKeyConfig, SatAttackConfig, SimOracle, SplitStrategy,
};
use polykey_bench::{fmt_duration, HarnessArgs};
use polykey_circuits::Iscas85;
use polykey_locking::{lock_lut, LutConfig};
use rand::SeedableRng;

fn main() {
    let args = HarnessArgs::parse();
    let seed = args.seed.unwrap_or(0x7AB1E2);
    let cap = Duration::from_secs(args.time_cap.unwrap_or(180));
    let circuit = if args.full { Iscas85::C6288 } else { Iscas85::C880 };
    let original = circuit.build();

    for (label, cfg) in [
        ("8+8+8=24 keys", LutConfig { stage1: vec![3, 3], stage2_extra: 1 }),
        ("16+16+16=48 keys", LutConfig { stage1: vec![4, 4], stage2_extra: 2 }),
        ("32+32+16=80 keys", LutConfig { stage1: vec![5, 5], stage2_extra: 2 }),
    ] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let locked = match lock_lut(&original, &cfg, &mut rng) {
            Ok(l) => l,
            Err(e) => {
                println!("{label}: cannot lock ({e})");
                continue;
            }
        };
        let mut base_cfg = SatAttackConfig::new();
        base_cfg.record_dips = false;
        base_cfg.time_limit = Some(cap);
        let mut oracle = SimOracle::new(&original).expect("oracle");
        let baseline =
            sat_attack(&locked.netlist, &mut oracle, &base_cfg).expect("runs");
        println!(
            "{} on {}: baseline {} ({} DIPs, {:?}, {} conflicts)",
            label,
            circuit,
            fmt_duration(baseline.stats.wall_time),
            baseline.stats.dips,
            baseline.status,
            baseline.stats.solver.conflicts
        );
        for simplify in [true, false] {
            let mut mk = MultiKeyConfig::with_split_effort(4);
            mk.strategy = SplitStrategy::FanoutCone;
            mk.simplify = simplify;
            mk.parallel = true;
            mk.sat.record_dips = false;
            mk.sat.time_limit = Some(cap);
            let outcome =
                multi_key_attack(&locked.netlist, &original, &mk).expect("runs");
            let max_dips = outcome.reports.iter().map(|r| r.dips).max().unwrap_or(0);
            let gates: Vec<usize> =
                outcome.reports.iter().map(|r| r.gates_after).collect();
            println!(
                "  N=4 simplify={simplify}: min {} mean {} max {} (max {} DIPs, gates {}..{}, complete={})",
                fmt_duration(outcome.min_task_time()),
                fmt_duration(outcome.mean_task_time()),
                fmt_duration(outcome.max_task_time()),
                max_dips,
                gates.iter().min().unwrap(),
                gates.iter().max().unwrap(),
                outcome.is_complete(),
            );
        }
    }
}
