//! Ablation: the paper's fan-out-cone split-port heuristic vs naive
//! choices (§4: "The selection of which N input ports to apply the
//! splitting condition is determined through a fan-out cone analysis…").
//!
//! ```text
//! cargo run --release -p polykey-bench --bin ablation_split
//! ```
//!
//! On SARLock, splitting on the comparator inputs (which the heuristic
//! finds) halves `#DIP` per level; splitting on unrelated inputs leaves
//! `#DIP` at the baseline value — the heuristic is what makes Table 1's
//! exponential decay happen.

use polykey_attack::{AttackSession, SimOracle, SplitStrategy};
use polykey_bench::{fmt_duration, HarnessArgs, TextTable};
use polykey_circuits::Iscas85;
use polykey_locking::{Key, LockScheme, Sarlock};

fn main() {
    let args = HarnessArgs::parse();
    let kw = if args.full { 10 } else { 8 };
    let seed = args.seed.unwrap_or(0x5EED);

    // SARLock compares on inputs *after* the first few declared ones so
    // that FirstInputs genuinely misses them.
    let circuit = if args.quick { Iscas85::C880 } else { Iscas85::C7552 };
    let original = circuit.build();
    let key = Key::from_u64(seed & ((1 << kw) - 1), kw);
    let locked = Sarlock::new(kw)
        .with_compare_inputs((10..10 + kw).collect())
        .lock(&original, &key)
        .expect("lockable");

    println!(
        "Split-strategy ablation: SARLock(|K|={kw}) on {}, N = 3, comparator on inputs 10..{}",
        circuit,
        10 + kw
    );
    println!("baseline (N=0) needs ~2^{kw} DIPs\n");

    let mut table = TextTable::new(vec!["strategy", "#DIP (max over terms)", "max term time"]);
    for (name, strategy) in [
        ("fan-out cone (paper)", SplitStrategy::FanoutCone),
        ("first inputs", SplitStrategy::FirstInputs),
        ("random", SplitStrategy::Random { seed }),
    ] {
        let mut oracle = SimOracle::new(&original).expect("oracle");
        let report = AttackSession::builder()
            .oracle(&mut oracle)
            .split_effort(3)
            .strategy(strategy)
            .record_dips(false)
            .build()
            .expect("oracle provided")
            .run(&locked.netlist)
            .expect("attack runs");
        assert!(report.is_complete());
        let outcome = report.as_multi_key().expect("N > 0");
        let max_dips = outcome.reports.iter().map(|r| r.dips).max().unwrap_or(0);
        table.row(vec![
            name.to_string(),
            format!("{max_dips}"),
            fmt_duration(report.stats().max_subtask_time()),
        ]);
        let picked: Vec<&str> =
            report.split_inputs().iter().map(|&id| locked.netlist.node_name(id)).collect();
        eprintln!("  {name}: split ports {picked:?}");
    }
    println!("{}", table.render());
    println!("fan-out cone analysis finds the comparator inputs, so every");
    println!("split level halves the remaining key space; naive choices");
    println!("leave #DIP near the baseline 2^|K|.");
    args.maybe_write_csv(&table);
}
