//! Ablation: the paper's fan-out-cone split-port heuristic vs naive
//! choices (§4: "The selection of which N input ports to apply the
//! splitting condition is determined through a fan-out cone analysis…").
//!
//! ```text
//! cargo run --release -p polykey-bench --bin ablation_split
//! ```
//!
//! On SARLock, splitting on the comparator inputs (which the heuristic
//! finds) halves `#DIP` per level; splitting on unrelated inputs leaves
//! `#DIP` at the baseline value — the heuristic is what makes Table 1's
//! exponential decay happen.
//!
//! This bin runs the registered `ablation_split` scenario;
//! `bench --only ablation_split` runs the same code and additionally
//! persists `BENCH_attack.json`.

use polykey_bench::{harness, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse();
    let result = harness::run_scenario("ablation_split", &args.ctx())
        .expect("ablation_split is registered");
    print!("{}", result.rendered);
    if let Some(table) = &result.table {
        args.maybe_write_csv(table);
    }
}
