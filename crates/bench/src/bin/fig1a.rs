//! Regenerates Fig. 1(a): the error distribution of a 3-input circuit
//! locked with SARLock (|I| = |K| = 3, correct key 101).
//!
//! ```text
//! cargo run --release -p polykey-bench --bin fig1a
//! ```
//!
//! The paper's table shows a ✗ exactly where the applied key equals the
//! input pattern and is not the correct key — one corrupted pattern per
//! wrong key, none for the correct key.
//!
//! This bin runs the registered `fig1a` scenario; `bench --only fig1a`
//! runs the same code and additionally persists `BENCH_encode.json`.

use polykey_bench::{harness, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse();
    let result = harness::run_scenario("fig1a", &args.ctx()).expect("fig1a is registered");
    print!("{}", result.rendered);
    if let Some(table) = &result.table {
        args.maybe_write_csv(table);
    }
}
