//! Regenerates Fig. 1(a): the error distribution of a 3-input circuit
//! locked with SARLock (|I| = |K| = 3, correct key 101).
//!
//! ```text
//! cargo run --release -p polykey-bench --bin fig1a
//! ```
//!
//! The paper's table shows a ✗ exactly where the applied key equals the
//! input pattern and is not the correct key — one corrupted pattern per
//! wrong key, none for the correct key.

use polykey_bench::TextTable;
use polykey_locking::{Key, LockScheme, Sarlock};
use polykey_netlist::{bits_of, GateKind, Netlist, Simulator};

/// The running example: a 3-input majority gate (any 3-input function
/// exhibits the same SARLock error profile).
fn majority3() -> Netlist {
    let mut nl = Netlist::new("maj3");
    let a = nl.add_input("a").expect("fresh");
    let b = nl.add_input("b").expect("fresh");
    let c = nl.add_input("c").expect("fresh");
    let ab = nl.add_gate("ab", GateKind::And, &[a, b]).expect("fresh");
    let ac = nl.add_gate("ac", GateKind::And, &[a, c]).expect("fresh");
    let bc = nl.add_gate("bc", GateKind::And, &[b, c]).expect("fresh");
    let y = nl.add_gate("y", GateKind::Or, &[ab, ac, bc]).expect("fresh");
    nl.mark_output(y).expect("distinct");
    nl
}

fn main() {
    // The paper reads bit strings MSB-first: "101" has MSB 1. Our Key is
    // bit0-first, so build 101 (MSB-first) as bits [1,0,1] reversed.
    let k_star_msb_first = [true, false, true];
    let key = Key::new(k_star_msb_first.iter().rev().copied().collect());
    let nl = majority3();
    let locked = Sarlock::new(3).lock(&nl, &key).expect("valid lock");

    let mut orig = Simulator::new(&nl).expect("acyclic");
    let mut lsim = Simulator::new(&locked.netlist).expect("acyclic");

    let mut header = vec!["Input \\ Key".to_string()];
    for k in 0..8u64 {
        header.push(format!("{k:03b}"));
    }
    let mut table = TextTable::new(header);
    for i in 0..8u64 {
        // Paper convention: the row label is MSB-first; our simulator takes
        // bit0-first vectors, and the comparator compares input j with key
        // bit j, so MSB-first labels match when both are reversed alike.
        let ibits: Vec<bool> = (0..3).rev().map(|j| i >> j & 1 == 1).collect();
        let want = orig.eval(&ibits, &[]);
        let mut row = vec![format!("{i:03b}")];
        for k in 0..8u64 {
            let kbits: Vec<bool> = (0..3).rev().map(|j| k >> j & 1 == 1).collect();
            let got = lsim.eval(&ibits, &kbits);
            row.push(if got == want { "ok".to_string() } else { "X".to_string() });
        }
        table.row(row);
    }

    println!("Fig. 1(a): SARLock error distribution, |I| = |K| = 3, k* = 101");
    println!("(X marks input/key pairs where the locked circuit errs)");
    println!();
    println!("{}", table.render());
    println!("Reading: every wrong key k errs exactly at input i = k; the");
    println!("correct key column (101) and the row i = k* are error-free,");
    println!("so each SAT-attack DIP can eliminate only one wrong key.");

    // Sanity assertions so the binary doubles as an executable check.
    let mut errors = 0usize;
    for i in 0..8u64 {
        let ibits = bits_of(i, 3);
        let want = orig.eval(&ibits, &[]);
        for k in 0..8u64 {
            let kbits = bits_of(k, 3);
            if lsim.eval(&ibits, &kbits) != want {
                errors += 1;
                assert_eq!(i, k, "errors only on the diagonal");
            }
        }
    }
    assert_eq!(errors, 7, "exactly one error per wrong key");
    println!();
    println!("check: 7 wrong keys x 1 corrupted pattern each = {errors} errors  [ok]");
}
