//! Regenerates Table 1: `#DIP` of the SAT attack on SARLock-locked c7552
//! for key sizes 4/8/12 and splitting efforts N = 0…4.
//!
//! ```text
//! cargo run --release -p polykey-bench --bin table1            # |K| ∈ {4,8,12}
//! cargo run --release -p polykey-bench --bin table1 -- --quick # |K| ∈ {4,8}
//! ```
//!
//! Expected shape (paper): the baseline needs `≈ 2^|K|` DIPs and each
//! splitting level halves that — `#DIP ≈ 2^(|K|-N)` — because the splitting
//! ports (chosen by fan-out-cone analysis) land exactly on the SARLock
//! comparator inputs. All parallel terms report the same `#DIP` (± 1 from
//! termination accounting; see EXPERIMENTS.md).

use std::time::Instant;

use polykey_attack::{AttackSession, SimOracle, SplitStrategy};
use polykey_bench::{fmt_duration, HarnessArgs, TextTable};
use polykey_circuits::Iscas85;
use polykey_locking::{Key, LockScheme, Sarlock};

fn main() {
    let args = HarnessArgs::parse();
    let key_sizes: Vec<usize> = if args.quick { vec![4, 8] } else { vec![4, 8, 12] };
    let seed = args.seed.unwrap_or(0xDAC24);

    println!("Table 1: #DIP for SARLock-locked c7552 (stand-in netlist)");
    println!("splitting ports chosen by fan-out cone analysis; N = 0 is the baseline\n");

    let c7552 = Iscas85::C7552.build();
    let mut table = TextTable::new(vec![
        "|K|".to_string(),
        "N=0 (baseline)".to_string(),
        "N=1".to_string(),
        "N=2".to_string(),
        "N=3".to_string(),
        "N=4".to_string(),
    ]);
    let mut spread_note = Vec::new();

    for &kw in &key_sizes {
        // A fixed correct key derived from the seed keeps runs reproducible.
        let key = Key::from_u64(seed & ((1 << kw) - 1), kw);
        let locked = Sarlock::new(kw).lock(&c7552, &key).expect("c7552 has enough inputs");
        let mut row = vec![format!("{kw}")];
        for n in 0..=4usize {
            let started = Instant::now();
            let mut oracle = SimOracle::new(&c7552).expect("keyless oracle");
            let report = AttackSession::builder()
                .oracle(&mut oracle)
                .split_effort(n)
                .strategy(SplitStrategy::FanoutCone)
                .build()
                .expect("oracle provided")
                .run(&locked.netlist)
                .expect("attack runs");
            assert!(report.is_complete(), "|K|={kw} N={n} must succeed");
            let (max_dips, min_dips, terms) = match report.as_multi_key() {
                Some(outcome) => (
                    outcome.reports.iter().map(|r| r.dips).max().unwrap_or(0),
                    outcome.reports.iter().map(|r| r.dips).min().unwrap_or(0),
                    outcome.reports.len(),
                ),
                None => (report.stats().dips, report.stats().dips, 1),
            };
            if max_dips != min_dips {
                spread_note.push(format!(
                    "|K|={kw} N={n}: per-term #DIP ranges {min_dips}..{max_dips}"
                ));
            }
            row.push(format!("{max_dips}"));
            eprintln!(
                "  |K|={kw} N={n}: #DIP(max)={max_dips} across {terms} terms in {}",
                fmt_duration(started.elapsed()),
            );
        }
        table.row(row);
    }

    println!("{}", table.render());
    println!("(cells report the maximum #DIP over the 2^N parallel terms;");
    println!(" the paper reports the same quantity and observes identical");
    println!(" #DIP across terms)");
    if spread_note.is_empty() {
        println!("\nall parallel terms reported identical #DIP  [matches paper]");
    } else {
        println!("\nper-term #DIP spreads:");
        for s in spread_note {
            println!("  {s}");
        }
    }
    args.maybe_write_csv(&table);
}
