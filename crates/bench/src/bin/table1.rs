//! Regenerates Table 1: `#DIP` of the SAT attack on SARLock-locked c7552
//! for key sizes 4/8/12 and splitting efforts N = 0…4.
//!
//! ```text
//! cargo run --release -p polykey-bench --bin table1            # |K| ∈ {4,8,12}
//! cargo run --release -p polykey-bench --bin table1 -- --quick # |K| ∈ {4,8}
//! ```
//!
//! Expected shape (paper): the baseline needs `≈ 2^|K|` DIPs and each
//! splitting level halves that — `#DIP ≈ 2^(|K|-N)` — because the splitting
//! ports (chosen by fan-out-cone analysis) land exactly on the SARLock
//! comparator inputs. All parallel terms report the same `#DIP` (± 1 from
//! termination accounting; see EXPERIMENTS.md).
//!
//! This bin runs the registered `table1` scenario; `bench --only table1`
//! runs the same code and additionally persists `BENCH_attack.json`.

use polykey_bench::{harness, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse();
    let result = harness::run_scenario("table1", &args.ctx()).expect("table1 is registered");
    print!("{}", result.rendered);
    if let Some(table) = &result.table {
        args.maybe_write_csv(table);
    }
}
