//! Regenerates Table 2: runtime of attacking LUT-based insertion —
//! baseline SAT attack vs the multi-key attack with N = 4 (16 terms).
//!
//! ```text
//! cargo run --release -p polykey-bench --bin table2             # 24-key LUTs
//! cargo run --release -p polykey-bench --bin table2 -- --quick  # 4 circuits
//! cargo run --release -p polykey-bench --bin table2 -- --full   # paper-scale 144-key LUTs
//! cargo run --release -p polykey-bench --bin table2 -- --time-cap 1200
//! ```
//!
//! Expected shape (paper): the baseline attack is much slower than the
//! slowest of the 16 sub-tasks on most circuits; `max/baseline < 1/16`
//! (the break-even of running 16 terms on one core) for the majority of
//! the suite, with outliers (c5315 in the paper) possible.
//!
//! Absolute numbers differ from the paper (different hardware, solver and
//! stand-in netlists); EXPERIMENTS.md compares the shapes.

use std::time::Duration;

use polykey_attack::{AttackSession, AttackStatus, SimOracle, SplitStrategy};
use polykey_bench::{fmt_duration, HarnessArgs, TextTable};
use polykey_circuits::Iscas85;
use polykey_locking::{LockScheme, LutLock};
use rand::SeedableRng;

fn main() {
    let args = HarnessArgs::parse();
    let base_scheme = if args.full { LutLock::paper() } else { LutLock::small() };
    let circuits: Vec<Iscas85> = if args.quick {
        vec![Iscas85::C880, Iscas85::C1355, Iscas85::C1908, Iscas85::C6288]
    } else {
        Iscas85::table2_set().to_vec()
    };
    let time_cap = Duration::from_secs(args.time_cap.unwrap_or(600));
    let seed = args.seed.unwrap_or(0x7AB1E2);
    let scheme = base_scheme.with_seed(seed);

    println!(
        "Table 2: runtime of attacking LUT-based insertion ({} key bits, {} tapped nets)",
        scheme.key_bits(),
        scheme.module_inputs()
    );
    println!("baseline = plain SAT attack; this work = 16 parallel terms at N = 4");
    println!("per-attack time cap: {} (cells show >cap when hit)\n", fmt_duration(time_cap));

    let mut table = TextTable::new(vec![
        "Circuit",
        "Baseline",
        "Minimum",
        "Mean",
        "Maximum",
        "Maximum/Baseline",
    ]);

    for bench in circuits {
        let original = bench.build();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let locked = scheme.lock_random(&original, &mut rng).expect("lockable");
        eprintln!(
            "{}: locked with {} key bits ({} gates -> {})",
            bench,
            locked.key.len(),
            original.num_gates(),
            locked.netlist.num_gates()
        );

        // Baseline: the conventional SAT attack on the whole circuit, in
        // the textbook formulation (full circuit copies per DIP) that the
        // paper's tooling uses; dropping `.textbook(true)` would measure
        // the optimized folded engine instead.
        let mut oracle = SimOracle::new(&original).expect("keyless oracle");
        let baseline = AttackSession::builder()
            .oracle(&mut oracle)
            .textbook(true)
            .time_budget(time_cap)
            .record_dips(false)
            .build()
            .expect("oracle provided")
            .run(&locked.netlist)
            .expect("attack runs");
        let baseline_capped = baseline.status() == AttackStatus::TimeLimit;
        let baseline_time = baseline.stats().wall_time;
        eprintln!(
            "  baseline: {} ({} DIPs, status {:?})",
            fmt_duration(baseline_time),
            baseline.stats().dips,
            baseline.status()
        );

        // This work: N = 4, 16 parallel terms.
        let mut oracle = SimOracle::new(&original).expect("keyless oracle");
        let report = AttackSession::builder()
            .oracle(&mut oracle)
            .split_effort(4)
            .strategy(SplitStrategy::FanoutCone)
            .textbook(true)
            .time_budget(time_cap)
            .record_dips(false)
            .build()
            .expect("oracle provided")
            .run(&locked.netlist)
            .expect("attack runs");
        let outcome = report.as_multi_key().expect("N > 0");
        let any_capped = outcome.reports.iter().any(|r| r.status == AttackStatus::TimeLimit);
        let min = outcome.min_task_time();
        let mean = outcome.mean_task_time();
        let max = outcome.max_task_time();
        let max_term_dips = outcome.reports.iter().map(|r| r.dips).max().unwrap_or(0);
        let min_gates = outcome.reports.iter().map(|r| r.gates_after).min().unwrap_or(0);
        eprintln!(
            "  this work: min {} mean {} max {} over {} terms (max {} DIPs, term gates >= {}){}",
            fmt_duration(min),
            fmt_duration(mean),
            fmt_duration(max),
            outcome.reports.len(),
            max_term_dips,
            min_gates,
            if any_capped { " (some terms hit the cap)" } else { "" }
        );

        let ratio = max.as_secs_f64() / baseline_time.as_secs_f64().max(1e-9);
        let fmt_capped = |d: Duration, capped: bool| {
            if capped {
                format!(">{}", fmt_duration(d))
            } else {
                fmt_duration(d)
            }
        };
        table.row(vec![
            bench.name().to_string(),
            fmt_capped(baseline_time, baseline_capped),
            fmt_duration(min),
            fmt_duration(mean),
            fmt_capped(max, any_capped),
            format!(
                "{ratio:.3}{}",
                if baseline_capped { " (lower bound on speedup)" } else { "" }
            ),
        ]);
    }

    println!("\n{}", table.render());
    println!("break-even for single-core execution of 16 terms: ratio 1/16 = 0.0625");
    args.maybe_write_csv(&table);
}
