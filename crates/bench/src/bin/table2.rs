//! Regenerates Table 2: runtime of attacking LUT-based insertion —
//! baseline SAT attack vs the multi-key attack with N = 4 (16 terms).
//!
//! ```text
//! cargo run --release -p polykey-bench --bin table2             # 24-key LUTs
//! cargo run --release -p polykey-bench --bin table2 -- --quick  # 4 circuits
//! cargo run --release -p polykey-bench --bin table2 -- --full   # paper-scale 144-key LUTs
//! cargo run --release -p polykey-bench --bin table2 -- --time-cap 1200
//! ```
//!
//! Expected shape (paper): the baseline attack is much slower than the
//! slowest of the 16 sub-tasks on most circuits; `max/baseline < 1/16`
//! (the break-even of running 16 terms on one core) for the majority of
//! the suite, with outliers (c5315 in the paper) possible.
//!
//! Absolute numbers differ from the paper (different hardware, solver and
//! stand-in netlists); EXPERIMENTS.md compares the shapes.
//!
//! This bin runs the registered `table2` scenario; `bench --only table2`
//! runs the same code and additionally persists `BENCH_attack.json`.

use polykey_bench::{harness, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse();
    let result = harness::run_scenario("table2", &args.ctx()).expect("table2 is registered");
    print!("{}", result.rendered);
    if let Some(table) = &result.table {
        args.maybe_write_csv(table);
    }
}
