//! The scenario-diversity sweep the API redesign exists for: every
//! locking scheme × every splitting effort × a set of circuits, in one
//! harness loop over `Vec<Box<dyn LockScheme>>` and `AttackSession`.
//!
//! ```text
//! cargo run --release -p polykey-bench --bin matrix             # c432 + c880
//! cargo run --release -p polykey-bench --bin matrix -- --quick  # c432 only
//! cargo run --release -p polykey-bench --bin matrix -- --full   # + c1908, N up to 3
//! ```
//!
//! Every cell reports `#DIP (max over terms) / max term time`; each attack
//! result is recombined (Fig. 1b) and formally checked against the
//! original, so the table doubles as an executable correctness matrix.

use std::time::Duration;

use polykey_attack::{AttackSession, SimOracle};
use polykey_bench::{fmt_duration, HarnessArgs, TextTable};
use polykey_circuits::Iscas85;
use polykey_encode::{check_equivalence, EquivResult};
use polykey_locking::{AntiSat, LockScheme, LutLock, Rll, Sarlock};
use rand::SeedableRng;

fn main() {
    let args = HarnessArgs::parse();
    let seed = args.seed.unwrap_or(0xD1CE);
    let circuits: Vec<Iscas85> = if args.quick {
        vec![Iscas85::C432]
    } else if args.full {
        vec![Iscas85::C432, Iscas85::C880, Iscas85::C1908]
    } else {
        vec![Iscas85::C432, Iscas85::C880]
    };
    let max_effort = if args.full { 3 } else { 2 };
    let time_cap = Duration::from_secs(args.time_cap.unwrap_or(300));

    // The whole point of `LockScheme`: the sweep does not know or care
    // which scheme it is locking with.
    let schemes: Vec<Box<dyn LockScheme>> = vec![
        Box::new(Rll::new(8).with_seed(seed)),
        Box::new(Sarlock::new(6)),
        Box::new(AntiSat::new(4)),
        Box::new(LutLock::small().with_seed(seed)),
    ];

    println!(
        "Attack matrix: {} schemes x N = 0..={max_effort} x {} circuits (cap {} per attack)",
        schemes.len(),
        circuits.len(),
        fmt_duration(time_cap)
    );
    println!(
        "cells: #DIP (max over terms) / max term time; * = formally verified recombination\n"
    );

    let mut header = vec!["circuit / scheme".to_string()];
    for n in 0..=max_effort {
        header.push(format!("N={n}"));
    }
    let mut table = TextTable::new(header);

    for circuit in &circuits {
        let original = circuit.build();
        for scheme in &schemes {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let locked = match scheme.lock_random(&original, &mut rng) {
                Ok(locked) => locked,
                Err(e) => {
                    eprintln!("{circuit}/{}: cannot lock ({e})", scheme.name());
                    continue;
                }
            };
            let mut row = vec![format!("{}/{}", circuit.name(), scheme.name())];
            for n in 0..=max_effort {
                let mut oracle = SimOracle::new(&original).expect("keyless oracle");
                let report = AttackSession::builder()
                    .oracle(&mut oracle)
                    .split_effort(n)
                    .record_dips(false)
                    .time_budget(time_cap)
                    .build()
                    .expect("oracle provided")
                    .run(&locked.netlist)
                    .expect("attack runs");
                if !report.is_complete() {
                    row.push(format!("{:?}", report.status()));
                    continue;
                }
                let max_dips = match report.as_multi_key() {
                    Some(outcome) => outcome.reports.iter().map(|r| r.dips).max().unwrap_or(0),
                    None => report.stats().dips,
                };
                // The executable correctness check: recombined sub-keys
                // restore the original function, for every scheme.
                let recombined = report.recombine(&locked.netlist).expect("recombine");
                let verified = check_equivalence(&original, &recombined).expect("equiv")
                    == EquivResult::Equivalent;
                assert!(verified, "{}/{} N={n} must recombine", circuit.name(), scheme.name());
                row.push(format!(
                    "{max_dips} / {}{}",
                    fmt_duration(report.stats().max_subtask_time()),
                    if verified { " *" } else { "" }
                ));
            }
            table.row(row);
            eprintln!("{}/{} done", circuit.name(), scheme.name());
        }
    }

    println!("{}", table.render());
    println!("SARLock #DIP halves per splitting level; RLL and Anti-SAT are");
    println!("cheap everywhere; LUT cost sits in the miter size, which the");
    println!("cofactored terms shrink. One harness, every scheme.");
    args.maybe_write_csv(&table);
}
