//! The scenario-diversity sweep the API redesign exists for: every
//! locking scheme × every splitting effort × a set of circuits, in one
//! harness loop over `Vec<Box<dyn LockScheme>>` and `AttackSession`.
//!
//! ```text
//! cargo run --release -p polykey-bench --bin matrix             # c432 + c880
//! cargo run --release -p polykey-bench --bin matrix -- --quick  # c432 only
//! cargo run --release -p polykey-bench --bin matrix -- --full   # + c1908, N up to 3
//! ```
//!
//! Every cell reports `#DIP (max over terms) / max term time`; each attack
//! result is recombined (Fig. 1b) and formally checked against the
//! original, so the table doubles as an executable correctness matrix.
//!
//! This bin runs the registered `matrix` scenario; `bench --only matrix`
//! runs the same code and additionally persists `BENCH_attack.json`.

use polykey_bench::{harness, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse();
    let result = harness::run_scenario("matrix", &args.ctx()).expect("matrix is registered");
    print!("{}", result.rendered);
    if let Some(table) = &result.table {
        args.maybe_write_csv(table);
    }
}
