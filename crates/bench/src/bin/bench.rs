//! The unified benchmark harness: runs any subset of the scenario
//! registry, persists machine-readable `BENCH_*.json` telemetry, and
//! gates against a committed baseline.
//!
//! ```text
//! # the CI invocation: quick subset, telemetry, regression gate
//! cargo run --release -p polykey-bench --bin bench -- --quick \
//!     --baseline bench/baselines/quick.json --compare
//!
//! bench --list                  # what is registered
//! bench --only matrix,batch     # explicit subset
//! bench --tag ablation          # subset by tag (group names match too)
//! bench --quick --save-baseline bench/baselines/quick.json   # refresh
//! ```
//!
//! Selection: `--only` / `--tag` filter the whole registry; otherwise
//! `--quick` runs the quick subset and the default is every scenario.
//! Each run writes one `BENCH_<group>.json` per scenario group (attack,
//! encode) into `--out-dir` (default: the current directory). With
//! `--baseline <file> --compare` the run is checked against the baseline
//! with per-metric-class thresholds (see `harness::CompareConfig`;
//! `--threshold` overrides both ratios) and the process exits nonzero on
//! any regression — that exit code is the CI perf gate.

use std::process::ExitCode;

use polykey_bench::harness::{
    self, compare, document, parse_document, CompareConfig, Group, Record, Scenario,
    ScenarioCtx,
};

/// Flags of the unified `bench` bin (a superset of `HarnessArgs`, parsed
/// by hand like the rest of the suite).
#[derive(Default)]
struct BenchArgs {
    ctx: ScenarioCtx,
    only: Vec<String>,
    tags: Vec<String>,
    list: bool,
    out_dir: Option<String>,
    baseline: Option<String>,
    do_compare: bool,
    threshold: Option<f64>,
    save_baseline: Option<String>,
}

const USAGE: &str = "flags: --quick | --full | --only <a,b,..> | --tag <t> | --list \
                     | --time-cap <secs> | --seed <n> | --out-dir <dir> \
                     | --baseline <file> | --compare | --threshold <x> \
                     | --save-baseline <file>";

impl BenchArgs {
    fn parse() -> BenchArgs {
        let mut args = BenchArgs::default();
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut value =
                |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
            match flag.as_str() {
                "--quick" => args.ctx.quick = true,
                "--full" => args.ctx.full = true,
                "--time-cap" => {
                    args.ctx.time_cap = Some(
                        value("--time-cap").parse().expect("--time-cap must be an integer"),
                    );
                }
                "--seed" => {
                    args.ctx.seed =
                        Some(value("--seed").parse().expect("--seed must be an integer"));
                }
                "--only" => {
                    args.only.extend(value("--only").split(',').map(str::to_string));
                }
                "--tag" => args.tags.push(value("--tag")),
                "--list" => args.list = true,
                "--out-dir" => args.out_dir = Some(value("--out-dir")),
                "--baseline" => args.baseline = Some(value("--baseline")),
                "--compare" => args.do_compare = true,
                "--threshold" => {
                    args.threshold = Some(
                        value("--threshold").parse().expect("--threshold must be a number"),
                    );
                }
                "--save-baseline" => args.save_baseline = Some(value("--save-baseline")),
                "--help" | "-h" => {
                    eprintln!("{USAGE}");
                    std::process::exit(0);
                }
                other => panic!("unknown flag `{other}` (try --help)"),
            }
        }
        args
    }

    /// The run's scale label, recorded in every emitted document.
    fn mode(&self) -> &'static str {
        if self.ctx.quick {
            "quick"
        } else if self.ctx.full {
            "full"
        } else {
            "default"
        }
    }

    /// Applies the selection rules to the registry.
    fn select(&self) -> Vec<&'static Scenario> {
        let registry = harness::registry();
        if !self.only.is_empty() || !self.tags.is_empty() {
            for name in &self.only {
                assert!(
                    harness::find(name).is_some(),
                    "unknown scenario `{name}` (try --list)"
                );
            }
            registry
                .iter()
                .filter(|s| {
                    self.only.iter().any(|n| n == s.name)
                        || self.tags.iter().any(|t| s.has_tag(t))
                })
                .collect()
        } else if self.ctx.quick {
            registry.iter().filter(|s| s.quick).collect()
        } else {
            registry.iter().collect()
        }
    }
}

fn main() -> ExitCode {
    let args = BenchArgs::parse();

    if args.list {
        println!("registered scenarios (* = in the --quick subset):");
        for s in harness::registry() {
            println!(
                "  {}{:<18} [{}] {}",
                if s.quick { "*" } else { " " },
                s.name,
                s.group.as_str(),
                s.summary
            );
        }
        return ExitCode::SUCCESS;
    }

    let selected = args.select();
    assert!(!selected.is_empty(), "selection matched no scenarios (try --list)");
    eprintln!(
        "bench: running {} scenario(s) [{}] in {} mode",
        selected.len(),
        selected.iter().map(|s| s.name).collect::<Vec<_>>().join(", "),
        args.mode()
    );

    let mut records: Vec<Record> = Vec::new();
    for scenario in &selected {
        eprintln!("=== {} ===", scenario.name);
        let result = (scenario.run)(&args.ctx);
        print!("{}", result.rendered);
        records.extend(result.records);
    }
    // Per-scenario aggregates: individual quick cells sit below the
    // timing noise floor, the totals do not, so broad slowdowns stay
    // gated (see `harness::scenario_totals`).
    records.extend(harness::scenario_totals(&records));

    // One telemetry file per group that actually ran.
    let out_dir = args.out_dir.as_deref().unwrap_or(".");
    std::fs::create_dir_all(out_dir).expect("create --out-dir");
    for group in Group::all() {
        let group_records: Vec<Record> = records
            .iter()
            .filter(|r| selected.iter().any(|s| s.name == r.scenario && s.group == group))
            .cloned()
            .collect();
        if group_records.is_empty() {
            continue;
        }
        let path = format!("{}/{}", out_dir, group.file_name());
        let doc = document(group.as_str(), args.mode(), &group_records);
        std::fs::write(&path, doc.render()).expect("write telemetry");
        eprintln!("bench: wrote {} ({} records)", path, group_records.len());
    }

    if let Some(path) = &args.save_baseline {
        let doc = document("all", args.mode(), &records);
        std::fs::write(path, doc.render()).expect("write baseline");
        eprintln!("bench: saved baseline {path} ({} records)", records.len());
    }

    if args.do_compare {
        let path = args.baseline.as_deref().expect("--compare needs --baseline <file>");
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let baseline = parse_document(&text).expect("well-formed baseline");
        let config = match args.threshold {
            Some(t) => CompareConfig::with_threshold(t),
            None => CompareConfig::default(),
        };
        let report = compare(&baseline, &records, &config);
        print!("{}", report.render());
        if !report.is_pass() {
            return ExitCode::FAILURE;
        }
    } else if args.baseline.is_some() {
        eprintln!("bench: --baseline given without --compare; no gating performed");
    }
    ExitCode::SUCCESS
}
