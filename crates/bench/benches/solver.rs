//! Criterion micro-benchmarks for the CDCL solver.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use polykey_sat::{ClauseSink, CnfFormula, Lit, SolveResult, Var};

/// Pigeonhole principle: n pigeons into n-1 holes (unsat, resolution-hard).
#[allow(clippy::needless_range_loop)]
fn pigeonhole(n: usize) -> CnfFormula {
    let m = n - 1;
    let mut f = CnfFormula::new();
    let p: Vec<Vec<Lit>> =
        (0..n).map(|_| (0..m).map(|_| f.new_var().positive()).collect()).collect();
    for row in &p {
        f.add_clause(row);
    }
    for j in 0..m {
        for i1 in 0..n {
            for i2 in (i1 + 1)..n {
                f.add_clause(&[!p[i1][j], !p[i2][j]]);
            }
        }
    }
    f
}

/// Deterministic random 3-SAT at the given clause/variable ratio.
fn random_3sat(vars: usize, ratio: f64, seed: u64) -> CnfFormula {
    let mut f = CnfFormula::new();
    f.set_num_vars(vars);
    let m = (vars as f64 * ratio) as usize;
    let mut state = seed | 1;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state
    };
    for _ in 0..m {
        let mut clause = Vec::with_capacity(3);
        while clause.len() < 3 {
            let v = Var::new((next() >> 33) as u32 % vars as u32);
            if clause.iter().any(|l: &Lit| l.var() == v) {
                continue;
            }
            clause.push(Lit::new(v, next() % 2 == 0));
        }
        f.add_clause(&clause);
    }
    f
}

fn bench_pigeonhole(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver/pigeonhole");
    group.sample_size(10);
    for n in [6usize, 7, 8] {
        let f = pigeonhole(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &f, |b, f| {
            b.iter(|| {
                let mut s = f.to_solver();
                assert_eq!(s.solve(&[]), SolveResult::Unsat);
                black_box(s.stats().conflicts)
            })
        });
    }
    group.finish();
}

fn bench_random_3sat(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver/random3sat");
    group.sample_size(20);
    for vars in [100usize, 150] {
        let f = random_3sat(vars, 4.1, 0xBEEF);
        group.bench_with_input(BenchmarkId::from_parameter(vars), &f, |b, f| {
            b.iter(|| {
                let mut s = f.to_solver();
                black_box(s.solve(&[]))
            })
        });
    }
    group.finish();
}

fn bench_incremental_assumptions(c: &mut Criterion) {
    // Repeated solves under flipping assumptions — the SAT attack's usage
    // pattern.
    let f = random_3sat(120, 3.0, 7); // satisfiable region
    let mut group = c.benchmark_group("solver/incremental");
    group.sample_size(30);
    group.bench_function("assumptions", |b| {
        let mut s = f.to_solver();
        let mut i = 0u32;
        b.iter(|| {
            let v = Var::new(i % 120);
            i += 1;
            black_box(s.solve(&[v.positive()]))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pigeonhole, bench_random_3sat, bench_incremental_assumptions);
criterion_main!(benches);
