//! Criterion benchmarks for the attacks themselves, on instances small
//! enough for statistical repetition.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use polykey_attack::{
    multi_key_attack, sat_attack, MultiKeyConfig, SatAttackConfig, SimOracle,
};
use polykey_circuits::Iscas85;
use polykey_locking::{lock_rll, lock_sarlock_with_key, Key, SarlockConfig};
use rand::SeedableRng;

fn bench_sat_attack_rll(c: &mut Criterion) {
    let mut group = c.benchmark_group("attack/rll");
    group.sample_size(10);
    let original = Iscas85::C432.build();
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let locked = lock_rll(&original, 16, &mut rng).expect("lockable");
    let mut cfg = SatAttackConfig::new();
    cfg.record_dips = false;
    group.bench_function("sat_rll16_c432", |b| {
        b.iter(|| {
            let mut oracle = SimOracle::new(&original).expect("oracle");
            let outcome = sat_attack(&locked.netlist, &mut oracle, &cfg).expect("runs");
            assert!(outcome.is_success());
            black_box(outcome.stats.dips)
        })
    });
    group.finish();
}

fn bench_sat_attack_sarlock(c: &mut Criterion) {
    let mut group = c.benchmark_group("attack/sat_sarlock_c432");
    group.sample_size(10);
    let original = Iscas85::C432.build();
    for kw in [4usize, 6] {
        let locked = lock_sarlock_with_key(
            &original,
            &SarlockConfig::new(kw),
            &Key::from_u64(0b1010, kw),
        )
        .expect("lockable");
        let mut cfg = SatAttackConfig::new();
        cfg.record_dips = false;
        group.bench_with_input(BenchmarkId::from_parameter(kw), &locked, |b, locked| {
            b.iter(|| {
                let mut oracle = SimOracle::new(&original).expect("oracle");
                let outcome = sat_attack(&locked.netlist, &mut oracle, &cfg).expect("runs");
                black_box(outcome.stats.dips)
            })
        });
    }
    group.finish();
}

fn bench_multikey_vs_baseline(c: &mut Criterion) {
    // The headline comparison, in miniature: SARLock |K|=6 on c432,
    // baseline vs N=2 (sequential, to measure CPU work rather than
    // parallel wall time).
    let original = Iscas85::C432.build();
    let locked = lock_sarlock_with_key(
        &original,
        &SarlockConfig::new(6),
        &Key::from_u64(0b110101, 6),
    )
    .expect("lockable");

    let mut group = c.benchmark_group("attack/multikey_sarlock6_c432");
    group.sample_size(10);
    for n in [0usize, 2] {
        group.bench_with_input(BenchmarkId::new("split", n), &n, |b, &n| {
            let mut cfg = MultiKeyConfig::with_split_effort(n);
            cfg.parallel = false;
            cfg.sat.record_dips = false;
            b.iter(|| {
                let outcome =
                    multi_key_attack(&locked.netlist, &original, &cfg).expect("runs");
                assert!(outcome.is_complete());
                black_box(outcome.keys.len())
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sat_attack_rll,
    bench_sat_attack_sarlock,
    bench_multikey_vs_baseline
);
criterion_main!(benches);
