//! Criterion benchmarks for the attacks themselves, on instances small
//! enough for statistical repetition.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use polykey_attack::{AttackSession, SimOracle};
use polykey_circuits::Iscas85;
use polykey_locking::{Key, LockScheme, LutLock, Rll, Sarlock};
use rand::SeedableRng;

fn bench_sat_attack_rll(c: &mut Criterion) {
    let mut group = c.benchmark_group("attack/rll");
    group.sample_size(10);
    let original = Iscas85::C432.build();
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let locked = Rll::new(16).with_seed(42).lock_random(&original, &mut rng).expect("lockable");
    group.bench_function("sat_rll16_c432", |b| {
        b.iter(|| {
            let mut oracle = SimOracle::new(&original).expect("oracle");
            let report = AttackSession::builder()
                .oracle(&mut oracle)
                .record_dips(false)
                .build()
                .expect("oracle provided")
                .run(&locked.netlist)
                .expect("runs");
            assert!(report.is_complete());
            black_box(report.stats().dips)
        })
    });
    group.finish();
}

fn bench_sat_attack_sarlock(c: &mut Criterion) {
    let mut group = c.benchmark_group("attack/sat_sarlock_c432");
    group.sample_size(10);
    let original = Iscas85::C432.build();
    for kw in [4usize, 6] {
        let locked =
            Sarlock::new(kw).lock(&original, &Key::from_u64(0b1010, kw)).expect("lockable");
        group.bench_with_input(BenchmarkId::from_parameter(kw), &locked, |b, locked| {
            b.iter(|| {
                let mut oracle = SimOracle::new(&original).expect("oracle");
                let report = AttackSession::builder()
                    .oracle(&mut oracle)
                    .record_dips(false)
                    .build()
                    .expect("oracle provided")
                    .run(&locked.netlist)
                    .expect("runs");
                black_box(report.stats().dips)
            })
        });
    }
    group.finish();
}

fn bench_multikey_vs_baseline(c: &mut Criterion) {
    // The headline comparison, in miniature: SARLock |K|=6 on c432,
    // baseline vs N=2 (sequential, to measure CPU work rather than
    // parallel wall time).
    let original = Iscas85::C432.build();
    let locked =
        Sarlock::new(6).lock(&original, &Key::from_u64(0b110101, 6)).expect("lockable");

    let mut group = c.benchmark_group("attack/multikey_sarlock6_c432");
    group.sample_size(10);
    for n in [0usize, 2] {
        group.bench_with_input(BenchmarkId::new("split", n), &n, |b, &n| {
            b.iter(|| {
                let mut oracle = SimOracle::new(&original).expect("oracle");
                let report = AttackSession::builder()
                    .oracle(&mut oracle)
                    .split_effort(n)
                    .threads(1)
                    .record_dips(false)
                    .build()
                    .expect("oracle provided")
                    .run(&locked.netlist)
                    .expect("runs");
                assert!(report.is_complete());
                black_box(report.sub_keys().len())
            })
        });
    }
    group.finish();
}

fn bench_lut_locking(c: &mut Criterion) {
    // Locking itself is cheap; this tracks the LUT module construction.
    let original = Iscas85::C880.build();
    let mut group = c.benchmark_group("lock/lut_c880");
    group.sample_size(10);
    let scheme = LutLock::small().with_seed(7);
    group.bench_function("small", |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        b.iter(|| {
            let locked = scheme.lock_random(&original, &mut rng).expect("lockable");
            black_box(locked.netlist.num_gates())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sat_attack_rll,
    bench_sat_attack_sarlock,
    bench_multikey_vs_baseline,
    bench_lut_locking
);
criterion_main!(benches);
