//! Criterion micro-benchmarks for the netlist substrate: simulation
//! throughput, re-synthesis, and CNF encoding.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use polykey_circuits::Iscas85;
use polykey_encode::{encode, Binding};
use polykey_netlist::{cofactor_simplify, simplify, Simulator};
use polykey_sat::CnfFormula;

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("netlist/sim_packed");
    for bench in [Iscas85::C880, Iscas85::C6288, Iscas85::C7552] {
        let nl = bench.build();
        let inputs = vec![0xA5A5_5A5A_DEAD_BEEFu64; nl.inputs().len()];
        // 64 patterns per eval.
        group.throughput(Throughput::Elements(64));
        group.bench_with_input(BenchmarkId::from_parameter(bench.name()), &nl, |b, nl| {
            let mut sim = Simulator::new(nl).expect("acyclic");
            b.iter(|| black_box(sim.eval_packed(&inputs, &[])))
        });
    }
    group.finish();
}

fn bench_simplify(c: &mut Criterion) {
    let mut group = c.benchmark_group("netlist/simplify");
    group.sample_size(20);
    for bench in [Iscas85::C880, Iscas85::C7552] {
        let nl = bench.build();
        group.bench_with_input(BenchmarkId::from_parameter(bench.name()), &nl, |b, nl| {
            b.iter(|| black_box(simplify(nl).expect("acyclic").1.gates_after))
        });
    }
    group.finish();
}

fn bench_cofactor_simplify(c: &mut Criterion) {
    // The per-term netlist preparation of Algorithm 1.
    let nl = Iscas85::C7552.build();
    let pins: Vec<_> = nl.inputs()[..4].iter().map(|&id| (id, true)).collect();
    let mut group = c.benchmark_group("netlist/cofactor_simplify");
    group.sample_size(20);
    group.bench_function("c7552_n4", |b| {
        b.iter(|| black_box(cofactor_simplify(&nl, &pins).expect("valid").1.gates_after))
    });
    group.finish();
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("encode/tseitin");
    group.sample_size(30);
    for bench in [Iscas85::C880, Iscas85::C7552] {
        let nl = bench.build();
        group.bench_with_input(BenchmarkId::from_parameter(bench.name()), &nl, |b, nl| {
            b.iter(|| {
                let mut f = CnfFormula::new();
                let enc = encode(&mut f, nl, &Binding::fresh(nl)).expect("valid");
                black_box((enc.outputs.len(), f.num_clauses()))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_simulation,
    bench_simplify,
    bench_cofactor_simplify,
    bench_encode
);
criterion_main!(benches);
