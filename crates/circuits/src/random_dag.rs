//! Seeded random combinational netlists with an ISCAS-like gate mix.
//!
//! Used to build reproducible stand-ins for benchmark circuits whose
//! original netlist files are not redistributable here. The generator
//! matches input count, output count and approximate gate count, keeps
//! every input live, and leaves no dead logic (every gate feeds an output).

use rand::{Rng, RngExt, SeedableRng};

use polykey_netlist::{GateKind, Netlist, NodeId};

/// Specification for one random circuit.
#[derive(Clone, Debug)]
pub struct RandomCircuitSpec {
    /// Design name.
    pub name: String,
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Approximate number of gates (the result may differ by a few percent
    /// because sinks are merged to avoid dead logic).
    pub gates: usize,
    /// RNG seed: the same spec always generates the same netlist.
    pub seed: u64,
}

impl RandomCircuitSpec {
    /// Creates a spec.
    pub fn new(
        name: impl Into<String>,
        inputs: usize,
        outputs: usize,
        gates: usize,
        seed: u64,
    ) -> RandomCircuitSpec {
        RandomCircuitSpec { name: name.into(), inputs, outputs, gates, seed }
    }
}

/// Weighted ISCAS-like gate mix.
fn pick_kind<R: Rng>(rng: &mut R) -> GateKind {
    match rng.random_range(0..100u32) {
        0..=19 => GateKind::And,
        20..=44 => GateKind::Nand,
        45..=59 => GateKind::Or,
        60..=74 => GateKind::Nor,
        75..=84 => GateKind::Not,
        85..=94 => GateKind::Xor,
        _ => GateKind::Xnor,
    }
}

/// Generates the circuit described by `spec`.
///
/// Properties guaranteed:
///
/// - exactly `spec.inputs` inputs and `spec.outputs` outputs;
/// - every primary input is in the fan-in cone of some output;
/// - no dead logic: every gate drives an output (directly or transitively);
/// - deterministic for a given spec (including the seed).
///
/// # Panics
///
/// Panics if `inputs` or `outputs` is 0, or `gates < inputs`.
#[allow(clippy::needless_range_loop)]
pub fn generate_random(spec: &RandomCircuitSpec) -> Netlist {
    assert!(spec.inputs > 0 && spec.outputs > 0, "need at least one input and output");
    assert!(spec.gates >= spec.inputs, "need at least one gate per input to keep inputs live");
    let mut rng = rand::rngs::StdRng::seed_from_u64(spec.seed);
    let mut nl = Netlist::new(spec.name.clone());

    let inputs: Vec<NodeId> =
        (0..spec.inputs).map(|i| nl.add_input(format!("I{i}")).expect("fresh")).collect();
    let mut pool: Vec<NodeId> = inputs.clone();

    // Reserve some budget for the sink-merge stage (≈ outputs gates).
    let body_gates = spec.gates.saturating_sub(spec.outputs / 2).max(spec.inputs);
    for g in 0..body_gates {
        let kind = if g < spec.inputs {
            // The first `inputs` gates each consume a distinct input, so
            // every input is live.
            pick_kind(&mut rng)
        } else {
            pick_kind(&mut rng)
        };
        let arity = match kind.arity() {
            Some(a) => a,
            None => {
                // Mostly 2-input gates with a sprinkle of 3- and 4-input.
                match rng.random_range(0..10u32) {
                    0 => 3,
                    1 => 4,
                    _ => 2,
                }
            }
        };
        let mut fanins = Vec::with_capacity(arity);
        if g < spec.inputs {
            fanins.push(inputs[g]);
        }
        while fanins.len() < arity {
            // Locality bias: prefer recent nodes to get realistic depth.
            let id = if rng.random_bool(0.7) && pool.len() > 32 {
                let lo = pool.len() - 32;
                pool[rng.random_range(lo..pool.len())]
            } else {
                pool[rng.random_range(0..pool.len())]
            };
            fanins.push(id);
        }
        let id = nl.add_gate(format!("N{g}"), kind, &fanins).expect("fresh");
        pool.push(id);
    }

    // Output selection: start from the sinks (nodes nothing reads) so that
    // no logic is dead, then merge surplus sinks pairwise, then top up from
    // the deepest remaining nodes.
    let fanouts = nl.fanout_adjacency();
    let mut sinks: Vec<NodeId> = nl
        .node_ids()
        .filter(|id| fanouts[id.index()].is_empty() && !nl.node(*id).kind().is_input())
        .collect();
    let mut merge_idx = 0usize;
    while sinks.len() > spec.outputs {
        // Merge the two oldest sinks into one fresh gate.
        let a = sinks.remove(0);
        let b = sinks.remove(0);
        let kind = if rng.random_bool(0.5) { GateKind::Xor } else { GateKind::Nand };
        let m = nl.add_gate(format!("MRG{merge_idx}"), kind, &[a, b]).expect("fresh");
        merge_idx += 1;
        sinks.push(m);
    }
    let mut outputs = sinks;
    // Top up with non-sink nodes if there were too few sinks (their cones
    // are already live, so no dead logic appears).
    let mut candidate = nl.num_nodes();
    while outputs.len() < spec.outputs {
        candidate -= 1;
        let id = nl.node_ids().nth(candidate).expect("in range");
        if !outputs.contains(&id) && !nl.node(id).kind().is_input() {
            outputs.push(id);
        }
    }
    for id in outputs.into_iter().take(spec.outputs) {
        nl.mark_output(id).expect("distinct outputs");
    }
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use polykey_netlist::analysis::{transitive_fanin, transitive_fanout};

    fn spec(gates: usize) -> RandomCircuitSpec {
        RandomCircuitSpec::new("t", 8, 4, gates, 0xABCD)
    }

    #[test]
    fn interface_is_exact() {
        let nl = generate_random(&spec(120));
        assert_eq!(nl.inputs().len(), 8);
        assert_eq!(nl.outputs().len(), 4);
        nl.validate().unwrap();
    }

    #[test]
    fn gate_count_is_close() {
        for target in [50usize, 200, 1000] {
            let nl = generate_random(&RandomCircuitSpec::new("t", 10, 8, target, 7));
            let got = nl.num_gates();
            let tolerance = target / 5 + 10;
            assert!(got.abs_diff(target) <= tolerance, "target {target}, got {got}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_random(&spec(150));
        let b = generate_random(&spec(150));
        assert_eq!(a.num_nodes(), b.num_nodes());
        let mut sa = polykey_netlist::Simulator::new(&a).unwrap();
        let mut sb = polykey_netlist::Simulator::new(&b).unwrap();
        for v in 0..64u64 {
            let bits = polykey_netlist::bits_of(v * 37 % 256, 8);
            assert_eq!(sa.eval(&bits, &[]), sb.eval(&bits, &[]));
        }
        let c = generate_random(&RandomCircuitSpec::new("t", 8, 4, 150, 999));
        assert_ne!(
            {
                let mut sc = polykey_netlist::Simulator::new(&c).unwrap();
                (0..64u64)
                    .map(|v| sc.eval(&polykey_netlist::bits_of(v, 8), &[]))
                    .collect::<Vec<_>>()
            },
            (0..64u64)
                .map(|v| sa.eval(&polykey_netlist::bits_of(v, 8), &[]))
                .collect::<Vec<_>>(),
            "different seeds give different functions"
        );
    }

    #[test]
    fn all_inputs_live() {
        let nl = generate_random(&spec(100));
        let cone = transitive_fanin(&nl, nl.outputs());
        for &pi in nl.inputs() {
            assert!(cone[pi.index()], "input {} must reach an output", nl.node_name(pi));
        }
    }

    #[test]
    fn no_dead_logic() {
        let nl = generate_random(&spec(100));
        let cone = transitive_fanin(&nl, nl.outputs());
        for id in nl.node_ids() {
            assert!(
                cone[id.index()],
                "gate {} is dead (not in any output cone)",
                nl.node_name(id)
            );
        }
        // Sanity: outputs reachable from inputs.
        let fan = transitive_fanout(&nl, nl.inputs());
        assert!(nl.outputs().iter().all(|o| fan[o.index()]));
    }
}
