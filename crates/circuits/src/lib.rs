//! # polykey-circuits: benchmark circuits for the attack evaluation
//!
//! Sources of evaluation workloads:
//!
//! - [`Iscas85`] — the ten classic ISCAS'85 benchmarks as reproducible
//!   stand-ins (c6288 as a genuine 16×16 array multiplier, the others as
//!   seeded random DAGs matching the published interface and size), plus
//!   the verbatim [`c17`];
//! - [`arith`] — real arithmetic structures: ripple adders, array
//!   multipliers, comparators, parity trees;
//! - [`generate_random`] — the seeded ISCAS-like random netlist generator.
//!
//! # Examples
//!
//! ```
//! use polykey_circuits::Iscas85;
//!
//! let c7552 = Iscas85::C7552.build();
//! assert_eq!(c7552.inputs().len(), 207);
//! assert_eq!(c7552.outputs().len(), 108);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arith;
mod iscas;
mod random_dag;

pub use iscas::{c17, Iscas85};
pub use random_dag::{generate_random, RandomCircuitSpec};
