//! Arithmetic circuit generators: adders, multipliers, comparators, parity.
//!
//! These provide *real* (non-random) structure for the benchmark suite:
//! c6288 in ISCAS'85 is a 16×16 array multiplier, and [`multiplier`] builds
//! the same function from AND gates and full adders.

use polykey_netlist::{GateKind, Netlist, NetlistError, NodeId};

/// Builds a full adder inside `nl`; returns `(sum, carry)`.
fn full_adder(
    nl: &mut Netlist,
    a: NodeId,
    b: NodeId,
    cin: Option<NodeId>,
    prefix: &str,
) -> Result<(NodeId, Option<NodeId>), NetlistError> {
    match cin {
        None => {
            // Half adder.
            let s = nl.add_gate(format!("{prefix}_s"), GateKind::Xor, &[a, b])?;
            let c = nl.add_gate(format!("{prefix}_c"), GateKind::And, &[a, b])?;
            Ok((s, Some(c)))
        }
        Some(cin) => {
            let axb = nl.add_gate(format!("{prefix}_axb"), GateKind::Xor, &[a, b])?;
            let s = nl.add_gate(format!("{prefix}_s"), GateKind::Xor, &[axb, cin])?;
            let g1 = nl.add_gate(format!("{prefix}_g1"), GateKind::And, &[a, b])?;
            let g2 = nl.add_gate(format!("{prefix}_g2"), GateKind::And, &[axb, cin])?;
            let c = nl.add_gate(format!("{prefix}_c"), GateKind::Or, &[g1, g2])?;
            Ok((s, Some(c)))
        }
    }
}

/// An `n`-bit ripple-carry adder: inputs `a0..`, `b0..` (bit 0 = LSB) and
/// `cin`; outputs `sum0..sum{n-1}`, `cout`.
///
/// # Panics
///
/// Panics if `n` is 0.
pub fn ripple_adder(n: usize) -> Netlist {
    assert!(n > 0);
    let mut nl = Netlist::new(format!("add{n}"));
    let a: Vec<NodeId> =
        (0..n).map(|i| nl.add_input(format!("a{i}")).expect("fresh")).collect();
    let b: Vec<NodeId> =
        (0..n).map(|i| nl.add_input(format!("b{i}")).expect("fresh")).collect();
    let cin = nl.add_input("cin").expect("fresh");
    let mut carry = Some(cin);
    let mut sums = Vec::with_capacity(n);
    for i in 0..n {
        let (s, c) =
            full_adder(&mut nl, a[i], b[i], carry, &format!("fa{i}")).expect("valid adder");
        sums.push(s);
        carry = c;
    }
    for s in sums {
        nl.mark_output(s).expect("distinct outputs");
    }
    nl.mark_output(carry.expect("n > 0 leaves a carry")).expect("distinct");
    nl
}

/// An `n`×`n` array multiplier: inputs `a0..`, `b0..`; outputs
/// `p0..p{2n-1}` (bit 0 = LSB). With `n = 16` this is the c6288 function.
///
/// # Panics
///
/// Panics if `n` is 0.
#[allow(clippy::needless_range_loop)]
pub fn multiplier(n: usize) -> Netlist {
    assert!(n > 0);
    let mut nl = Netlist::new(format!("mul{n}"));
    let a: Vec<NodeId> =
        (0..n).map(|i| nl.add_input(format!("a{i}")).expect("fresh")).collect();
    let b: Vec<NodeId> =
        (0..n).map(|i| nl.add_input(format!("b{i}")).expect("fresh")).collect();

    // Partial products pp[i][j] = a[j] & b[i], weight i + j.
    let mut pp = vec![vec![None::<NodeId>; n]; n];
    for i in 0..n {
        for (j, pj) in pp[i].iter_mut().enumerate() {
            *pj = Some(
                nl.add_gate(format!("pp_{i}_{j}"), GateKind::And, &[a[j], b[i]])
                    .expect("fresh"),
            );
        }
    }

    // Row-by-row accumulation with ripple carries.
    let mut acc: Vec<Option<NodeId>> = vec![None; 2 * n];
    acc[..n].copy_from_slice(&pp[0][..n]);
    for i in 1..n {
        let mut carry: Option<NodeId> = None;
        for j in 0..n {
            let pos = i + j;
            let addend = pp[i][j].expect("built above");
            let (s, c) = match acc[pos] {
                Some(prev) => full_adder(&mut nl, prev, addend, carry, &format!("fa_{i}_{j}"))
                    .expect("valid"),
                None => match carry {
                    Some(cin) => full_adder(&mut nl, addend, cin, None, &format!("fa_{i}_{j}"))
                        .expect("valid"),
                    None => (addend, None),
                },
            };
            acc[pos] = Some(s);
            carry = c;
        }
        if let Some(c) = carry {
            // Carry out of the row lands at weight i + n.
            debug_assert!(acc[i + n].is_none());
            acc[i + n] = Some(c);
        }
    }
    for (idx, bit) in acc.iter().enumerate() {
        match bit {
            Some(id) => nl.mark_output(*id).expect("distinct"),
            None => {
                // Only the top bit of a 1×1 multiplier can be absent.
                let zero = nl.add_const(format!("p{idx}_zero"), false).expect("fresh");
                nl.mark_output(zero).expect("distinct");
            }
        }
    }
    nl
}

/// An `n`-bit equality comparator: output 1 iff `a == b`.
///
/// # Panics
///
/// Panics if `n` is 0.
pub fn comparator(n: usize) -> Netlist {
    assert!(n > 0);
    let mut nl = Netlist::new(format!("eq{n}"));
    let a: Vec<NodeId> =
        (0..n).map(|i| nl.add_input(format!("a{i}")).expect("fresh")).collect();
    let b: Vec<NodeId> =
        (0..n).map(|i| nl.add_input(format!("b{i}")).expect("fresh")).collect();
    let eqs: Vec<NodeId> = (0..n)
        .map(|i| nl.add_gate(format!("eq{i}"), GateKind::Xnor, &[a[i], b[i]]).expect("fresh"))
        .collect();
    let out = if eqs.len() == 1 {
        eqs[0]
    } else {
        nl.add_gate("all_eq", GateKind::And, &eqs).expect("fresh")
    };
    nl.mark_output(out).expect("distinct");
    nl
}

/// An `n`-input parity tree (XOR reduction), built as a balanced tree of
/// 2-input XORs.
///
/// # Panics
///
/// Panics if `n` is 0.
pub fn parity(n: usize) -> Netlist {
    assert!(n > 0);
    let mut nl = Netlist::new(format!("par{n}"));
    let mut layer: Vec<NodeId> =
        (0..n).map(|i| nl.add_input(format!("x{i}")).expect("fresh")).collect();
    let mut level = 0;
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        for (i, pair) in layer.chunks(2).enumerate() {
            if pair.len() == 2 {
                next.push(
                    nl.add_gate(format!("x_{level}_{i}"), GateKind::Xor, &[pair[0], pair[1]])
                        .expect("fresh"),
                );
            } else {
                next.push(pair[0]);
            }
        }
        layer = next;
        level += 1;
    }
    nl.mark_output(layer[0]).expect("distinct");
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use polykey_netlist::{bits_of, bits_to_u64, Simulator};

    #[test]
    fn adder_is_correct() {
        let n = 4;
        let nl = ripple_adder(n);
        assert_eq!(nl.inputs().len(), 2 * n + 1);
        assert_eq!(nl.outputs().len(), n + 1);
        let mut sim = Simulator::new(&nl).unwrap();
        for a in 0..16u64 {
            for b in 0..16u64 {
                for cin in 0..2u64 {
                    let mut inputs = bits_of(a, n);
                    inputs.extend(bits_of(b, n));
                    inputs.push(cin == 1);
                    let out = sim.eval(&inputs, &[]);
                    let got = bits_to_u64(&out);
                    assert_eq!(got, a + b + cin, "{a}+{b}+{cin}");
                }
            }
        }
    }

    #[test]
    fn multiplier_small_exhaustive() {
        for n in [1usize, 2, 3, 4] {
            let nl = multiplier(n);
            assert_eq!(nl.inputs().len(), 2 * n);
            assert_eq!(nl.outputs().len(), 2 * n);
            let mut sim = Simulator::new(&nl).unwrap();
            for a in 0..(1u64 << n) {
                for b in 0..(1u64 << n) {
                    let mut inputs = bits_of(a, n);
                    inputs.extend(bits_of(b, n));
                    let out = sim.eval(&inputs, &[]);
                    assert_eq!(bits_to_u64(&out), a * b, "{a}*{b} (n={n})");
                }
            }
        }
    }

    #[test]
    fn multiplier_16_spot_checks() {
        let nl = multiplier(16);
        assert_eq!(nl.inputs().len(), 32);
        assert_eq!(nl.outputs().len(), 32);
        // Gate count in the c6288 ballpark (c6288 has 2406 NOR-only gates;
        // the AND/XOR/OR realization is leaner but same order).
        assert!(nl.num_gates() > 1000, "got {}", nl.num_gates());
        let mut sim = Simulator::new(&nl).unwrap();
        for (a, b) in [(0u64, 0u64), (1, 1), (65535, 65535), (12345, 54321), (40000, 2)] {
            let mut inputs = bits_of(a, 16);
            inputs.extend(bits_of(b, 16));
            let out = sim.eval(&inputs, &[]);
            assert_eq!(bits_to_u64(&out), a * b, "{a}*{b}");
        }
    }

    #[test]
    fn comparator_and_parity() {
        let nl = comparator(3);
        let mut sim = Simulator::new(&nl).unwrap();
        for a in 0..8u64 {
            for b in 0..8u64 {
                let mut inputs = bits_of(a, 3);
                inputs.extend(bits_of(b, 3));
                assert_eq!(sim.eval(&inputs, &[]), vec![a == b]);
            }
        }
        let nl = parity(5);
        let mut sim = Simulator::new(&nl).unwrap();
        for v in 0..32u64 {
            let bits = bits_of(v, 5);
            assert_eq!(sim.eval(&bits, &[]), vec![v.count_ones() % 2 == 1]);
        }
    }
}

/// An `n`-bit 4-operation ALU: inputs `a`, `b` (n bits each) and a 2-bit
/// opcode `op0`, `op1`; output `y` (n bits).
///
/// | op1 op0 | function |
/// |---------|----------|
/// | 0 0     | a AND b  |
/// | 0 1     | a OR b   |
/// | 1 0     | a XOR b  |
/// | 1 1     | a + b (mod 2^n) |
///
/// # Panics
///
/// Panics if `n` is 0.
pub fn alu(n: usize) -> Netlist {
    assert!(n > 0);
    let mut nl = Netlist::new(format!("alu{n}"));
    let a: Vec<NodeId> =
        (0..n).map(|i| nl.add_input(format!("a{i}")).expect("fresh")).collect();
    let b: Vec<NodeId> =
        (0..n).map(|i| nl.add_input(format!("b{i}")).expect("fresh")).collect();
    let op0 = nl.add_input("op0").expect("fresh");
    let op1 = nl.add_input("op1").expect("fresh");

    // Adder chain (no carry-in).
    let mut carry: Option<NodeId> = None;
    let mut sum = Vec::with_capacity(n);
    for i in 0..n {
        let (s, c) =
            full_adder(&mut nl, a[i], b[i], carry, &format!("alu_fa{i}")).expect("valid adder");
        sum.push(s);
        carry = c;
    }
    for i in 0..n {
        let and = nl.add_gate(format!("alu_and{i}"), GateKind::And, &[a[i], b[i]]).expect("f");
        let or = nl.add_gate(format!("alu_or{i}"), GateKind::Or, &[a[i], b[i]]).expect("f");
        let xor = nl.add_gate(format!("alu_xor{i}"), GateKind::Xor, &[a[i], b[i]]).expect("f");
        // select by op0 within each op1 half, then by op1.
        let lo =
            nl.add_gate(format!("alu_lo{i}"), GateKind::Mux, &[op0, and, or]).expect("fresh");
        let hi = nl
            .add_gate(format!("alu_hi{i}"), GateKind::Mux, &[op0, xor, sum[i]])
            .expect("fresh");
        let y = nl.add_gate(format!("y{i}"), GateKind::Mux, &[op1, lo, hi]).expect("fresh");
        nl.mark_output(y).expect("distinct");
    }
    nl
}

/// An `n`-bit logical barrel shifter (left shift): inputs `x` (n bits) and
/// `s` (⌈log2 n⌉ bits); outputs `y = x << s` (bits shifted past the top are
/// dropped, zeros shift in).
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn barrel_shifter(n: usize) -> Netlist {
    assert!(n >= 2);
    let stages = usize::BITS as usize - (n - 1).leading_zeros() as usize;
    let mut nl = Netlist::new(format!("bshift{n}"));
    let x: Vec<NodeId> =
        (0..n).map(|i| nl.add_input(format!("x{i}")).expect("fresh")).collect();
    let s: Vec<NodeId> =
        (0..stages).map(|i| nl.add_input(format!("s{i}")).expect("fresh")).collect();
    let zero = nl.add_const("shift_zero", false).expect("fresh");

    let mut layer = x;
    for (stage, &sel) in s.iter().enumerate() {
        let amount = 1usize << stage;
        let mut next = Vec::with_capacity(n);
        for i in 0..n {
            let shifted = if i >= amount { layer[i - amount] } else { zero };
            let m = nl
                .add_gate(format!("sh{stage}_{i}"), GateKind::Mux, &[sel, layer[i], shifted])
                .expect("fresh");
            next.push(m);
        }
        layer = next;
    }
    for (i, &bit) in layer.iter().enumerate() {
        let _ = i;
        nl.mark_output(bit).expect("distinct");
    }
    nl
}

/// An `n`-input population counter: outputs the binary count of set input
/// bits (⌈log2(n+1)⌉ output bits), built from a full-adder tree.
///
/// # Panics
///
/// Panics if `n` is 0.
pub fn popcount(n: usize) -> Netlist {
    assert!(n > 0);
    let mut nl = Netlist::new(format!("popcount{n}"));
    let inputs: Vec<NodeId> =
        (0..n).map(|i| nl.add_input(format!("x{i}")).expect("fresh")).collect();
    // Column-wise carry-save reduction: columns[w] = bits of weight 2^w.
    let mut columns: Vec<Vec<NodeId>> = vec![inputs];
    let mut w = 0usize;
    let mut uid = 0usize;
    while w < columns.len() {
        while columns[w].len() > 1 {
            if columns[w].len() >= 3 {
                let a = columns[w].pop().expect("len>=3");
                let b = columns[w].pop().expect("len>=2");
                let c = columns[w].pop().expect("len>=1");
                let (s, carry) =
                    full_adder(&mut nl, a, b, Some(c), &format!("pc{uid}")).expect("valid");
                uid += 1;
                columns[w].push(s);
                if columns.len() == w + 1 {
                    columns.push(Vec::new());
                }
                columns[w + 1].push(carry.expect("full adder carries"));
            } else {
                let a = columns[w].pop().expect("len==2");
                let b = columns[w].pop().expect("len==1");
                let (s, carry) =
                    full_adder(&mut nl, a, b, None, &format!("pc{uid}")).expect("valid");
                uid += 1;
                columns[w].push(s);
                if columns.len() == w + 1 {
                    columns.push(Vec::new());
                }
                columns[w + 1].push(carry.expect("half adder carries"));
            }
        }
        w += 1;
    }
    for column in &columns {
        if let Some(&bit) = column.first() {
            nl.mark_output(bit).expect("distinct");
        }
    }
    nl
}

#[cfg(test)]
mod extra_tests {
    use super::*;
    use polykey_netlist::{bits_of, bits_to_u64, Simulator};

    #[test]
    fn alu_matches_reference() {
        let n = 4;
        let nl = alu(n);
        assert_eq!(nl.inputs().len(), 2 * n + 2);
        assert_eq!(nl.outputs().len(), n);
        let mut sim = Simulator::new(&nl).unwrap();
        for a in 0..16u64 {
            for b in 0..16u64 {
                for op in 0..4u64 {
                    let mut inputs = bits_of(a, n);
                    inputs.extend(bits_of(b, n));
                    inputs.push(op & 1 == 1);
                    inputs.push(op >> 1 & 1 == 1);
                    let got = bits_to_u64(&sim.eval(&inputs, &[]));
                    let want = match op {
                        0 => a & b,
                        1 => a | b,
                        2 => a ^ b,
                        _ => (a + b) % 16,
                    };
                    assert_eq!(got, want, "a={a} b={b} op={op}");
                }
            }
        }
    }

    #[test]
    fn barrel_shifter_matches_reference() {
        let n = 8;
        let nl = barrel_shifter(n);
        assert_eq!(nl.inputs().len(), n + 3);
        let mut sim = Simulator::new(&nl).unwrap();
        for x in [0u64, 1, 0b1011_0110, 0xFF, 0x5A] {
            for s in 0..8u64 {
                let mut inputs = bits_of(x, n);
                inputs.extend(bits_of(s, 3));
                let got = bits_to_u64(&sim.eval(&inputs, &[]));
                let want = (x << s) & 0xFF;
                assert_eq!(got, want, "x={x:#x} s={s}");
            }
        }
    }

    #[test]
    fn popcount_matches_reference() {
        for n in [1usize, 3, 5, 8, 11] {
            let nl = popcount(n);
            let mut sim = Simulator::new(&nl).unwrap();
            for v in 0..(1u64 << n) {
                let bits = bits_of(v, n);
                let got = bits_to_u64(&sim.eval(&bits, &[]));
                assert_eq!(got, v.count_ones() as u64, "n={n} v={v:b}");
            }
        }
    }

    #[test]
    fn generators_validate() {
        for nl in [alu(6), barrel_shifter(16), popcount(12)] {
            nl.validate().unwrap();
        }
    }
}
