//! The ISCAS'85 benchmark catalog: c17 verbatim plus reproducible
//! stand-ins for the ten classic circuits.
//!
//! The original `.bench` files are not redistributable in this offline
//! environment, so every circuit other than c17 is *synthesized*:
//!
//! - **c6288** is generated as a real 16×16 array multiplier — the actual
//!   function of the original benchmark;
//! - the remaining circuits are seeded random DAGs matching the published
//!   primary-input count, output count and approximate gate count.
//!
//! Real `.bench` files can always be used instead via
//! [`polykey_netlist::parse_bench`]; everything downstream only depends on
//! the netlist interface. See `DESIGN.md` §3 for the substitution rationale.

use polykey_netlist::Netlist;

use crate::arith::multiplier;
use crate::random_dag::{generate_random, RandomCircuitSpec};

/// The ten ISCAS'85 benchmark circuits.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum Iscas85 {
    C432,
    C499,
    C880,
    C1355,
    C1908,
    C2670,
    C3540,
    C5315,
    C6288,
    C7552,
}

impl Iscas85 {
    /// All circuits, smallest first.
    pub fn all() -> [Iscas85; 10] {
        [
            Iscas85::C432,
            Iscas85::C499,
            Iscas85::C880,
            Iscas85::C1355,
            Iscas85::C1908,
            Iscas85::C2670,
            Iscas85::C3540,
            Iscas85::C5315,
            Iscas85::C6288,
            Iscas85::C7552,
        ]
    }

    /// The eight circuits used in Table 2 of the paper.
    pub fn table2_set() -> [Iscas85; 8] {
        [
            Iscas85::C880,
            Iscas85::C1355,
            Iscas85::C1908,
            Iscas85::C2670,
            Iscas85::C3540,
            Iscas85::C5315,
            Iscas85::C6288,
            Iscas85::C7552,
        ]
    }

    /// The circuit's conventional name.
    pub fn name(self) -> &'static str {
        match self {
            Iscas85::C432 => "c432",
            Iscas85::C499 => "c499",
            Iscas85::C880 => "c880",
            Iscas85::C1355 => "c1355",
            Iscas85::C1908 => "c1908",
            Iscas85::C2670 => "c2670",
            Iscas85::C3540 => "c3540",
            Iscas85::C5315 => "c5315",
            Iscas85::C6288 => "c6288",
            Iscas85::C7552 => "c7552",
        }
    }

    /// `(inputs, outputs, gates)` of the original benchmark, per the
    /// ISCAS'85 literature.
    pub fn published_shape(self) -> (usize, usize, usize) {
        match self {
            Iscas85::C432 => (36, 7, 160),
            Iscas85::C499 => (41, 32, 202),
            Iscas85::C880 => (60, 26, 383),
            Iscas85::C1355 => (41, 32, 546),
            Iscas85::C1908 => (33, 25, 880),
            Iscas85::C2670 => (233, 140, 1193),
            Iscas85::C3540 => (50, 22, 1669),
            Iscas85::C5315 => (178, 123, 2307),
            Iscas85::C6288 => (32, 32, 2406),
            Iscas85::C7552 => (207, 108, 3512),
        }
    }

    /// Builds the stand-in netlist for this benchmark (see module docs).
    pub fn build(self) -> Netlist {
        let (inputs, outputs, gates) = self.published_shape();
        match self {
            Iscas85::C6288 => {
                // The real function: a 16×16 array multiplier.
                let mut nl = multiplier(16);
                nl.set_name("c6288");
                nl
            }
            other => {
                // Seed derives from the name so every stand-in is stable.
                let seed = other
                    .name()
                    .bytes()
                    .fold(0xC0FFEE_u64, |acc, b| acc.wrapping_mul(31).wrapping_add(b as u64));
                generate_random(&RandomCircuitSpec::new(
                    other.name(),
                    inputs,
                    outputs,
                    gates,
                    seed,
                ))
            }
        }
    }
}

impl std::fmt::Display for Iscas85 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// The genuine ISCAS'85 c17 netlist (6 NAND gates), reproduced verbatim —
/// small enough to be public knowledge in every textbook.
pub fn c17() -> Netlist {
    let mut nl = Netlist::new("c17");
    let g1 = nl.add_input("G1").expect("fresh");
    let g2 = nl.add_input("G2").expect("fresh");
    let g3 = nl.add_input("G3").expect("fresh");
    let g6 = nl.add_input("G6").expect("fresh");
    let g7 = nl.add_input("G7").expect("fresh");
    let g10 = nl.add_gate("G10", polykey_netlist::GateKind::Nand, &[g1, g3]).expect("fresh");
    let g11 = nl.add_gate("G11", polykey_netlist::GateKind::Nand, &[g3, g6]).expect("fresh");
    let g16 = nl.add_gate("G16", polykey_netlist::GateKind::Nand, &[g2, g11]).expect("fresh");
    let g19 = nl.add_gate("G19", polykey_netlist::GateKind::Nand, &[g11, g7]).expect("fresh");
    let g22 = nl.add_gate("G22", polykey_netlist::GateKind::Nand, &[g10, g16]).expect("fresh");
    let g23 = nl.add_gate("G23", polykey_netlist::GateKind::Nand, &[g16, g19]).expect("fresh");
    nl.mark_output(g22).expect("distinct");
    nl.mark_output(g23).expect("distinct");
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use polykey_netlist::analysis::NetlistStats;

    #[test]
    fn c17_shape() {
        let nl = c17();
        assert_eq!(nl.inputs().len(), 5);
        assert_eq!(nl.outputs().len(), 2);
        assert_eq!(nl.num_gates(), 6);
        nl.validate().unwrap();
    }

    #[test]
    fn all_standins_match_published_interface() {
        for bench in Iscas85::all() {
            let nl = bench.build();
            let (inputs, outputs, gates) = bench.published_shape();
            assert_eq!(nl.inputs().len(), inputs, "{bench} inputs");
            assert_eq!(nl.outputs().len(), outputs, "{bench} outputs");
            if bench == Iscas85::C6288 {
                // The real multiplier function, but realized in AND/XOR/OR:
                // one XOR here corresponds to ~4 NORs in the published
                // NOR-only netlist, so the count is lower by design.
                assert!(nl.num_gates() > 1200, "{bench}: got {}", nl.num_gates());
            } else {
                // Random stand-ins track the published count within 20%.
                assert!(
                    nl.num_gates().abs_diff(gates) <= gates / 5 + 10,
                    "{bench}: published {gates} gates, stand-in has {}",
                    nl.num_gates()
                );
            }
            nl.validate().unwrap();
        }
    }

    #[test]
    fn standins_are_deterministic() {
        let a = Iscas85::C880.build();
        let b = Iscas85::C880.build();
        assert_eq!(a.num_nodes(), b.num_nodes());
        let mut sa = polykey_netlist::Simulator::new(&a).unwrap();
        let mut sb = polykey_netlist::Simulator::new(&b).unwrap();
        let zeros = vec![false; a.inputs().len()];
        assert_eq!(sa.eval(&zeros, &[]), sb.eval(&zeros, &[]));
    }

    #[test]
    fn c6288_is_a_multiplier() {
        let nl = Iscas85::C6288.build();
        let mut sim = polykey_netlist::Simulator::new(&nl).unwrap();
        let mut inputs = polykey_netlist::bits_of(100, 16);
        inputs.extend(polykey_netlist::bits_of(200, 16));
        let out = sim.eval(&inputs, &[]);
        assert_eq!(polykey_netlist::bits_to_u64(&out), 20000);
    }

    #[test]
    fn stats_are_printable() {
        let nl = Iscas85::C432.build();
        let stats = NetlistStats::of(&nl).unwrap();
        assert!(stats.depth > 3, "random stand-ins should have real depth");
        assert!(!stats.to_string().is_empty());
    }

    #[test]
    fn table2_set_is_the_paper_list() {
        let names: Vec<&str> = Iscas85::table2_set().iter().map(|b| b.name()).collect();
        assert_eq!(
            names,
            vec!["c880", "c1355", "c1908", "c2670", "c3540", "c5315", "c6288", "c7552"]
        );
    }
}
