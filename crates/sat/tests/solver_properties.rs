//! Property-based and stress tests: the CDCL solver against brute force.

use proptest::prelude::*;
use rand::{RngExt, SeedableRng};

use polykey_sat::{ClauseSink, CnfFormula, Lit, SolveResult, Solver, Var};

/// Strategy: a random CNF over at most `max_vars` variables.
fn arb_cnf(
    max_vars: u32,
    max_clauses: usize,
    max_len: usize,
) -> impl Strategy<Value = CnfFormula> {
    let clause = proptest::collection::vec(
        (0..max_vars, proptest::bool::ANY).prop_map(|(v, neg)| Lit::new(Var::new(v), neg)),
        1..=max_len,
    );
    proptest::collection::vec(clause, 0..=max_clauses).prop_map(move |clauses| {
        let mut f = CnfFormula::new();
        f.set_num_vars(max_vars as usize);
        for c in clauses {
            f.add_clause(&c);
        }
        f
    })
}

/// Brute-force satisfiability of a small formula.
fn brute_force_sat(f: &CnfFormula) -> bool {
    f.count_models_brute_force() > 0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn solver_agrees_with_brute_force(f in arb_cnf(8, 40, 5)) {
        let mut solver = f.to_solver();
        let result = solver.solve(&[]);
        let expected = brute_force_sat(&f);
        prop_assert_eq!(result == SolveResult::Sat, expected);
        if result == SolveResult::Sat {
            // The reported model must actually satisfy the formula.
            let assignment: Vec<bool> = (0..f.num_vars())
                .map(|i| solver.model_value(Var::new(i as u32).positive()).unwrap_or(false))
                .collect();
            prop_assert_eq!(f.eval(&assignment), Some(true));
        }
    }

    #[test]
    fn assumptions_equal_unit_clauses(f in arb_cnf(7, 30, 4), asm_bits in 0u8..128) {
        // Solving under assumptions must agree with adding them as units.
        let assumptions: Vec<Lit> = (0..7)
            .map(|i| Lit::new(Var::new(i), asm_bits >> i & 1 == 1))
            .collect();
        let mut with_assumptions = f.to_solver();
        let res_a = with_assumptions.solve(&assumptions);

        let mut with_units = f.clone();
        for &l in &assumptions {
            with_units.add_clause(&[l]);
        }
        let mut s = with_units.to_solver();
        let res_u = s.solve(&[]);
        prop_assert_eq!(res_a, res_u);
    }

    #[test]
    fn unsat_core_is_sound(f in arb_cnf(6, 25, 4), asm_bits in 0u8..64) {
        let assumptions: Vec<Lit> = (0..6)
            .map(|i| Lit::new(Var::new(i), asm_bits >> i & 1 == 1))
            .collect();
        let mut solver = f.to_solver();
        if solver.solve(&assumptions) == SolveResult::Unsat {
            let core: Vec<Lit> = solver.unsat_core().to_vec();
            // Every core literal is one of the assumptions.
            for l in &core {
                prop_assert!(assumptions.contains(l), "core literal {} not assumed", l);
            }
            // The core alone must already be unsatisfiable (when the formula
            // itself was satisfiable, the core carries the contradiction).
            let mut again = f.to_solver();
            prop_assert_eq!(again.solve(&core), SolveResult::Unsat);
        }
    }

    #[test]
    fn incremental_solving_is_consistent(f in arb_cnf(7, 20, 4), extra in arb_cnf(7, 10, 4)) {
        // solve(f), then add extra clauses, then solve again ==
        // solving f ∪ extra from scratch.
        let mut inc = f.to_solver();
        let _ = inc.solve(&[]);
        for c in extra.clauses() {
            inc.add_clause(c);
        }
        let res_inc = inc.solve(&[]);

        let mut combined = f.clone();
        for c in extra.clauses() {
            combined.add_clause(c);
        }
        let mut scratch = combined.to_solver();
        prop_assert_eq!(res_inc, scratch.solve(&[]));
    }
}

// ---------------------------------------------------------------------
// Deterministic stress tests
// ---------------------------------------------------------------------

/// Random 3-SAT near the phase transition; checks model validity on SAT.
#[test]
fn random_3sat_stress() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0FFEE);
    for round in 0..30 {
        let n = 40 + round;
        let m = (n as f64 * 4.2) as usize;
        let mut f = CnfFormula::new();
        f.set_num_vars(n);
        for _ in 0..m {
            let mut clause = Vec::with_capacity(3);
            while clause.len() < 3 {
                let v = Var::new(rng.random_range(0..n as u32));
                if clause.iter().any(|l: &Lit| l.var() == v) {
                    continue;
                }
                clause.push(Lit::new(v, rng.random_bool(0.5)));
            }
            f.add_clause(&clause);
        }
        let mut solver = f.to_solver();
        if solver.solve(&[]) == SolveResult::Sat {
            let assignment: Vec<bool> = (0..n)
                .map(|i| solver.model_value(Var::new(i as u32).positive()).unwrap_or(false))
                .collect();
            assert_eq!(f.eval(&assignment), Some(true), "model must satisfy formula");
        }
    }
}

/// A satisfiable instance with an embedded unique solution: parity chains.
#[test]
fn xor_ladder_unique_solution() {
    // x_{i+1} = x_i XOR c_i with x_0 = 1 pins every variable.
    let mut solver = Solver::new();
    let n = 200usize;
    let xs: Vec<Lit> = (0..n).map(|_| ClauseSink::new_var(&mut solver).positive()).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let mut expected = vec![true];
    solver.add_clause(&[xs[0]]);
    for i in 0..n - 1 {
        let c = rng.random_bool(0.5);
        let prev = expected[i];
        expected.push(prev ^ c);
        // x_{i+1} = x_i xor c  <=>  clauses over (x_i, x_{i+1})
        let (a, b) = (xs[i], xs[i + 1]);
        if c {
            solver.add_clause(&[a, b]);
            solver.add_clause(&[!a, !b]);
        } else {
            solver.add_clause(&[a, !b]);
            solver.add_clause(&[!a, b]);
        }
    }
    assert_eq!(solver.solve(&[]), SolveResult::Sat);
    for (i, &l) in xs.iter().enumerate() {
        assert_eq!(solver.model_value(l), Some(expected[i]), "bit {i}");
    }
}

/// Graph-coloring instances: triangle 2-coloring unsat, path 2-coloring sat.
#[test]
fn graph_coloring() {
    // Triangle with 2 colors: unsat.
    let mut s = Solver::new();
    let color = |s: &mut Solver| ClauseSink::new_var(s).positive();
    let verts: Vec<Lit> = (0..3).map(|_| color(&mut s)).collect();
    for i in 0..3 {
        for j in (i + 1)..3 {
            // adjacent vertices differ: (vi ∨ vj) ∧ (¬vi ∨ ¬vj)
            s.add_clause(&[verts[i], verts[j]]);
            s.add_clause(&[!verts[i], !verts[j]]);
        }
    }
    assert_eq!(s.solve(&[]), SolveResult::Unsat);

    // Path of 50 vertices with 2 colors: sat, alternating.
    let mut s = Solver::new();
    let verts: Vec<Lit> = (0..50).map(|_| ClauseSink::new_var(&mut s).positive()).collect();
    for w in verts.windows(2) {
        s.add_clause(&[w[0], w[1]]);
        s.add_clause(&[!w[0], !w[1]]);
    }
    assert_eq!(s.solve(&[]), SolveResult::Sat);
    for w in verts.windows(2) {
        assert_ne!(s.model_value(w[0]), s.model_value(w[1]));
    }
}

/// Many repeated solves with flipping assumptions exercise trail cleanup.
#[test]
fn repeated_assumption_flips() {
    let mut s = Solver::new();
    let n = 30usize;
    let xs: Vec<Lit> = (0..n).map(|_| ClauseSink::new_var(&mut s).positive()).collect();
    // Chain: x_i -> x_{i+1}
    for w in xs.windows(2) {
        s.add_clause(&[!w[0], w[1]]);
    }
    for round in 0..100 {
        let i = round % n;
        // Assuming x_i forces everything after it.
        assert_eq!(s.solve(&[xs[i]]), SolveResult::Sat);
        for (j, &x) in xs.iter().enumerate() {
            if j >= i {
                assert_eq!(s.model_value(x), Some(true));
            }
        }
        // Assuming x_i ∧ ¬x_{n-1} is contradictory.
        if i < n - 1 {
            assert_eq!(s.solve(&[xs[i], !xs[n - 1]]), SolveResult::Unsat);
        }
    }
}
