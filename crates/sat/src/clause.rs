//! Clause storage for the solver: an indexed arena with lazy deletion.

use crate::lit::Lit;

/// A handle to a clause stored in the solver's [`ClauseDb`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub(crate) struct ClauseRef(pub(crate) u32);

/// A clause plus the metadata CDCL search needs.
///
/// The first two literals are the watched ones; propagation keeps the
/// invariant that `lits[1]` is the literal that was just falsified when a
/// watcher fires, and `lits[0]` is the implied literal when the clause
/// becomes unit.
#[derive(Debug)]
pub(crate) struct Clause {
    pub(crate) lits: Vec<Lit>,
    /// Activity for learnt-clause garbage collection (bumped on conflict use).
    pub(crate) activity: f64,
    /// Literal-block distance at learning time (glue level).
    pub(crate) lbd: u32,
    pub(crate) learnt: bool,
    /// Lazily deleted: watchers skip and drop references to deleted clauses.
    pub(crate) deleted: bool,
}

impl Clause {
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.lits.len()
    }
}

/// The clause database: original and learnt clauses in one arena.
///
/// Deletion is lazy (a tombstone flag); watch lists drop dead references as
/// they encounter them. Deleted slots are reused for new clauses via a free
/// list, bounding memory growth across [`Solver::reduce_db`] cycles.
///
/// [`Solver::reduce_db`]: crate::Solver
#[derive(Debug, Default)]
pub(crate) struct ClauseDb {
    clauses: Vec<Clause>,
    free: Vec<u32>,
    num_original: usize,
    num_learnt: usize,
    /// Total literal count in live clauses, for stats.
    lits_live: usize,
}

impl ClauseDb {
    pub(crate) fn new() -> ClauseDb {
        ClauseDb::default()
    }

    pub(crate) fn insert(&mut self, lits: Vec<Lit>, learnt: bool, lbd: u32) -> ClauseRef {
        debug_assert!(lits.len() >= 2, "unit clauses live on the trail, not in the db");
        self.lits_live += lits.len();
        if learnt {
            self.num_learnt += 1;
        } else {
            self.num_original += 1;
        }
        let clause = Clause { lits, activity: 0.0, lbd, learnt, deleted: false };
        if let Some(slot) = self.free.pop() {
            self.clauses[slot as usize] = clause;
            ClauseRef(slot)
        } else {
            self.clauses.push(clause);
            ClauseRef((self.clauses.len() - 1) as u32)
        }
    }

    /// Marks a clause deleted; its slot becomes reusable.
    pub(crate) fn delete(&mut self, cref: ClauseRef) {
        let c = &mut self.clauses[cref.0 as usize];
        debug_assert!(!c.deleted);
        c.deleted = true;
        self.lits_live -= c.lits.len();
        if c.learnt {
            self.num_learnt -= 1;
        } else {
            self.num_original -= 1;
        }
        c.lits = Vec::new();
        self.free.push(cref.0);
    }

    #[inline]
    pub(crate) fn get(&self, cref: ClauseRef) -> &Clause {
        &self.clauses[cref.0 as usize]
    }

    #[inline]
    pub(crate) fn get_mut(&mut self, cref: ClauseRef) -> &mut Clause {
        &mut self.clauses[cref.0 as usize]
    }

    pub(crate) fn num_original(&self) -> usize {
        self.num_original
    }

    pub(crate) fn num_learnt(&self) -> usize {
        self.num_learnt
    }

    pub(crate) fn lits_live(&self) -> usize {
        self.lits_live
    }

    /// Iterates over the handles of all live clauses.
    pub(crate) fn refs(&self) -> impl Iterator<Item = ClauseRef> + '_ {
        self.clauses
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.deleted)
            .map(|(i, _)| ClauseRef(i as u32))
    }

    /// Iterates over the handles of live learnt clauses.
    pub(crate) fn learnt_refs(&self) -> impl Iterator<Item = ClauseRef> + '_ {
        self.clauses
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.deleted && c.learnt)
            .map(|(i, _)| ClauseRef(i as u32))
    }
}

/// A watch-list entry: the clause to inspect and a cached "blocker" literal.
///
/// If the blocker is already true the clause is satisfied and need not be
/// touched, which avoids most clause dereferences during propagation.
#[derive(Copy, Clone, Debug)]
pub(crate) struct Watcher {
    pub(crate) cref: ClauseRef,
    pub(crate) blocker: Lit,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::Var;

    fn lits(v: &[i32]) -> Vec<Lit> {
        v.iter().map(|&x| Lit::from_dimacs(x)).collect()
    }

    #[test]
    fn insert_and_get() {
        let mut db = ClauseDb::new();
        let c1 = db.insert(lits(&[1, 2, 3]), false, 0);
        let c2 = db.insert(lits(&[-1, -2]), true, 2);
        assert_eq!(db.get(c1).len(), 3);
        assert!(db.get(c2).learnt);
        assert_eq!(db.num_original(), 1);
        assert_eq!(db.num_learnt(), 1);
        assert_eq!(db.lits_live(), 5);
    }

    #[test]
    fn delete_reuses_slot() {
        let mut db = ClauseDb::new();
        let c1 = db.insert(lits(&[1, 2]), true, 2);
        let _c2 = db.insert(lits(&[3, 4]), false, 0);
        db.delete(c1);
        assert_eq!(db.num_learnt(), 0);
        assert_eq!(db.lits_live(), 2);
        let c3 = db.insert(lits(&[5, 6, 7]), false, 0);
        assert_eq!(c3, c1, "deleted slot should be reused");
        assert_eq!(db.refs().count(), 2);
    }

    #[test]
    fn refs_skip_deleted() {
        let mut db = ClauseDb::new();
        let a = db.insert(lits(&[1, 2]), false, 0);
        let b = db.insert(lits(&[1, 3]), true, 1);
        let c = db.insert(lits(&[2, 3]), true, 1);
        db.delete(b);
        let live: Vec<_> = db.refs().collect();
        assert_eq!(live, vec![a, c]);
        let learnt: Vec<_> = db.learnt_refs().collect();
        assert_eq!(learnt, vec![c]);
    }

    #[test]
    fn watcher_is_small() {
        // Watch lists dominate memory; keep the entry compact.
        assert!(std::mem::size_of::<Watcher>() <= 8);
        let w = Watcher { cref: ClauseRef(3), blocker: Var::new(1).positive() };
        assert_eq!(w.cref, ClauseRef(3));
    }
}
