//! CNF preprocessing: SatELite-style simplification.
//!
//! Implements the classic inprocessing trio on a [`CnfFormula`]:
//!
//! - **unit propagation** to fixpoint (with conflict detection),
//! - **subsumption** (drop clauses that are supersets of others) and
//!   **self-subsuming resolution** (strengthen clauses by resolving away
//!   one literal against an almost-subsuming clause),
//! - **bounded variable elimination** (resolve out variables whose
//!   resolvent set is no larger than the clauses removed).
//!
//! Eliminated variables disappear from the formula but satisfying
//! assignments can be *reconstructed*: [`PreprocessResult::extend_model`]
//! replays the elimination stack in reverse, choosing values that satisfy
//! the removed clauses (Eén & Biere, SAT'05).
//!
//! The attack pipeline does not preprocess by default (its formulas are
//! built incrementally), but the preprocessor is exposed for offline use
//! and for shrinking DIMACS instances.

use std::collections::HashSet;

use crate::cnf::{ClauseSink, CnfFormula};
use crate::lit::{Lit, Var};

/// Limits for the preprocessor.
#[derive(Copy, Clone, Debug)]
pub struct PreprocessConfig {
    /// Skip elimination of variables occurring more often than this.
    pub max_occurrences: usize,
    /// Allow elimination only if it does not grow the clause count.
    pub max_growth: isize,
    /// Maximum resolvent length to accept during elimination.
    pub max_resolvent_len: usize,
}

impl Default for PreprocessConfig {
    fn default() -> PreprocessConfig {
        PreprocessConfig { max_occurrences: 20, max_growth: 0, max_resolvent_len: 12 }
    }
}

/// The outcome of preprocessing.
#[derive(Clone, Debug)]
pub struct PreprocessResult {
    /// The simplified formula (same variable numbering; eliminated
    /// variables simply no longer occur).
    pub formula: CnfFormula,
    /// `Some(false)` if the formula was proved unsatisfiable outright.
    pub verdict: Option<bool>,
    /// Values forced by unit propagation (variable, value).
    pub fixed: Vec<(Var, bool)>,
    /// Elimination stack for model reconstruction: `(var, clauses)` pushed
    /// in elimination order.
    eliminated: Vec<(Var, Vec<Vec<Lit>>)>,
}

impl PreprocessResult {
    /// Extends a model of the simplified formula to a model of the
    /// original formula, assigning eliminated and fixed variables.
    ///
    /// `model[i]` is the value of variable `i`; entries for eliminated
    /// variables are overwritten.
    ///
    /// # Panics
    ///
    /// Panics if `model` is shorter than the formula's variable count.
    pub fn extend_model(&self, model: &mut [bool]) {
        for &(v, b) in &self.fixed {
            model[v.index()] = b;
        }
        // Replay eliminations newest-first: each eliminated variable's
        // removed clauses must be satisfied; set the variable accordingly.
        for (v, clauses) in self.eliminated.iter().rev() {
            // Default: false. If some removed clause is unsatisfied and
            // contains v positively, flip to true (the resolution property
            // guarantees one polarity works).
            let mut value = false;
            for clause in clauses {
                let satisfied_without_v =
                    clause.iter().any(|l| l.var() != *v && l.apply(model[l.var().index()]));
                if !satisfied_without_v {
                    let needs = clause
                        .iter()
                        .find(|l| l.var() == *v)
                        .expect("clause mentions its pivot");
                    value = !needs.is_negated();
                }
            }
            model[v.index()] = value;
            // Re-check: all clauses must now hold.
            debug_assert!(clauses
                .iter()
                .all(|c| c.iter().any(|l| l.apply(model[l.var().index()]))));
        }
    }

    /// Number of variables eliminated.
    pub fn num_eliminated(&self) -> usize {
        self.eliminated.len()
    }
}

/// A 64-bit clause signature: bit `v mod 64` set for each variable.
/// `sig(a) & !sig(b) != 0` proves `a ⊄ b`.
fn signature(clause: &[Lit]) -> u64 {
    clause.iter().fold(0u64, |acc, l| acc | 1 << (l.var().index() % 64))
}

/// Preprocesses a formula. See the module docs for the transformations.
///
/// # Examples
///
/// ```
/// use polykey_sat::{preprocess, CnfFormula, ClauseSink, PreprocessConfig};
///
/// let mut f = CnfFormula::new();
/// let a = f.new_var().positive();
/// let b = f.new_var().positive();
/// f.add_clause(&[a]);            // unit
/// f.add_clause(&[!a, b]);        // propagates b
/// let result = preprocess(&f, &PreprocessConfig::default());
/// assert_eq!(result.verdict, None);
/// assert_eq!(result.formula.num_clauses(), 0, "everything propagated away");
/// assert_eq!(result.fixed.len(), 2);
/// ```
pub fn preprocess(formula: &CnfFormula, config: &PreprocessConfig) -> PreprocessResult {
    let num_vars = formula.num_vars();
    // Working clause set; None = deleted.
    let mut clauses: Vec<Option<Vec<Lit>>> = Vec::with_capacity(formula.num_clauses());
    'next: for clause in formula.clauses() {
        let mut c: Vec<Lit> = clause.to_vec();
        c.sort_unstable();
        c.dedup();
        for w in c.windows(2) {
            if w[0] == !w[1] {
                continue 'next; // tautology
            }
        }
        clauses.push(Some(c));
    }

    let mut result = PreprocessResult {
        formula: CnfFormula::new(),
        verdict: None,
        fixed: Vec::new(),
        eliminated: Vec::new(),
    };
    let mut assign: Vec<Option<bool>> = vec![None; num_vars];

    // --- Unit propagation to fixpoint -------------------------------
    loop {
        let mut changed = false;
        #[allow(clippy::needless_range_loop)]
        for i in 0..clauses.len() {
            let Some(c) = clauses[i].clone() else { continue };
            let mut remaining: Vec<Lit> = Vec::with_capacity(c.len());
            let mut satisfied = false;
            for &l in &c {
                match assign[l.var().index()] {
                    Some(b) if l.apply(b) => {
                        satisfied = true;
                        break;
                    }
                    Some(_) => {}
                    None => remaining.push(l),
                }
            }
            if satisfied {
                clauses[i] = None;
                changed = true;
                continue;
            }
            match remaining.len() {
                0 => {
                    result.verdict = Some(false);
                    return result;
                }
                1 => {
                    let l = remaining[0];
                    assign[l.var().index()] = Some(!l.is_negated());
                    result.fixed.push((l.var(), !l.is_negated()));
                    clauses[i] = None;
                    changed = true;
                }
                _ if remaining.len() < c.len() => {
                    clauses[i] = Some(remaining);
                    changed = true;
                }
                _ => {}
            }
        }
        if !changed {
            break;
        }
    }

    // --- Subsumption + self-subsuming resolution ---------------------
    subsume_all(&mut clauses);

    // --- Bounded variable elimination --------------------------------
    let mut frozen: HashSet<usize> = HashSet::new();
    for &(v, _) in &result.fixed {
        frozen.insert(v.index());
    }
    let mut eliminated_vars: HashSet<usize> = HashSet::new();
    loop {
        let mut occ_pos: Vec<Vec<usize>> = vec![Vec::new(); num_vars];
        let mut occ_neg: Vec<Vec<usize>> = vec![Vec::new(); num_vars];
        for (i, c) in clauses.iter().enumerate() {
            if let Some(c) = c {
                for l in c {
                    if l.is_negated() {
                        occ_neg[l.var().index()].push(i);
                    } else {
                        occ_pos[l.var().index()].push(i);
                    }
                }
            }
        }
        let mut any = false;
        for v in 0..num_vars {
            if frozen.contains(&v) || eliminated_vars.contains(&v) {
                continue;
            }
            let pos = &occ_pos[v];
            let neg = &occ_neg[v];
            if pos.is_empty() && neg.is_empty() {
                continue;
            }
            if pos.len() + neg.len() > config.max_occurrences {
                continue;
            }
            // Build all resolvents on v.
            let mut resolvents: Vec<Vec<Lit>> = Vec::new();
            let mut too_big = false;
            'pairs: for &pi in pos {
                for &ni in neg {
                    let (Some(pc), Some(nc)) = (&clauses[pi], &clauses[ni]) else {
                        continue;
                    };
                    let Some(r) = resolve(pc, nc, Var::new(v as u32)) else {
                        continue; // tautological resolvent
                    };
                    if r.len() > config.max_resolvent_len {
                        too_big = true;
                        break 'pairs;
                    }
                    resolvents.push(r);
                }
            }
            if too_big {
                continue;
            }
            let removed = pos.len() + neg.len();
            if resolvents.len() as isize - removed as isize > config.max_growth {
                continue;
            }
            // Commit: record removed clauses for reconstruction, delete
            // them, add resolvents.
            let mut removed_clauses = Vec::with_capacity(removed);
            for &i in pos.iter().chain(neg) {
                if let Some(c) = clauses[i].take() {
                    removed_clauses.push(c);
                }
            }
            result.eliminated.push((Var::new(v as u32), removed_clauses));
            eliminated_vars.insert(v);
            for r in resolvents {
                clauses.push(Some(r));
            }
            any = true;
            // Occurrence lists are stale now; restart the scan.
            break;
        }
        if !any {
            break;
        }
        subsume_all(&mut clauses);
    }

    result.formula.set_num_vars(num_vars);
    for c in clauses.into_iter().flatten() {
        result.formula.add_clause(&c);
    }
    result
}

/// Resolves two clauses on pivot `v`; `None` if the resolvent is a
/// tautology.
fn resolve(pos: &[Lit], neg: &[Lit], v: Var) -> Option<Vec<Lit>> {
    let mut r: Vec<Lit> =
        pos.iter().chain(neg.iter()).copied().filter(|l| l.var() != v).collect();
    r.sort_unstable();
    r.dedup();
    for w in r.windows(2) {
        if w[0] == !w[1] {
            return None;
        }
    }
    Some(r)
}

/// Forward subsumption and self-subsuming resolution over the clause set.
fn subsume_all(clauses: &mut [Option<Vec<Lit>>]) {
    // Sort indices by length so subsumers come first.
    let mut order: Vec<usize> = (0..clauses.len()).filter(|&i| clauses[i].is_some()).collect();
    order.sort_by_key(|&i| clauses[i].as_ref().map(Vec::len));
    let sigs: Vec<u64> =
        clauses.iter().map(|c| c.as_ref().map(|c| signature(c)).unwrap_or(0)).collect();
    for (k, &i) in order.iter().enumerate() {
        let Some(ci) = clauses[i].clone() else { continue };
        let sig_i = sigs[i];
        for &j in &order[k + 1..] {
            if i == j {
                continue;
            }
            let Some(cj) = &clauses[j] else { continue };
            if cj.len() < ci.len() {
                continue;
            }
            if sig_i & !signature(cj) != 0 {
                continue; // signature filter: ci has a var cj lacks
            }
            match subsumes(&ci, cj) {
                Subsume::Subsumed => {
                    clauses[j] = None;
                }
                Subsume::Strengthen(l) => {
                    // Self-subsuming resolution: remove ¬l from cj.
                    let mut stronger = cj.clone();
                    stronger.retain(|&x| x != !l);
                    clauses[j] = Some(stronger);
                }
                Subsume::No => {}
            }
        }
    }
}

enum Subsume {
    /// `a ⊆ b`: b is redundant.
    Subsumed,
    /// `a \ {l} ⊆ b` and `¬l ∈ b`: b can drop ¬l.
    Strengthen(Lit),
    No,
}

/// Checks subsumption of sorted clause `a` against clause `b`.
fn subsumes(a: &[Lit], b: &[Lit]) -> Subsume {
    let mut flipped: Option<Lit> = None;
    for &l in a {
        if b.contains(&l) {
            continue;
        }
        if b.contains(&!l) && flipped.is_none() {
            flipped = Some(l);
            continue;
        }
        return Subsume::No;
    }
    match flipped {
        None => Subsume::Subsumed,
        Some(l) => Subsume::Strengthen(l),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SolveResult;

    fn lit(d: i32) -> Lit {
        Lit::from_dimacs(d)
    }

    fn formula(clauses: &[&[i32]], vars: usize) -> CnfFormula {
        let mut f = CnfFormula::new();
        f.set_num_vars(vars);
        for c in clauses {
            let c: Vec<Lit> = c.iter().map(|&d| lit(d)).collect();
            f.add_clause(&c);
        }
        f
    }

    /// Equisatisfiability + model reconstruction check by brute force.
    fn check_preserves_sat(f: &CnfFormula) {
        let before = f.count_models_brute_force() > 0;
        let result = preprocess(f, &PreprocessConfig::default());
        match result.verdict {
            Some(false) => {
                assert!(!before, "preprocessor claimed unsat on a sat formula");
                return;
            }
            Some(true) => unreachable!("verdict true is never produced"),
            None => {}
        }
        let mut solver = result.formula.to_solver();
        let after = solver.solve(&[]) == SolveResult::Sat;
        assert_eq!(after, before, "equisatisfiability violated");
        if after {
            // Reconstruct a full model and check it satisfies the ORIGINAL.
            let mut model: Vec<bool> = (0..f.num_vars())
                .map(|i| solver.model_value(Var::new(i as u32).positive()).unwrap_or(false))
                .collect();
            result.extend_model(&mut model);
            assert_eq!(f.eval(&model), Some(true), "reconstructed model must satisfy original");
        }
    }

    #[test]
    fn units_propagate_away() {
        let f = formula(&[&[1], &[-1, 2], &[-2, 3]], 3);
        let r = preprocess(&f, &PreprocessConfig::default());
        assert_eq!(r.verdict, None);
        assert_eq!(r.formula.num_clauses(), 0);
        assert_eq!(r.fixed.len(), 3);
        check_preserves_sat(&f);
    }

    #[test]
    fn unit_conflict_is_unsat() {
        let f = formula(&[&[1], &[-1]], 1);
        let r = preprocess(&f, &PreprocessConfig::default());
        assert_eq!(r.verdict, Some(false));
    }

    #[test]
    fn subsumption_removes_supersets() {
        let f = formula(&[&[1, 2], &[1, 2, 3], &[1, 2, 4]], 4);
        let r = preprocess(&f, &PreprocessConfig::default());
        // (1 2) subsumes both longer clauses; elimination may then remove
        // remaining variables entirely.
        assert!(r.formula.num_clauses() <= 1);
        check_preserves_sat(&f);
    }

    #[test]
    fn self_subsumption_strengthens() {
        // (1 2) and (-1 2 3): second strengthens to (2 3).
        let f = formula(&[&[1, 2], &[-1, 2, 3]], 3);
        check_preserves_sat(&f);
    }

    #[test]
    fn elimination_reconstructs_models() {
        // x2 occurs twice; eliminating it produces one resolvent.
        let f = formula(&[&[1, 2], &[-2, 3]], 3);
        let r = preprocess(&f, &PreprocessConfig::default());
        assert!(r.num_eliminated() > 0);
        check_preserves_sat(&f);
    }

    #[test]
    fn pure_literal_elimination() {
        // x1 occurs only positively: all its clauses can be removed.
        let f = formula(&[&[1, 2], &[1, -3]], 3);
        let r = preprocess(&f, &PreprocessConfig::default());
        check_preserves_sat(&f);
        // Everything resolvable away.
        assert_eq!(r.formula.num_clauses(), 0);
    }

    #[test]
    fn taut_resolvents_skipped() {
        // Resolving (1 2) with (-1 -2) on x1 gives the tautology (2 -2).
        let f = formula(&[&[1, 2], &[-1, -2]], 2);
        check_preserves_sat(&f);
    }

    #[test]
    fn random_formulas_equisatisfiable() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        for round in 0..120 {
            let vars = rng.random_range(1..9usize);
            let ncl = rng.random_range(0..18usize);
            let mut f = CnfFormula::new();
            f.set_num_vars(vars);
            for _ in 0..ncl {
                let len = rng.random_range(1..4usize);
                let clause: Vec<Lit> = (0..len)
                    .map(|_| {
                        Lit::new(
                            Var::new(rng.random_range(0..vars as u32)),
                            rng.random_bool(0.5),
                        )
                    })
                    .collect();
                f.add_clause(&clause);
            }
            check_preserves_sat(&f);
            let _ = round;
        }
    }

    #[test]
    fn empty_formula_is_noop() {
        let f = CnfFormula::new();
        let r = preprocess(&f, &PreprocessConfig::default());
        assert_eq!(r.verdict, None);
        assert_eq!(r.formula.num_clauses(), 0);
        assert_eq!(r.num_eliminated(), 0);
    }

    #[test]
    fn growth_limit_respected() {
        // With max_growth = 0 elimination never increases clause count.
        let f = formula(&[&[1, 2], &[1, 3], &[-1, 4], &[-1, 5], &[2, 3, 4], &[4, 5]], 5);
        let before = f.num_clauses();
        let r = preprocess(&f, &PreprocessConfig::default());
        assert!(r.formula.num_clauses() <= before);
        check_preserves_sat(&f);
    }
}
