//! A plain CNF formula container and the sink trait shared with the solver.

use crate::lit::{Lit, Var};
use crate::solver::Solver;

/// A sink for CNF: anything that can allocate variables and receive clauses.
///
/// Both [`Solver`] (solve as you encode) and [`CnfFormula`] (build a formula
/// to inspect, write out, or solve later) implement this, so encoders — such
/// as the Tseitin encoder in `polykey-encode` — can target either.
pub trait ClauseSink {
    /// Allocates a fresh variable.
    fn new_var(&mut self) -> Var;

    /// Adds a clause over previously allocated variables.
    fn add_clause(&mut self, lits: &[Lit]);

    /// Allocates `n` fresh variables and returns them in order.
    fn new_vars(&mut self, n: usize) -> Vec<Var> {
        (0..n).map(|_| self.new_var()).collect()
    }
}

impl ClauseSink for Solver {
    fn new_var(&mut self) -> Var {
        Solver::new_var(self)
    }

    fn add_clause(&mut self, lits: &[Lit]) {
        Solver::add_clause(self, lits);
    }
}

/// A CNF formula: a clause list plus a variable count.
///
/// # Examples
///
/// ```
/// use polykey_sat::{ClauseSink, CnfFormula};
///
/// let mut f = CnfFormula::new();
/// let a = f.new_var().positive();
/// let b = f.new_var().positive();
/// f.add_clause(&[a, b]);
/// f.add_clause(&[!a]);
/// assert_eq!(f.num_vars(), 2);
/// assert_eq!(f.num_clauses(), 2);
/// assert_eq!(f.eval(&[false, true]), Some(true));
/// assert_eq!(f.eval(&[true, true]), Some(false));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CnfFormula {
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
}

impl CnfFormula {
    /// Creates an empty formula.
    pub fn new() -> CnfFormula {
        CnfFormula::default()
    }

    /// Number of variables allocated (or implied by added clauses).
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Total number of literal occurrences.
    pub fn num_lits(&self) -> usize {
        self.clauses.iter().map(Vec::len).sum()
    }

    /// Iterates over the clauses.
    pub fn clauses(&self) -> impl Iterator<Item = &[Lit]> {
        self.clauses.iter().map(Vec::as_slice)
    }

    /// Grows the variable count to at least `n`.
    pub fn set_num_vars(&mut self, n: usize) {
        self.num_vars = self.num_vars.max(n);
    }

    /// Evaluates the formula under a full assignment (`assignment[i]` is the
    /// value of variable `i`). Returns `None` if the assignment is too short.
    pub fn eval(&self, assignment: &[bool]) -> Option<bool> {
        if assignment.len() < self.num_vars {
            return None;
        }
        for clause in &self.clauses {
            let sat = clause.iter().any(|l| l.apply(assignment[l.var().index()]));
            if !sat {
                return Some(false);
            }
        }
        Some(true)
    }

    /// Loads every clause into a fresh solver and returns it.
    pub fn to_solver(&self) -> Solver {
        let mut solver = Solver::new();
        for _ in 0..self.num_vars {
            solver.new_var();
        }
        for clause in &self.clauses {
            solver.add_clause(clause);
        }
        solver
    }

    /// Exhaustively counts satisfying assignments. Intended for tests on
    /// small formulas.
    ///
    /// # Panics
    ///
    /// Panics if the formula has more than 24 variables.
    pub fn count_models_brute_force(&self) -> u64 {
        assert!(self.num_vars <= 24, "brute force limited to 24 variables");
        let mut count = 0;
        let mut assignment = vec![false; self.num_vars];
        for bits in 0..(1u64 << self.num_vars) {
            for (i, a) in assignment.iter_mut().enumerate() {
                *a = bits >> i & 1 == 1;
            }
            if self.eval(&assignment) == Some(true) {
                count += 1;
            }
        }
        count
    }
}

impl ClauseSink for CnfFormula {
    fn new_var(&mut self) -> Var {
        let v = Var::new(self.num_vars as u32);
        self.num_vars += 1;
        v
    }

    fn add_clause(&mut self, lits: &[Lit]) {
        for l in lits {
            self.num_vars = self.num_vars.max(l.var().index() + 1);
        }
        self.clauses.push(lits.to_vec());
    }
}

impl Extend<Vec<Lit>> for CnfFormula {
    fn extend<T: IntoIterator<Item = Vec<Lit>>>(&mut self, iter: T) {
        for clause in iter {
            self.add_clause(&clause);
        }
    }
}

impl FromIterator<Vec<Lit>> for CnfFormula {
    fn from_iter<T: IntoIterator<Item = Vec<Lit>>>(iter: T) -> CnfFormula {
        let mut f = CnfFormula::new();
        f.extend(iter);
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SolveResult;

    fn lit(d: i32) -> Lit {
        Lit::from_dimacs(d)
    }

    #[test]
    fn formula_construction() {
        let mut f = CnfFormula::new();
        f.add_clause(&[lit(1), lit(-3)]);
        assert_eq!(f.num_vars(), 3);
        assert_eq!(f.num_clauses(), 1);
        assert_eq!(f.num_lits(), 2);
    }

    #[test]
    fn eval_matches_semantics() {
        let f: CnfFormula =
            vec![vec![lit(1), lit(2)], vec![lit(-1), lit(2)]].into_iter().collect();
        assert_eq!(f.eval(&[true, true]), Some(true));
        assert_eq!(f.eval(&[true, false]), Some(false));
        assert_eq!(f.eval(&[false, false]), Some(false));
        assert_eq!(f.eval(&[false]), None);
    }

    #[test]
    fn to_solver_round_trip() {
        let f: CnfFormula = vec![vec![lit(1), lit(2)], vec![lit(-1)], vec![lit(-2), lit(3)]]
            .into_iter()
            .collect();
        let mut s = f.to_solver();
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(s.model_value(lit(1)), Some(false));
        assert_eq!(s.model_value(lit(2)), Some(true));
        assert_eq!(s.model_value(lit(3)), Some(true));
    }

    #[test]
    fn brute_force_count() {
        // x1 ∨ x2 has 3 models over 2 vars.
        let f: CnfFormula = vec![vec![lit(1), lit(2)]].into_iter().collect();
        assert_eq!(f.count_models_brute_force(), 3);
        // Empty formula over 0 vars has exactly one (empty) model.
        let empty = CnfFormula::new();
        assert_eq!(empty.count_models_brute_force(), 1);
    }

    #[test]
    fn sink_vars_are_dense() {
        let mut f = CnfFormula::new();
        let vars = f.new_vars(4);
        assert_eq!(vars.len(), 4);
        for (i, v) in vars.iter().enumerate() {
            assert_eq!(v.index(), i);
        }
        assert_eq!(f.num_vars(), 4);
    }
}
