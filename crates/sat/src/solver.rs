//! The CDCL solver: propagation, conflict analysis, restarts, reduction.
//!
//! This is a MiniSat-class solver: two-watched-literal propagation with
//! blockers, VSIDS decision heuristic with an indexed heap, first-UIP clause
//! learning with deep (recursive) minimization, phase saving, Luby restarts,
//! activity/LBD-guided learnt-clause deletion, and incremental solving under
//! assumptions.

use std::time::{Duration, Instant};

use crate::clause::{ClauseDb, ClauseRef, Watcher};
use crate::lit::{LBool, Lit, Var};

/// Outcome of a [`Solver::solve`] call.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum SolveResult {
    /// A satisfying assignment was found; read it with [`Solver::model_value`].
    Sat,
    /// The formula is unsatisfiable under the given assumptions.
    Unsat,
    /// A resource budget (conflicts or wall clock) ran out first.
    Unknown,
}

impl SolveResult {
    /// True iff the result is [`SolveResult::Sat`].
    pub fn is_sat(self) -> bool {
        self == SolveResult::Sat
    }

    /// True iff the result is [`SolveResult::Unsat`].
    pub fn is_unsat(self) -> bool {
        self == SolveResult::Unsat
    }
}

/// Counters describing the work a solver has performed.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of literals propagated.
    pub propagations: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learnt clauses added (excluding learnt units).
    pub learnt_clauses: u64,
    /// Number of learnt clauses deleted by database reduction.
    pub deleted_clauses: u64,
    /// Number of literals removed by conflict-clause minimization.
    pub minimized_lits: u64,
    /// Number of `solve` calls.
    pub solves: u64,
}

/// Field-wise accumulation, so callers can merge the per-solver snapshots
/// of many independent attacks (e.g. the `2^N` terms of the multi-key
/// attack) into one aggregate without naming every counter.
impl std::ops::AddAssign for SolverStats {
    fn add_assign(&mut self, rhs: SolverStats) {
        self.decisions += rhs.decisions;
        self.conflicts += rhs.conflicts;
        self.propagations += rhs.propagations;
        self.restarts += rhs.restarts;
        self.learnt_clauses += rhs.learnt_clauses;
        self.deleted_clauses += rhs.deleted_clauses;
        self.minimized_lits += rhs.minimized_lits;
        self.solves += rhs.solves;
    }
}

/// Field-wise sum over an iterator of snapshots (see [`SolverStats`]'s
/// `AddAssign`).
impl std::iter::Sum for SolverStats {
    fn sum<I: Iterator<Item = SolverStats>>(iter: I) -> SolverStats {
        let mut total = SolverStats::default();
        for s in iter {
            total += s;
        }
        total
    }
}

/// Tunable search parameters. The defaults mirror MiniSat 2.2.
#[derive(Copy, Clone, Debug)]
pub struct SolverConfig {
    /// Multiplicative decay applied to variable activities per conflict.
    pub var_decay: f64,
    /// Multiplicative decay applied to clause activities per conflict.
    pub clause_decay: f64,
    /// Conflicts before the first restart.
    pub restart_first: u64,
    /// Base of the Luby restart sequence.
    pub restart_inc: f64,
    /// Fraction of original clauses allowed as learnt clauses initially.
    pub learntsize_factor: f64,
    /// Growth factor of the learnt-clause limit after each reduction.
    pub learntsize_inc: f64,
    /// Use deep (recursive) conflict-clause minimization.
    pub deep_minimization: bool,
}

impl Default for SolverConfig {
    fn default() -> SolverConfig {
        SolverConfig {
            var_decay: 0.95,
            clause_decay: 0.999,
            restart_first: 100,
            restart_inc: 2.0,
            learntsize_factor: 1.0 / 3.0,
            learntsize_inc: 1.1,
            deep_minimization: true,
        }
    }
}

#[derive(Copy, Clone, Debug)]
struct VarData {
    reason: Option<ClauseRef>,
    level: u32,
}

/// An incremental CDCL SAT solver.
///
/// # Examples
///
/// Solve `(a ∨ b) ∧ (¬a ∨ b) ∧ (¬b ∨ c)`:
///
/// ```
/// use polykey_sat::{Solver, SolveResult};
///
/// let mut solver = Solver::new();
/// let a = solver.new_var().positive();
/// let b = solver.new_var().positive();
/// let c = solver.new_var().positive();
/// solver.add_clause(&[a, b]);
/// solver.add_clause(&[!a, b]);
/// solver.add_clause(&[!b, c]);
///
/// assert_eq!(solver.solve(&[]), SolveResult::Sat);
/// assert_eq!(solver.model_value(b), Some(true));
/// assert_eq!(solver.model_value(c), Some(true));
///
/// // Incremental: the same solver, now under an assumption.
/// assert_eq!(solver.solve(&[!c]), SolveResult::Unsat);
/// assert_eq!(solver.solve(&[]), SolveResult::Sat);
/// ```
#[derive(Debug)]
pub struct Solver {
    config: SolverConfig,
    stats: SolverStats,

    db: ClauseDb,
    /// Watch lists indexed by literal code: clauses to inspect when the
    /// indexing literal becomes true (i.e. its negation is falsified).
    watches: Vec<Vec<Watcher>>,

    assigns: Vec<LBool>,
    vardata: Vec<VarData>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,

    activity: Vec<f64>,
    var_inc: f64,
    order: crate::heap::VarOrderHeap,
    polarity: Vec<bool>,

    cla_inc: f64,
    max_learnts: f64,

    ok: bool,
    model: Vec<LBool>,
    conflict_core: Vec<Lit>,

    // Scratch buffers for conflict analysis.
    seen: Vec<bool>,
    analyze_toclear: Vec<Var>,
    analyze_stack: Vec<Lit>,

    // Budgets.
    conflict_budget: Option<u64>,
    deadline: Option<Instant>,
    budget_exhausted: bool,

    /// Trail length at the last `simplify`, to skip no-op passes.
    simp_trail_len: usize,
}

impl Default for Solver {
    fn default() -> Solver {
        Solver::new()
    }
}

impl Solver {
    /// Creates an empty solver with default configuration.
    pub fn new() -> Solver {
        Solver::with_config(SolverConfig::default())
    }

    /// Creates an empty solver with the given configuration.
    pub fn with_config(config: SolverConfig) -> Solver {
        Solver {
            config,
            stats: SolverStats::default(),
            db: ClauseDb::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            vardata: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            order: crate::heap::VarOrderHeap::new(),
            polarity: Vec::new(),
            cla_inc: 1.0,
            max_learnts: 0.0,
            ok: true,
            model: Vec::new(),
            conflict_core: Vec::new(),
            seen: Vec::new(),
            analyze_toclear: Vec::new(),
            analyze_stack: Vec::new(),
            conflict_budget: None,
            deadline: None,
            budget_exhausted: false,
            simp_trail_len: 0,
        }
    }

    /// Creates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::new(self.assigns.len() as u32);
        self.assigns.push(LBool::Undef);
        self.vardata.push(VarData { reason: None, level: 0 });
        self.activity.push(0.0);
        self.polarity.push(false);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.grow_to(self.assigns.len());
        self.order.insert(v, &self.activity);
        v
    }

    /// Number of variables created so far.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of live problem clauses (excluding learnt clauses and units).
    pub fn num_clauses(&self) -> usize {
        self.db.num_original()
    }

    /// Number of live learnt clauses.
    pub fn num_learnts(&self) -> usize {
        self.db.num_learnt()
    }

    /// Total number of literal occurrences in live clauses (a proxy for
    /// memory footprint and propagation cost).
    pub fn num_clause_lits(&self) -> usize {
        self.db.lits_live()
    }

    /// Work counters accumulated so far.
    pub fn stats(&self) -> &SolverStats {
        &self.stats
    }

    /// False once the clause set has been proved unsatisfiable outright
    /// (without assumptions); every later `solve` returns `Unsat` immediately.
    pub fn is_ok(&self) -> bool {
        self.ok
    }

    /// Limits the next `solve` call to roughly `conflicts` conflicts.
    /// `None` removes the limit. The budget is not consumed across calls; it
    /// applies per call.
    pub fn set_conflict_budget(&mut self, conflicts: Option<u64>) {
        self.conflict_budget = conflicts;
    }

    /// Limits the next `solve` call to roughly `limit` of wall-clock time
    /// (checked every few hundred conflicts). `None` removes the limit.
    pub fn set_time_budget(&mut self, limit: Option<Duration>) {
        self.deadline = limit.map(|d| Instant::now() + d);
    }

    /// True if the previous `solve` stopped because a budget ran out.
    pub fn budget_exhausted(&self) -> bool {
        self.budget_exhausted
    }

    /// Adds a clause. Returns `false` if the clause set is now known
    /// unsatisfiable (e.g. after adding an empty or directly contradictory
    /// clause).
    ///
    /// Clauses may be added between `solve` calls at any time; literals must
    /// refer to variables created with [`Solver::new_var`].
    ///
    /// # Panics
    ///
    /// Panics if a literal refers to a variable that was never created.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        debug_assert_eq!(self.decision_level(), 0);
        if !self.ok {
            return false;
        }
        for l in lits {
            assert!(l.var().index() < self.num_vars(), "literal {l} out of range");
        }
        // Normalize: sort, dedup, drop falsified, detect tautology/satisfied.
        let mut ls: Vec<Lit> = lits.to_vec();
        ls.sort_unstable();
        ls.dedup();
        let mut out: Vec<Lit> = Vec::with_capacity(ls.len());
        let mut prev: Option<Lit> = None;
        for &l in &ls {
            if let Some(p) = prev {
                if p == !l {
                    return true; // tautology: x ∨ ¬x
                }
            }
            match self.lit_value(l) {
                LBool::True => return true, // already satisfied at level 0
                LBool::False => {}          // drop falsified literal
                LBool::Undef => out.push(l),
            }
            prev = Some(l);
        }
        match out.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(out[0], None);
                self.ok = self.propagate().is_none();
                self.ok
            }
            _ => {
                let cref = self.db.insert(out, false, 0);
                self.attach_clause(cref);
                true
            }
        }
    }

    /// Solves the clause set under the given assumptions.
    ///
    /// On [`SolveResult::Sat`] a model is available via
    /// [`Solver::model_value`]. On [`SolveResult::Unsat`] with assumptions, a
    /// subset of failed assumptions is available via
    /// [`Solver::unsat_core`].
    pub fn solve(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.stats.solves += 1;
        self.model.clear();
        self.conflict_core.clear();
        self.budget_exhausted = false;
        if !self.ok {
            return SolveResult::Unsat;
        }
        for l in assumptions {
            assert!(l.var().index() < self.num_vars(), "assumption {l} out of range");
        }

        if self.max_learnts == 0.0 {
            self.max_learnts =
                (self.db.num_original() as f64 * self.config.learntsize_factor).max(1000.0);
        }

        let conflicts_start = self.stats.conflicts;
        let mut curr_restarts = 0u64;
        let status = loop {
            let budget = (luby(self.config.restart_inc, curr_restarts)
                * self.config.restart_first as f64) as u64;
            let status = self.search(budget, assumptions, conflicts_start);
            curr_restarts += 1;
            match status {
                Some(res) => break res,
                None => {
                    if self.budget_exhausted {
                        break SolveResult::Unknown;
                    }
                    self.stats.restarts += 1;
                }
            }
        };
        self.cancel_until(0);
        status
    }

    /// The value of `lit` in the most recent satisfying model, or `None` if
    /// the last `solve` did not return `Sat` or the variable did not exist.
    pub fn model_value(&self, lit: Lit) -> Option<bool> {
        self.model.get(lit.var().index()).and_then(|v| v.xor(lit.is_negated()).to_bool())
    }

    /// After an `Unsat` answer under assumptions: a subset of the assumptions
    /// whose conjunction is already unsatisfiable (each returned literal is
    /// one of the assumption literals).
    pub fn unsat_core(&self) -> &[Lit] {
        &self.conflict_core
    }

    /// The value of `lit` implied at decision level 0 (by unit propagation of
    /// the clause set alone), if any.
    pub fn fixed_value(&self, lit: Lit) -> Option<bool> {
        let vd = &self.vardata[lit.var().index()];
        if vd.level == 0 {
            self.lit_value(lit).to_bool()
        } else {
            None
        }
    }

    // ------------------------------------------------------------------
    // Assignment primitives
    // ------------------------------------------------------------------

    #[inline]
    fn lit_value(&self, l: Lit) -> LBool {
        self.assigns[l.var().index()].xor(l.is_negated())
    }

    #[inline]
    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    #[inline]
    fn level(&self, v: Var) -> u32 {
        self.vardata[v.index()].level
    }

    #[inline]
    fn reason(&self, v: Var) -> Option<ClauseRef> {
        self.vardata[v.index()].reason
    }

    fn new_decision_level(&mut self) {
        self.trail_lim.push(self.trail.len());
    }

    #[inline]
    fn unchecked_enqueue(&mut self, l: Lit, reason: Option<ClauseRef>) {
        debug_assert!(self.lit_value(l).is_undef());
        self.assigns[l.var().index()] = LBool::from_bool(!l.is_negated());
        self.vardata[l.var().index()] = VarData { reason, level: self.decision_level() };
        self.trail.push(l);
    }

    fn cancel_until(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let bound = self.trail_lim[level as usize];
        for i in (bound..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var();
            self.polarity[v.index()] = !l.is_negated();
            self.assigns[v.index()] = LBool::Undef;
            self.order.insert(v, &self.activity);
        }
        self.trail.truncate(bound);
        self.trail_lim.truncate(level as usize);
        self.qhead = bound;
    }

    // ------------------------------------------------------------------
    // Watched-literal propagation
    // ------------------------------------------------------------------

    fn attach_clause(&mut self, cref: ClauseRef) {
        let c = self.db.get(cref);
        debug_assert!(c.len() >= 2);
        let l0 = c.lits[0];
        let l1 = c.lits[1];
        self.watches[(!l0).code()].push(Watcher { cref, blocker: l1 });
        self.watches[(!l1).code()].push(Watcher { cref, blocker: l0 });
    }

    /// Propagates all enqueued facts. Returns a conflicting clause, if any.
    fn propagate(&mut self) -> Option<ClauseRef> {
        let mut conflict = None;
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let pi = p.code();
            let false_lit = !p;

            let mut i = 0usize;
            let mut j = 0usize;
            'watchers: while i < self.watches[pi].len() {
                let w = self.watches[pi][i];
                i += 1;
                // Satisfied via blocker: keep the watcher untouched.
                if self.lit_value(w.blocker) == LBool::True {
                    self.watches[pi][j] = w;
                    j += 1;
                    continue;
                }
                let c = self.db.get_mut(w.cref);
                debug_assert!(!c.deleted, "deleted clauses are detached eagerly");
                if c.lits[0] == false_lit {
                    c.lits.swap(0, 1);
                }
                debug_assert_eq!(c.lits[1], false_lit);
                let first = c.lits[0];
                let new_watcher = Watcher { cref: w.cref, blocker: first };
                if first != w.blocker && self.lit_value(first) == LBool::True {
                    self.watches[pi][j] = new_watcher;
                    j += 1;
                    continue;
                }
                // Look for a non-false literal to watch instead.
                let len = self.db.get(w.cref).len();
                for k in 2..len {
                    let lk = self.db.get(w.cref).lits[k];
                    if self.lit_value(lk) != LBool::False {
                        let c = self.db.get_mut(w.cref);
                        c.lits.swap(1, k);
                        let watch_on = (!lk).code();
                        debug_assert_ne!(watch_on, pi);
                        self.watches[watch_on].push(new_watcher);
                        continue 'watchers;
                    }
                }
                // Clause is unit or conflicting under the current assignment.
                self.watches[pi][j] = new_watcher;
                j += 1;
                if self.lit_value(first) == LBool::False {
                    // Conflict: copy remaining watchers back and stop.
                    while i < self.watches[pi].len() {
                        let w2 = self.watches[pi][i];
                        self.watches[pi][j] = w2;
                        i += 1;
                        j += 1;
                    }
                    self.qhead = self.trail.len();
                    conflict = Some(w.cref);
                    break 'watchers;
                } else {
                    self.unchecked_enqueue(first, Some(w.cref));
                }
            }
            self.watches[pi].truncate(j);
            if conflict.is_some() {
                break;
            }
        }
        conflict
    }

    // ------------------------------------------------------------------
    // Conflict analysis
    // ------------------------------------------------------------------

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backtrack level.
    fn analyze(&mut self, mut confl: ClauseRef) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::from_code(0)]; // placeholder for UIP
        let mut path_c = 0u32;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();

        loop {
            {
                // Bump the activity of a used learnt clause.
                let c = self.db.get_mut(confl);
                if c.learnt {
                    c.activity += self.cla_inc;
                    if c.activity > 1e20 {
                        self.rescale_clause_activity();
                    }
                }
            }
            let start = usize::from(p.is_some());
            let clen = self.db.get(confl).len();
            for k in start..clen {
                let q = self.db.get(confl).lits[k];
                let v = q.var();
                if !self.seen[v.index()] && self.level(v) > 0 {
                    self.seen[v.index()] = true;
                    self.bump_var(v);
                    if self.level(v) >= self.decision_level() {
                        path_c += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select the next trail literal to resolve on.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let pl = self.trail[index];
            self.seen[pl.var().index()] = false;
            path_c -= 1;
            p = Some(pl);
            if path_c == 0 {
                break;
            }
            confl = self.reason(pl.var()).expect("non-decision literal must have a reason");
        }
        learnt[0] = !p.expect("analyze always resolves at least one literal");

        // Minimize the learnt clause.
        self.analyze_toclear.clear();
        self.analyze_toclear.extend(learnt.iter().map(|l| l.var()));
        let before = learnt.len();
        if self.config.deep_minimization {
            let mut abstract_levels = 0u32;
            for l in &learnt[1..] {
                abstract_levels |= self.abstract_level(l.var());
            }
            let mut kept = 1;
            for i in 1..learnt.len() {
                let l = learnt[i];
                if self.reason(l.var()).is_none() || !self.lit_redundant(l, abstract_levels) {
                    learnt[kept] = l;
                    kept += 1;
                }
            }
            learnt.truncate(kept);
        }
        self.stats.minimized_lits += (before - learnt.len()) as u64;

        // Find the backtrack level: the highest level among the other lits.
        let bt_level = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level(learnt[i].var()) > self.level(learnt[max_i].var()) {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level(learnt[1].var())
        };

        for v in self.analyze_toclear.drain(..) {
            self.seen[v.index()] = false;
        }
        (learnt, bt_level)
    }

    #[inline]
    fn abstract_level(&self, v: Var) -> u32 {
        1 << (self.level(v) & 31)
    }

    /// Checks whether `p` is implied by other literals already in the learnt
    /// clause (walking the implication graph), so it can be dropped.
    fn lit_redundant(&mut self, p: Lit, abstract_levels: u32) -> bool {
        self.analyze_stack.clear();
        self.analyze_stack.push(p);
        let top = self.analyze_toclear.len();
        while let Some(q) = self.analyze_stack.pop() {
            let cref =
                self.reason(q.var()).expect("checked by caller or pushed only with reason");
            let clen = self.db.get(cref).len();
            for k in 1..clen {
                let l = self.db.get(cref).lits[k];
                let v = l.var();
                if !self.seen[v.index()] && self.level(v) > 0 {
                    if self.reason(v).is_some()
                        && (self.abstract_level(v) & abstract_levels) != 0
                    {
                        self.seen[v.index()] = true;
                        self.analyze_stack.push(l);
                        self.analyze_toclear.push(v);
                    } else {
                        for &u in &self.analyze_toclear[top..] {
                            self.seen[u.index()] = false;
                        }
                        self.analyze_toclear.truncate(top);
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Computes the failed-assumption core: `failed` is an assumption literal
    /// found false under the earlier assumptions. The core collects `failed`
    /// plus every earlier assumption (decision) its falsification depends on,
    /// so the returned literals are a subset of the caller's assumptions.
    fn analyze_final(&mut self, failed: Lit) {
        self.conflict_core.clear();
        self.conflict_core.push(failed);
        if self.decision_level() == 0 {
            return;
        }
        self.seen[failed.var().index()] = true;
        for i in (self.trail_lim[0]..self.trail.len()).rev() {
            let x = self.trail[i].var();
            if self.seen[x.index()] {
                match self.reason(x) {
                    None => {
                        debug_assert!(self.level(x) > 0);
                        // A decision above level 0 is an assumption literal
                        // (the assumption-check loop precedes all heuristic
                        // decisions). `trail[i] == failed` is impossible: the
                        // decision would have made `failed` true.
                        self.conflict_core.push(self.trail[i]);
                    }
                    Some(cref) => {
                        let clen = self.db.get(cref).len();
                        for k in 1..clen {
                            let l = self.db.get(cref).lits[k];
                            if self.level(l.var()) > 0 {
                                self.seen[l.var().index()] = true;
                            }
                        }
                    }
                }
                self.seen[x.index()] = false;
            }
        }
        self.seen[failed.var().index()] = false;
    }

    // ------------------------------------------------------------------
    // Activities
    // ------------------------------------------------------------------

    #[inline]
    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.bumped(v, &self.activity);
    }

    fn decay_activities(&mut self) {
        self.var_inc /= self.config.var_decay;
        self.cla_inc /= self.config.clause_decay;
    }

    fn rescale_clause_activity(&mut self) {
        let refs: Vec<ClauseRef> = self.db.learnt_refs().collect();
        for cref in refs {
            self.db.get_mut(cref).activity *= 1e-20;
        }
        self.cla_inc *= 1e-20;
    }

    // ------------------------------------------------------------------
    // Clause database maintenance
    // ------------------------------------------------------------------

    /// Detaches a clause from its two watch lists and deletes it. Slots are
    /// reused, so stale watcher references must never survive a deletion.
    fn remove_clause(&mut self, cref: ClauseRef) {
        let (l0, l1) = {
            let c = self.db.get(cref);
            (c.lits[0], c.lits[1])
        };
        for l in [l0, l1] {
            let ws = &mut self.watches[(!l).code()];
            if let Some(pos) = ws.iter().position(|w| w.cref == cref) {
                ws.swap_remove(pos);
            }
        }
        self.db.delete(cref);
    }

    /// True if the clause is the reason for its first literal's assignment
    /// and therefore must not be deleted.
    fn locked(&self, cref: ClauseRef) -> bool {
        let c = self.db.get(cref);
        let l0 = c.lits[0];
        self.lit_value(l0) == LBool::True && self.reason(l0.var()) == Some(cref)
    }

    /// Deletes roughly half of the learnt clauses, keeping binary, low-LBD,
    /// high-activity and locked (reason) clauses.
    fn reduce_db(&mut self) {
        let mut learnts: Vec<(f64, u32, ClauseRef)> = self
            .db
            .learnt_refs()
            .map(|cref| {
                let c = self.db.get(cref);
                (c.activity, c.lbd, cref)
            })
            .collect();
        // Delete lowest-activity clauses first; LBD breaks ties.
        learnts.sort_by(|a, b| {
            a.0.partial_cmp(&b.0).expect("activities are finite").then(b.1.cmp(&a.1))
        });
        let extra_lim = self.cla_inc / learnts.len().max(1) as f64;
        let mut deleted = 0usize;
        let target = learnts.len() / 2;
        for (i, &(act, lbd, cref)) in learnts.iter().enumerate() {
            let c = self.db.get(cref);
            if c.len() <= 2 || lbd <= 2 || self.locked(cref) {
                continue;
            }
            // Delete the low-activity half, plus anything below the noise
            // floor in the upper half (mirrors MiniSat's reduceDB).
            if i < target || act < extra_lim {
                self.remove_clause(cref);
                deleted += 1;
            }
        }
        self.stats.deleted_clauses += deleted as u64;
    }

    /// Removes clauses satisfied at level 0. Call only at decision level 0.
    fn simplify(&mut self) {
        debug_assert_eq!(self.decision_level(), 0);
        if !self.ok || self.trail.len() == self.simp_trail_len {
            return;
        }
        self.simp_trail_len = self.trail.len();
        let refs: Vec<ClauseRef> = self.db.refs().collect();
        for cref in refs {
            let satisfied =
                self.db.get(cref).lits.iter().any(|&l| self.lit_value(l) == LBool::True);
            if satisfied {
                // If this clause is the level-0 reason of its first literal,
                // the literal stays assigned forever; drop the stale reason.
                let l0 = self.db.get(cref).lits[0];
                if self.reason(l0.var()) == Some(cref) {
                    self.vardata[l0.var().index()].reason = None;
                }
                self.remove_clause(cref);
            }
        }
    }

    // ------------------------------------------------------------------
    // Search
    // ------------------------------------------------------------------

    /// Runs CDCL search until a result, a restart, or budget exhaustion.
    /// Returns `None` to request a restart.
    fn search(
        &mut self,
        nof_conflicts: u64,
        assumptions: &[Lit],
        conflicts_start: u64,
    ) -> Option<SolveResult> {
        debug_assert!(self.ok);
        let mut conflict_c = 0u64;
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflict_c += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return Some(SolveResult::Unsat);
                }
                let (learnt, bt_level) = self.analyze(confl);
                self.cancel_until(bt_level);
                if learnt.len() == 1 {
                    self.unchecked_enqueue(learnt[0], None);
                } else {
                    let lbd = self.compute_lbd(&learnt);
                    let cref = self.db.insert(learnt, true, lbd);
                    self.attach_clause(cref);
                    let l0 = self.db.get(cref).lits[0];
                    self.db.get_mut(cref).activity = self.cla_inc;
                    self.unchecked_enqueue(l0, Some(cref));
                    self.stats.learnt_clauses += 1;
                }
                self.decay_activities();
            } else {
                // No conflict.
                if conflict_c >= nof_conflicts {
                    self.cancel_until(0);
                    return None; // restart
                }
                if self.out_of_budget(conflicts_start) {
                    self.budget_exhausted = true;
                    self.cancel_until(0);
                    return None;
                }
                if self.decision_level() == 0 {
                    self.simplify();
                }
                if self.db.num_learnt() as f64 >= self.max_learnts + self.trail.len() as f64 {
                    self.reduce_db();
                    self.max_learnts *= self.config.learntsize_inc;
                }

                // Assumptions first, then heuristic decisions.
                let mut next: Option<Lit> = None;
                while (self.decision_level() as usize) < assumptions.len() {
                    let p = assumptions[self.decision_level() as usize];
                    match self.lit_value(p) {
                        LBool::True => self.new_decision_level(),
                        LBool::False => {
                            self.analyze_final(p);
                            return Some(SolveResult::Unsat);
                        }
                        LBool::Undef => {
                            next = Some(p);
                            break;
                        }
                    }
                }
                let next = match next {
                    Some(l) => l,
                    None => match self.pick_branch_lit() {
                        Some(l) => l,
                        None => {
                            // All variables assigned: model found.
                            self.model = self.assigns.clone();
                            return Some(SolveResult::Sat);
                        }
                    },
                };
                self.stats.decisions += 1;
                self.new_decision_level();
                self.unchecked_enqueue(next, None);
            }
        }
    }

    fn out_of_budget(&self, conflicts_start: u64) -> bool {
        if let Some(budget) = self.conflict_budget {
            if self.stats.conflicts - conflicts_start >= budget {
                return true;
            }
        }
        if let Some(deadline) = self.deadline {
            // Checking the clock is cheap relative to propagation between
            // decisions; check on a stride via conflicts counter.
            if self.stats.conflicts % 256 == 0 && Instant::now() >= deadline {
                return true;
            }
        }
        false
    }

    fn compute_lbd(&self, lits: &[Lit]) -> u32 {
        // Approximate count of distinct decision levels (64 hash buckets);
        // collisions only ever lower the estimate, which is safe for LBD.
        let mut mask = 0u64;
        let mut count = 0u32;
        for l in lits {
            let lev = self.level(l.var()) as u64;
            let bit = 1u64 << (lev & 63);
            if mask & bit == 0 {
                mask |= bit;
                count += 1;
            }
        }
        count
    }

    fn pick_branch_lit(&mut self) -> Option<Lit> {
        loop {
            let v = self.order.pop_max(&self.activity)?;
            if self.assigns[v.index()].is_undef() {
                let pol = self.polarity[v.index()];
                return Some(v.lit(pol));
            }
        }
    }
}

/// The Luby restart sequence (1, 1, 2, 1, 1, 2, 4, …) scaled by `y^k`.
fn luby(y: f64, mut x: u64) -> f64 {
    // Find the finite subsequence containing x, and x's position in it.
    let mut size = 1u64;
    let mut seq = 0u32;
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x {
        size = (size - 1) >> 1;
        seq -= 1;
        x %= size;
    }
    y.powi(seq as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(d: i32) -> Lit {
        Lit::from_dimacs(d)
    }

    /// Builds a solver with `n` variables.
    fn solver_with_vars(n: usize) -> Solver {
        let mut s = Solver::new();
        for _ in 0..n {
            s.new_var();
        }
        s
    }

    #[test]
    fn trivial_sat() {
        let mut s = solver_with_vars(1);
        s.add_clause(&[lit(1)]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(s.model_value(lit(1)), Some(true));
        assert_eq!(s.model_value(lit(-1)), Some(false));
    }

    #[test]
    fn trivial_unsat() {
        let mut s = solver_with_vars(1);
        s.add_clause(&[lit(1)]);
        assert!(!s.add_clause(&[lit(-1)]));
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
        assert!(!s.is_ok());
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = solver_with_vars(1);
        assert!(!s.add_clause(&[]));
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert_eq!(s.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn tautologies_are_ignored() {
        let mut s = solver_with_vars(2);
        assert!(s.add_clause(&[lit(1), lit(-1)]));
        assert_eq!(s.num_clauses(), 0);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn unit_propagation_chain() {
        let mut s = solver_with_vars(4);
        s.add_clause(&[lit(1)]);
        s.add_clause(&[lit(-1), lit(2)]);
        s.add_clause(&[lit(-2), lit(3)]);
        s.add_clause(&[lit(-3), lit(4)]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        for i in 1..=4 {
            assert_eq!(s.model_value(lit(i)), Some(true));
        }
        // Everything was fixed at level 0.
        assert_eq!(s.fixed_value(lit(4)), Some(true));
    }

    #[test]
    fn simple_conflict_analysis() {
        // (a ∨ b) ∧ (a ∨ ¬b) ∧ (¬a ∨ c) ∧ (¬a ∨ ¬c) is unsat.
        let mut s = solver_with_vars(3);
        s.add_clause(&[lit(1), lit(2)]);
        s.add_clause(&[lit(1), lit(-2)]);
        s.add_clause(&[lit(-1), lit(3)]);
        s.add_clause(&[lit(-1), lit(-3)]);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn assumptions_do_not_stick() {
        let mut s = solver_with_vars(2);
        s.add_clause(&[lit(1), lit(2)]);
        assert_eq!(s.solve(&[lit(-1), lit(-2)]), SolveResult::Unsat);
        // Without assumptions the formula is satisfiable again.
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        // And with compatible assumptions.
        assert_eq!(s.solve(&[lit(-1)]), SolveResult::Sat);
        assert_eq!(s.model_value(lit(2)), Some(true));
    }

    #[test]
    fn unsat_core_is_subset_of_assumptions() {
        let mut s = solver_with_vars(3);
        s.add_clause(&[lit(-1), lit(-2)]); // a and b can't both hold
        assert_eq!(s.solve(&[lit(1), lit(2), lit(3)]), SolveResult::Unsat);
        let core = s.unsat_core();
        assert!(!core.is_empty());
        for l in core {
            assert!([lit(1), lit(2), lit(3)].contains(l), "core lit {l} not an assumption");
        }
        // x3 is irrelevant to the conflict.
        assert!(!core.contains(&lit(3)));
    }

    #[test]
    fn conflicting_assumption_pair() {
        let mut s = solver_with_vars(1);
        assert_eq!(s.solve(&[lit(1), lit(-1)]), SolveResult::Unsat);
        assert!(!s.unsat_core().is_empty());
        assert_eq!(s.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn duplicate_literals_are_deduped() {
        let mut s = solver_with_vars(2);
        s.add_clause(&[lit(1), lit(1), lit(2), lit(2)]);
        assert_eq!(s.solve(&[lit(-1)]), SolveResult::Sat);
        assert_eq!(s.model_value(lit(2)), Some(true));
    }

    #[test]
    fn xor_chain_forces_unique_model() {
        // x1 XOR x2 = 1, x2 XOR x3 = 1, x1 = 1 ==> x2 = 0, x3 = 1.
        let mut s = solver_with_vars(3);
        // x1 xor x2: (1 2) (-1 -2)
        s.add_clause(&[lit(1), lit(2)]);
        s.add_clause(&[lit(-1), lit(-2)]);
        // x2 xor x3
        s.add_clause(&[lit(2), lit(3)]);
        s.add_clause(&[lit(-2), lit(-3)]);
        s.add_clause(&[lit(1)]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(s.model_value(lit(2)), Some(false));
        assert_eq!(s.model_value(lit(3)), Some(true));
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn pigeonhole_3_into_2_is_unsat() {
        // p_{i,j}: pigeon i in hole j. 3 pigeons, 2 holes.
        let mut s = Solver::new();
        let mut p = [[Lit::from_code(0); 2]; 3];
        for row in p.iter_mut() {
            for cell in row.iter_mut() {
                *cell = s.new_var().positive();
            }
        }
        for row in &p {
            s.add_clause(&[row[0], row[1]]);
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    s.add_clause(&[!p[i1][j], !p[i2][j]]);
                }
            }
        }
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn pigeonhole_5_into_4_is_unsat() {
        let n = 5usize;
        let m = 4usize;
        let mut s = Solver::new();
        let p: Vec<Vec<Lit>> =
            (0..n).map(|_| (0..m).map(|_| s.new_var().positive()).collect()).collect();
        for row in &p {
            s.add_clause(row);
        }
        for j in 0..m {
            for i1 in 0..n {
                for i2 in (i1 + 1)..n {
                    s.add_clause(&[!p[i1][j], !p[i2][j]]);
                }
            }
        }
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
        assert!(s.stats().conflicts > 0);
    }

    #[test]
    fn at_most_one_chain_sat() {
        // Sequential at-most-one over 8 vars plus at-least-one.
        let mut s = solver_with_vars(8);
        let xs: Vec<Lit> = (1..=8).map(lit).collect();
        s.add_clause(&xs);
        for i in 0..8 {
            for j in (i + 1)..8 {
                s.add_clause(&[!xs[i], !xs[j]]);
            }
        }
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        let count = xs.iter().filter(|&&l| s.model_value(l) == Some(true)).count();
        assert_eq!(count, 1);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn conflict_budget_interrupts() {
        // A hard instance: pigeonhole 8 into 7 with a tiny conflict budget.
        let n = 8usize;
        let m = 7usize;
        let mut s = Solver::new();
        let p: Vec<Vec<Lit>> =
            (0..n).map(|_| (0..m).map(|_| s.new_var().positive()).collect()).collect();
        for row in &p {
            s.add_clause(row);
        }
        for j in 0..m {
            for i1 in 0..n {
                for i2 in (i1 + 1)..n {
                    s.add_clause(&[!p[i1][j], !p[i2][j]]);
                }
            }
        }
        s.set_conflict_budget(Some(10));
        assert_eq!(s.solve(&[]), SolveResult::Unknown);
        assert!(s.budget_exhausted());
        // Remove the budget and finish.
        s.set_conflict_budget(None);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn incremental_clause_addition_after_solve() {
        let mut s = solver_with_vars(3);
        s.add_clause(&[lit(1), lit(2)]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        s.add_clause(&[lit(-1)]);
        s.add_clause(&[lit(-2), lit(3)]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(s.model_value(lit(1)), Some(false));
        assert_eq!(s.model_value(lit(2)), Some(true));
        assert_eq!(s.model_value(lit(3)), Some(true));
        s.add_clause(&[lit(-3)]);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn luby_sequence_prefix() {
        let seq: Vec<f64> = (0..15).map(|i| luby(2.0, i)).collect();
        assert_eq!(
            seq,
            vec![1.0, 1.0, 2.0, 1.0, 1.0, 2.0, 4.0, 1.0, 1.0, 2.0, 1.0, 1.0, 2.0, 4.0, 8.0]
        );
    }

    #[test]
    fn stats_accumulate() {
        let mut s = solver_with_vars(3);
        s.add_clause(&[lit(1), lit(2), lit(3)]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(s.stats().solves, 1);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(s.stats().solves, 2);
    }

    #[test]
    fn model_value_of_unknown_var_is_none() {
        let mut s = solver_with_vars(1);
        s.add_clause(&[lit(1)]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(s.model_value(Lit::from_dimacs(5)), None);
    }
}
