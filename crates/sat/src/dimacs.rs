//! DIMACS CNF reading and writing.
//!
//! Supports the conventional `p cnf <vars> <clauses>` header, `c` comment
//! lines, and clauses terminated by `0`. Reading is tolerant of clauses
//! spanning multiple lines and of a missing header.

use std::error::Error;
use std::fmt;
use std::io::{self, BufRead, Write};

use crate::cnf::{ClauseSink, CnfFormula};
use crate::lit::Lit;

/// Errors produced while parsing DIMACS input.
#[derive(Debug)]
pub enum ParseDimacsError {
    /// An I/O error from the underlying reader.
    Io(io::Error),
    /// A malformed token, header, or out-of-range literal.
    Syntax {
        /// 1-based line number of the offending input.
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseDimacsError::Io(e) => write!(f, "i/o error reading dimacs: {e}"),
            ParseDimacsError::Syntax { line, message } => {
                write!(f, "dimacs syntax error at line {line}: {message}")
            }
        }
    }
}

impl Error for ParseDimacsError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseDimacsError::Io(e) => Some(e),
            ParseDimacsError::Syntax { .. } => None,
        }
    }
}

impl From<io::Error> for ParseDimacsError {
    fn from(e: io::Error) -> ParseDimacsError {
        ParseDimacsError::Io(e)
    }
}

/// Parses a DIMACS CNF file into a [`CnfFormula`].
///
/// A mutable reference can be passed for `reader` (e.g. `&mut file`).
///
/// # Errors
///
/// Returns [`ParseDimacsError`] on I/O failure, malformed tokens, a repeated
/// header, or an unterminated final clause.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let input = "c example\np cnf 2 2\n1 -2 0\n2 0\n";
/// let formula = polykey_sat::parse_dimacs(input.as_bytes())?;
/// assert_eq!(formula.num_vars(), 2);
/// assert_eq!(formula.num_clauses(), 2);
/// # Ok(())
/// # }
/// ```
pub fn parse_dimacs<R: BufRead>(reader: R) -> Result<CnfFormula, ParseDimacsError> {
    let mut formula = CnfFormula::new();
    let mut current: Vec<Lit> = Vec::new();
    let mut saw_header = false;
    for (line_no, line) in reader.lines().enumerate() {
        let line = line?;
        let line_no = line_no + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('c') || trimmed.starts_with('%') {
            continue;
        }
        if trimmed.starts_with('p') {
            if saw_header {
                return Err(ParseDimacsError::Syntax {
                    line: line_no,
                    message: "duplicate header".into(),
                });
            }
            saw_header = true;
            let mut parts = trimmed.split_whitespace();
            let _p = parts.next();
            if parts.next() != Some("cnf") {
                return Err(ParseDimacsError::Syntax {
                    line: line_no,
                    message: "expected `p cnf <vars> <clauses>`".into(),
                });
            }
            let vars: usize = parts.next().and_then(|t| t.parse().ok()).ok_or_else(|| {
                ParseDimacsError::Syntax { line: line_no, message: "bad variable count".into() }
            })?;
            formula.set_num_vars(vars);
            continue;
        }
        for token in trimmed.split_whitespace() {
            let value: i64 = token.parse().map_err(|_| ParseDimacsError::Syntax {
                line: line_no,
                message: format!("bad literal token `{token}`"),
            })?;
            if value == 0 {
                formula.add_clause(&current);
                current.clear();
            } else if value.unsigned_abs() > u32::MAX as u64 {
                return Err(ParseDimacsError::Syntax {
                    line: line_no,
                    message: format!("literal `{token}` out of range"),
                });
            } else {
                current.push(Lit::from_dimacs(value as i32));
            }
        }
    }
    if !current.is_empty() {
        return Err(ParseDimacsError::Syntax {
            line: 0,
            message: "unterminated final clause (missing `0`)".into(),
        });
    }
    Ok(formula)
}

/// Writes a formula in DIMACS CNF format.
///
/// A mutable reference can be passed for `writer` (e.g. `&mut file`).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_dimacs<W: Write>(mut writer: W, formula: &CnfFormula) -> io::Result<()> {
    writeln!(writer, "p cnf {} {}", formula.num_vars(), formula.num_clauses())?;
    for clause in formula.clauses() {
        for l in clause {
            write!(writer, "{} ", l.to_dimacs())?;
        }
        writeln!(writer, "0")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple() {
        let f = parse_dimacs("p cnf 3 2\n1 2 0\n-3 0\n".as_bytes()).expect("valid");
        assert_eq!(f.num_vars(), 3);
        assert_eq!(f.num_clauses(), 2);
        let clauses: Vec<_> = f.clauses().collect();
        assert_eq!(clauses[0], &[Lit::from_dimacs(1), Lit::from_dimacs(2)][..]);
        assert_eq!(clauses[1], &[Lit::from_dimacs(-3)][..]);
    }

    #[test]
    fn parse_multiline_clause_and_comments() {
        let f = parse_dimacs("c hi\np cnf 2 1\n1\n-2\n0\n".as_bytes()).expect("valid");
        assert_eq!(f.num_clauses(), 1);
        assert_eq!(f.clauses().next().map(<[Lit]>::len), Some(2));
    }

    #[test]
    fn parse_headerless_is_tolerated() {
        let f = parse_dimacs("1 -2 0\n".as_bytes()).expect("valid");
        assert_eq!(f.num_vars(), 2);
        assert_eq!(f.num_clauses(), 1);
    }

    #[test]
    fn parse_rejects_garbage() {
        let err = parse_dimacs("p cnf 2 1\n1 x 0\n".as_bytes()).expect_err("invalid token");
        match err {
            ParseDimacsError::Syntax { line, .. } => assert_eq!(line, 2),
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn parse_rejects_unterminated() {
        let err = parse_dimacs("p cnf 2 1\n1 2\n".as_bytes()).expect_err("unterminated");
        assert!(err.to_string().contains("unterminated"));
    }

    #[test]
    fn parse_rejects_duplicate_header() {
        let err =
            parse_dimacs("p cnf 1 1\np cnf 1 1\n1 0\n".as_bytes()).expect_err("dup header");
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn round_trip() {
        let input = "p cnf 4 3\n1 -2 0\n3 4 -1 0\n2 0\n";
        let f = parse_dimacs(input.as_bytes()).expect("valid");
        let mut out = Vec::new();
        write_dimacs(&mut out, &f).expect("write");
        let f2 = parse_dimacs(&out[..]).expect("round trip parses");
        assert_eq!(f, f2);
    }

    #[test]
    fn error_display_is_informative() {
        let err = parse_dimacs("p dnf 1 1\n".as_bytes()).expect_err("bad format tag");
        let msg = err.to_string();
        assert!(msg.contains("line 1"), "{msg}");
    }
}
