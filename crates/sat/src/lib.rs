//! # polykey-sat: a CDCL SAT solver for oracle-guided netlist attacks
//!
//! A self-contained, MiniSat-class CDCL solver used as the engine of the
//! `polykey` logic-locking attack suite, together with a plain CNF container
//! and DIMACS I/O.
//!
//! The solver implements the standard modern ingredient list:
//!
//! - two-watched-literal propagation with blocker literals,
//! - VSIDS decision heuristic with phase saving,
//! - first-UIP clause learning with deep (recursive) minimization,
//! - Luby restarts,
//! - activity/LBD-guided learnt-clause database reduction,
//! - **incremental solving**: clauses can be added between `solve` calls and
//!   each call takes a list of assumption literals, the pattern the
//!   SAT attack's DIP loop relies on.
//!
//! # Examples
//!
//! ```
//! use polykey_sat::{Solver, SolveResult};
//!
//! let mut solver = Solver::new();
//! let a = solver.new_var().positive();
//! let b = solver.new_var().positive();
//! solver.add_clause(&[a, b]);
//! solver.add_clause(&[!a, b]);
//! assert_eq!(solver.solve(&[]), SolveResult::Sat);
//! assert_eq!(solver.model_value(b), Some(true));
//! ```
//!
//! Encoders that should work against either a [`Solver`] or a
//! [`CnfFormula`] can be written against the [`ClauseSink`] trait.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod clause;
mod cnf;
mod dimacs;
mod heap;
mod lit;
mod preprocess;
mod solver;

pub use cnf::{ClauseSink, CnfFormula};
pub use dimacs::{parse_dimacs, write_dimacs, ParseDimacsError};
pub use lit::{LBool, Lit, Var};
pub use preprocess::{preprocess, PreprocessConfig, PreprocessResult};
pub use solver::{SolveResult, Solver, SolverConfig, SolverStats};
