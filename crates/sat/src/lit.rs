//! Propositional variables, literals and the three-valued assignment domain.

use std::fmt;
use std::ops::Not;

/// A propositional variable, numbered densely from 0.
///
/// Variables are created by [`Solver::new_var`](crate::Solver::new_var) or
/// [`ClauseSink::new_var`](crate::ClauseSink::new_var) and are only meaningful
/// with respect to the formula or solver that created them.
///
/// # Examples
///
/// ```
/// use polykey_sat::{Lit, Var};
///
/// let v = Var::new(3);
/// assert_eq!(v.index(), 3);
/// assert_eq!(v.positive(), Lit::new(v, false));
/// assert_eq!(!v.positive(), v.negative());
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Var(u32);

impl Var {
    /// Creates a variable with the given 0-based index.
    #[inline]
    pub const fn new(index: u32) -> Var {
        Var(index)
    }

    /// Returns the 0-based index of this variable.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the positive literal of this variable.
    #[inline]
    pub const fn positive(self) -> Lit {
        Lit::new(self, false)
    }

    /// Returns the negative literal of this variable.
    #[inline]
    pub const fn negative(self) -> Lit {
        Lit::new(self, true)
    }

    /// Returns the literal of this variable with the given sign.
    ///
    /// `lit(true)` is the positive literal, matching the convention that a
    /// literal "is true" when its variable is assigned that sign.
    #[inline]
    pub const fn lit(self, value: bool) -> Lit {
        Lit::new(self, !value)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable or its negation.
///
/// Encoded as `2 * var + negated`, the packing used by most CDCL solvers so
/// that a literal indexes watch lists directly.
///
/// # Examples
///
/// ```
/// use polykey_sat::{Lit, Var};
///
/// let a = Var::new(0).positive();
/// assert!(!a.is_negated());
/// assert!((!a).is_negated());
/// assert_eq!(a.to_dimacs(), 1);
/// assert_eq!(Lit::from_dimacs(-2), Var::new(1).negative());
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Lit(u32);

impl Lit {
    /// Creates a literal over `var`, negated if `negated` is true.
    #[inline]
    pub const fn new(var: Var, negated: bool) -> Lit {
        Lit(var.0 << 1 | negated as u32)
    }

    /// Returns the variable underlying this literal.
    #[inline]
    pub const fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Returns true if this is a negated (negative) literal.
    #[inline]
    pub const fn is_negated(self) -> bool {
        self.0 & 1 == 1
    }

    /// Returns the dense code of this literal (`2 * var + negated`),
    /// suitable for indexing per-literal tables such as watch lists.
    #[inline]
    pub const fn code(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a literal from its [`code`](Lit::code).
    #[inline]
    pub const fn from_code(code: usize) -> Lit {
        Lit(code as u32)
    }

    /// Converts a non-zero DIMACS integer (`±(var+1)`) to a literal.
    ///
    /// # Panics
    ///
    /// Panics if `value` is zero.
    #[inline]
    pub fn from_dimacs(value: i32) -> Lit {
        assert!(value != 0, "DIMACS literals are non-zero");
        let var = Var(value.unsigned_abs() - 1);
        Lit::new(var, value < 0)
    }

    /// Converts this literal to its DIMACS integer representation.
    #[inline]
    pub const fn to_dimacs(self) -> i32 {
        let v = (self.0 >> 1) as i32 + 1;
        if self.0 & 1 == 1 {
            -v
        } else {
            v
        }
    }

    /// Returns the value this literal takes when its variable is assigned
    /// `value`: the variable's value, flipped if the literal is negated.
    #[inline]
    pub const fn apply(self, value: bool) -> bool {
        value ^ (self.0 & 1 == 1)
    }
}

impl Not for Lit {
    type Output = Lit;

    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl From<Var> for Lit {
    #[inline]
    fn from(var: Var) -> Lit {
        var.positive()
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negated() {
            write!(f, "¬{}", self.var())
        } else {
            write!(f, "{}", self.var())
        }
    }
}

/// A value in the three-valued assignment domain: true, false or unassigned.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum LBool {
    /// Assigned false.
    False,
    /// Assigned true.
    True,
    /// Not assigned.
    #[default]
    Undef,
}

impl LBool {
    /// Converts a `bool` into the corresponding defined value.
    #[inline]
    pub const fn from_bool(b: bool) -> LBool {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }

    /// Returns `Some(bool)` for defined values, `None` for `Undef`.
    #[inline]
    pub const fn to_bool(self) -> Option<bool> {
        match self {
            LBool::True => Some(true),
            LBool::False => Some(false),
            LBool::Undef => None,
        }
    }

    /// True iff this value is [`LBool::Undef`].
    #[inline]
    pub const fn is_undef(self) -> bool {
        matches!(self, LBool::Undef)
    }

    /// Flips defined values; `Undef` stays `Undef`.
    #[inline]
    pub const fn negate(self) -> LBool {
        match self {
            LBool::True => LBool::False,
            LBool::False => LBool::True,
            LBool::Undef => LBool::Undef,
        }
    }

    /// Applies a literal's sign: flips the value if `negated` is true.
    #[inline]
    pub const fn xor(self, negated: bool) -> LBool {
        if negated {
            self.negate()
        } else {
            self
        }
    }
}

impl fmt::Display for LBool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LBool::True => write!(f, "1"),
            LBool::False => write!(f, "0"),
            LBool::Undef => write!(f, "?"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_literal_round_trip() {
        for i in 0..100u32 {
            let v = Var::new(i);
            assert_eq!(v.positive().var(), v);
            assert_eq!(v.negative().var(), v);
            assert!(!v.positive().is_negated());
            assert!(v.negative().is_negated());
        }
    }

    #[test]
    fn negation_is_involutive() {
        let l = Var::new(7).negative();
        assert_eq!(!!l, l);
        assert_ne!(!l, l);
        assert_eq!((!l).var(), l.var());
    }

    #[test]
    fn lit_codes_are_dense() {
        let a = Var::new(0);
        let b = Var::new(1);
        assert_eq!(a.positive().code(), 0);
        assert_eq!(a.negative().code(), 1);
        assert_eq!(b.positive().code(), 2);
        assert_eq!(b.negative().code(), 3);
        assert_eq!(Lit::from_code(3), b.negative());
    }

    #[test]
    fn dimacs_round_trip() {
        for i in [1, -1, 2, -2, 17, -129] {
            assert_eq!(Lit::from_dimacs(i).to_dimacs(), i);
        }
        assert_eq!(Lit::from_dimacs(1), Var::new(0).positive());
        assert_eq!(Lit::from_dimacs(-3), Var::new(2).negative());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn dimacs_zero_panics() {
        let _ = Lit::from_dimacs(0);
    }

    #[test]
    fn lbool_algebra() {
        assert_eq!(LBool::from_bool(true), LBool::True);
        assert_eq!(LBool::from_bool(false), LBool::False);
        assert_eq!(LBool::True.negate(), LBool::False);
        assert_eq!(LBool::Undef.negate(), LBool::Undef);
        assert_eq!(LBool::True.xor(true), LBool::False);
        assert_eq!(LBool::False.xor(true), LBool::True);
        assert_eq!(LBool::Undef.xor(true), LBool::Undef);
        assert_eq!(LBool::True.to_bool(), Some(true));
        assert_eq!(LBool::Undef.to_bool(), None);
        assert!(LBool::Undef.is_undef());
    }

    #[test]
    fn var_lit_sign_convention() {
        let v = Var::new(4);
        assert_eq!(v.lit(true), v.positive());
        assert_eq!(v.lit(false), v.negative());
        // A positive literal applied to a true assignment is true.
        assert!(v.positive().apply(true));
        assert!(!v.negative().apply(true));
        assert!(v.negative().apply(false));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Var::new(2).to_string(), "x2");
        assert_eq!(Var::new(2).positive().to_string(), "x2");
        assert_eq!(Var::new(2).negative().to_string(), "¬x2");
        assert_eq!(LBool::True.to_string(), "1");
        assert_eq!(LBool::Undef.to_string(), "?");
    }
}
