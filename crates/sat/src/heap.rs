//! Indexed max-heap over variable activities (the VSIDS decision order).

use crate::lit::Var;

/// A binary max-heap of variables keyed by an external activity array,
/// supporting `decrease-key` (here: activity *increase*) in `O(log n)` via a
/// position index.
///
/// The activity array lives in the solver; every operation that needs to
/// compare takes it as a parameter so the heap holds no borrow.
#[derive(Debug, Default)]
pub(crate) struct VarOrderHeap {
    heap: Vec<Var>,
    /// Position of each variable in `heap`, or `NONE` if absent.
    pos: Vec<u32>,
}

const NONE: u32 = u32::MAX;

impl VarOrderHeap {
    pub(crate) fn new() -> VarOrderHeap {
        VarOrderHeap::default()
    }

    /// Registers a new variable index (does not insert it).
    pub(crate) fn grow_to(&mut self, num_vars: usize) {
        if self.pos.len() < num_vars {
            self.pos.resize(num_vars, NONE);
        }
    }

    #[inline]
    pub(crate) fn contains(&self, v: Var) -> bool {
        self.pos[v.index()] != NONE
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.heap.len()
    }

    /// Inserts `v` if absent.
    pub(crate) fn insert(&mut self, v: Var, act: &[f64]) {
        if self.contains(v) {
            return;
        }
        let i = self.heap.len();
        self.heap.push(v);
        self.pos[v.index()] = i as u32;
        self.sift_up(i, act);
    }

    /// Restores the heap property after `v`'s activity increased.
    pub(crate) fn bumped(&mut self, v: Var, act: &[f64]) {
        let p = self.pos[v.index()];
        if p != NONE {
            self.sift_up(p as usize, act);
        }
    }

    /// Removes and returns the variable with maximum activity.
    pub(crate) fn pop_max(&mut self, act: &[f64]) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        self.pos[top.index()] = NONE;
        let last = self.heap.pop().expect("non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last.index()] = 0;
            self.sift_down(0, act);
        }
        Some(top)
    }

    fn sift_up(&mut self, mut i: usize, act: &[f64]) {
        let v = self.heap[i];
        let a = act[v.index()];
        while i > 0 {
            let parent = (i - 1) / 2;
            let pv = self.heap[parent];
            if act[pv.index()] >= a {
                break;
            }
            self.heap[i] = pv;
            self.pos[pv.index()] = i as u32;
            i = parent;
        }
        self.heap[i] = v;
        self.pos[v.index()] = i as u32;
    }

    fn sift_down(&mut self, mut i: usize, act: &[f64]) {
        let v = self.heap[i];
        let a = act[v.index()];
        let n = self.heap.len();
        loop {
            let left = 2 * i + 1;
            if left >= n {
                break;
            }
            let right = left + 1;
            let child =
                if right < n && act[self.heap[right].index()] > act[self.heap[left].index()] {
                    right
                } else {
                    left
                };
            let cv = self.heap[child];
            if a >= act[cv.index()] {
                break;
            }
            self.heap[i] = cv;
            self.pos[cv.index()] = i as u32;
            i = child;
        }
        self.heap[i] = v;
        self.pos[v.index()] = i as u32;
    }

    #[cfg(test)]
    fn check_invariants(&self, act: &[f64]) {
        for (i, &v) in self.heap.iter().enumerate() {
            assert_eq!(self.pos[v.index()] as usize, i);
            if i > 0 {
                let parent = self.heap[(i - 1) / 2];
                assert!(act[parent.index()] >= act[v.index()]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pop_order_is_descending_activity() {
        let act = vec![0.5, 3.0, 1.5, 0.1, 2.0];
        let mut h = VarOrderHeap::new();
        h.grow_to(5);
        for i in 0..5 {
            h.insert(Var::new(i), &act);
        }
        h.check_invariants(&act);
        let order: Vec<usize> =
            std::iter::from_fn(|| h.pop_max(&act)).map(|v| v.index()).collect();
        assert_eq!(order, vec![1, 4, 2, 0, 3]);
    }

    #[test]
    fn insert_is_idempotent() {
        let act = vec![1.0, 2.0];
        let mut h = VarOrderHeap::new();
        h.grow_to(2);
        h.insert(Var::new(0), &act);
        h.insert(Var::new(0), &act);
        assert_eq!(h.len(), 1);
        assert!(h.contains(Var::new(0)));
        assert!(!h.contains(Var::new(1)));
    }

    #[test]
    fn bumped_reorders() {
        let mut act = vec![1.0, 2.0, 3.0];
        let mut h = VarOrderHeap::new();
        h.grow_to(3);
        for i in 0..3 {
            h.insert(Var::new(i), &act);
        }
        // Bump x0 above everything.
        act[0] = 10.0;
        h.bumped(Var::new(0), &act);
        h.check_invariants(&act);
        assert_eq!(h.pop_max(&act), Some(Var::new(0)));
    }

    #[test]
    fn pop_empty_is_none() {
        let act: Vec<f64> = vec![];
        let mut h = VarOrderHeap::new();
        assert_eq!(h.len(), 0);
        assert_eq!(h.pop_max(&act), None);
    }

    #[test]
    fn randomized_against_sort() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for _ in 0..50 {
            let n = rng.random_range(1..60usize);
            let act: Vec<f64> = (0..n).map(|_| rng.random_range(0.0..100.0)).collect();
            let mut h = VarOrderHeap::new();
            h.grow_to(n);
            for i in 0..n {
                h.insert(Var::new(i as u32), &act);
            }
            let mut popped: Vec<f64> =
                std::iter::from_fn(|| h.pop_max(&act)).map(|v| act[v.index()]).collect();
            let mut sorted = act.clone();
            sorted.sort_by(|a, b| b.partial_cmp(a).expect("no NaN"));
            assert_eq!(popped.len(), sorted.len());
            for (a, b) in popped.drain(..).zip(sorted) {
                assert_eq!(a, b);
            }
        }
    }
}
