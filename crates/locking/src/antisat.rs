//! Anti-SAT: complementary-block locking (Xie & Srivastava, CHES'16).
//!
//! Two complementary functions `g(X ⊕ K_A)` and `¬g(X ⊕ K_B)` are ANDed;
//! when the two halves agree (up to the hardwired per-bit polarity) the
//! AND is constantly 0 and the design is unlocked, so the scheme has `2^n`
//! functionally correct keys out of `2^{2n}` — a natural stress test for
//! key *verification* logic, since recovered keys need not match the
//! nominally "correct" one bit-for-bit.
//!
//! The scheme value is [`AntiSat`]; the free function [`lock_antisat`] is
//! a deprecated shim kept for one release.

use rand::Rng;

use polykey_netlist::{GateKind, Netlist, NodeId};

use crate::common::{key_name, require_unlocked, Key, LockError, LockedCircuit};
use crate::scheme::{require_key_width, LockScheme};

/// Anti-SAT complementary-block locking as a [`LockScheme`].
///
/// The key width is `2n`: the first `n` bits feed block A, the last `n`
/// block B. Per-bit polarity constants (derived from the requested key)
/// make the *given* key correct; every key whose halves differ by the same
/// polarity vector is equally correct, preserving Anti-SAT's `2^n`-correct-
/// keys property.
///
/// # Examples
///
/// ```
/// use polykey_locking::{AntiSat, Key, LockScheme};
/// use polykey_netlist::{GateKind, Netlist};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut nl = Netlist::new("t");
/// let a = nl.add_input("a")?;
/// let b = nl.add_input("b")?;
/// let y = nl.add_gate("y", GateKind::Or, &[a, b])?;
/// nl.mark_output(y)?;
///
/// let locked = AntiSat::new(2).lock(&nl, &Key::from_u64(0b0110, 4))?;
/// assert_eq!(locked.netlist.key_inputs().len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
#[must_use]
pub struct AntiSat {
    /// Number of circuit inputs wired into each block (`n`); the total key
    /// width is `2n`.
    pub n: usize,
    /// Index of the output to corrupt; defaults to the first output.
    pub target_output: Option<usize>,
}

impl AntiSat {
    /// An Anti-SAT scheme over `n` inputs (key width `2n`).
    pub fn new(n: usize) -> AntiSat {
        AntiSat { n, target_output: None }
    }
}

impl Default for AntiSat {
    /// Two-input blocks (key width 4).
    fn default() -> AntiSat {
        AntiSat::new(2)
    }
}

impl From<&AntisatConfig> for AntiSat {
    fn from(config: &AntisatConfig) -> AntiSat {
        AntiSat { n: config.n, target_output: config.target_output }
    }
}

impl LockScheme for AntiSat {
    fn name(&self) -> &str {
        "antisat"
    }

    fn key_len(&self, _netlist: &Netlist) -> usize {
        2 * self.n
    }

    fn lock(&self, netlist: &Netlist, key: &Key) -> Result<LockedCircuit, LockError> {
        require_key_width(2 * self.n, key)?;
        require_unlocked(netlist)?;
        let n = self.n;
        if n == 0 {
            return Err(LockError::TooSmall { what: "a non-zero block width" });
        }
        if n > netlist.inputs().len() {
            return Err(LockError::KeyTooWide {
                requested: n,
                available: netlist.inputs().len(),
            });
        }
        if netlist.outputs().is_empty() {
            return Err(LockError::TooSmall { what: "at least one output" });
        }
        let target_output = self.target_output.unwrap_or(0);
        if target_output >= netlist.outputs().len() {
            return Err(LockError::TooSmall { what: "a valid target output index" });
        }

        let mut locked = netlist.clone();
        locked.set_name(format!("{}_antisat{}", netlist.name(), 2 * n));

        let keys: Vec<NodeId> = (0..2 * n)
            .map(|i| {
                let name = key_name(&locked, i);
                locked.add_key_input(name)
            })
            .collect::<Result<_, _>>()?;
        let (keys_a, keys_b) = keys.split_at(n);

        // Block A: g = AND_i (x_i ⊕ ka_i); block B: ¬g over kb, with the
        // per-bit polarity c_i = ka_i ⊕ kb_i hardwired (Xnor where c_i = 1)
        // so the requested key is one of the 2^n correct keys.
        let taps: Vec<NodeId> = locked.inputs()[..n].to_vec();
        let mut xa = Vec::with_capacity(n);
        let mut xb = Vec::with_capacity(n);
        for i in 0..n {
            let polarity = key.bit(i) ^ key.bit(n + i);
            xa.push(locked.add_gate(
                format!("as_xa{i}"),
                GateKind::Xor,
                &[taps[i], keys_a[i]],
            )?);
            let b_kind = if polarity { GateKind::Xnor } else { GateKind::Xor };
            xb.push(locked.add_gate(format!("as_xb{i}"), b_kind, &[taps[i], keys_b[i]])?);
        }
        let ga = locked.add_gate("as_ga", GateKind::And, &xa)?;
        let gb = locked.add_gate("as_gb", GateKind::Nand, &xb)?;
        let flip = locked.add_gate("as_flip", GateKind::And, &[ga, gb])?;

        let out_node = locked.outputs()[target_output];
        locked.insert_after(out_node, "as_out", GateKind::Xor, &[flip])?;

        Ok(LockedCircuit { netlist: locked, key: key.clone() })
    }
}

/// Configuration for the deprecated [`lock_antisat`] shim; new code uses
/// the [`AntiSat`] scheme value directly.
#[derive(Clone, Debug)]
#[must_use]
pub struct AntisatConfig {
    /// Number of circuit inputs wired into each block (`n`); the total key
    /// width is `2n`.
    pub n: usize,
    /// Index of the output to corrupt; defaults to the first output.
    pub target_output: Option<usize>,
}

impl AntisatConfig {
    /// A default configuration over `n` inputs (key width `2n`).
    pub fn new(n: usize) -> AntisatConfig {
        AntisatConfig { n, target_output: None }
    }
}

/// Locks `netlist` with Anti-SAT using a random (equal-halves) correct key.
///
/// The returned key has `K_A = K_B`, which is one of the `2^n` correct keys.
///
/// # Errors
///
/// - [`LockError::AlreadyLocked`] if the netlist already has key inputs.
/// - [`LockError::KeyTooWide`] if `n` exceeds the input count.
/// - [`LockError::TooSmall`] for netlists without outputs or with `n = 0`.
#[deprecated(
    since = "0.2.0",
    note = "use `AntiSat::new(n)` with `LockScheme::lock` or `lock_random`"
)]
pub fn lock_antisat<R: Rng>(
    netlist: &Netlist,
    config: &AntisatConfig,
    rng: &mut R,
) -> Result<LockedCircuit, LockError> {
    if config.n == 0 {
        return Err(LockError::TooSmall { what: "a non-zero block width" });
    }
    // Any K_A = K_B is correct; pick a random such key (the polarity
    // constants then fold to plain Xor gates, the historical structure).
    let half = Key::random(config.n, rng);
    AntiSat::from(config).lock(netlist, &half.concat(&half))
}

#[cfg(test)]
mod tests {
    use super::*;
    use polykey_netlist::{bits_of, Simulator};
    use rand::SeedableRng;

    fn parity4() -> Netlist {
        let mut nl = Netlist::new("par4");
        let ins: Vec<NodeId> = (0..4).map(|i| nl.add_input(format!("x{i}")).unwrap()).collect();
        let y = nl.add_gate("y", GateKind::Xor, &ins).unwrap();
        nl.mark_output(y).unwrap();
        nl
    }

    #[test]
    fn equal_halves_unlock() {
        let nl = parity4();
        let half = Key::from_u64(0b011, 3);
        let locked = AntiSat::new(3).lock(&nl, &half.concat(&half)).unwrap();
        assert_eq!(locked.netlist.key_inputs().len(), 6);

        let mut orig = Simulator::new(&nl).unwrap();
        let mut lsim = Simulator::new(&locked.netlist).unwrap();
        // The returned key and *every* equal-halves key unlock.
        for h in 0..8u64 {
            let mut key = bits_of(h, 3);
            key.extend(bits_of(h, 3));
            for v in 0..16u64 {
                let bits = bits_of(v, 4);
                assert_eq!(lsim.eval(&bits, &key), orig.eval(&bits, &[]), "half {h:03b}");
            }
        }
        for v in 0..16u64 {
            let bits = bits_of(v, 4);
            assert_eq!(lsim.eval(&bits, locked.key.bits()), orig.eval(&bits, &[]));
        }
    }

    #[test]
    fn arbitrary_keys_become_correct() {
        // The generalized polarity makes *any* requested 2n-bit key
        // correct — and keeps 2^n keys correct in total.
        let nl = parity4();
        let scheme = AntiSat::new(2);
        let mut orig = Simulator::new(&nl).unwrap();
        for k in 0..16u64 {
            let key = Key::from_u64(k, 4);
            let locked = scheme.lock(&nl, &key).unwrap();
            let mut lsim = Simulator::new(&locked.netlist).unwrap();
            for v in 0..16u64 {
                let bits = bits_of(v, 4);
                assert_eq!(
                    lsim.eval(&bits, key.bits()),
                    orig.eval(&bits, &[]),
                    "key {k:04b} input {v:04b}"
                );
            }
            // Count correct keys exhaustively: exactly 2^n = 4.
            let correct = (0..16u64)
                .filter(|&cand| {
                    let cbits = bits_of(cand, 4);
                    (0..16u64).all(|v| {
                        let bits = bits_of(v, 4);
                        lsim.eval(&bits, &cbits) == orig.eval(&bits, &[])
                    })
                })
                .count();
            assert_eq!(correct, 4, "key {k:04b}");
        }
    }

    #[test]
    fn unequal_halves_corrupt_somewhere() {
        let nl = parity4();
        let locked = AntiSat::new(3).lock(&nl, &Key::from_u64(0, 6)).unwrap();
        let mut orig = Simulator::new(&nl).unwrap();
        let mut lsim = Simulator::new(&locked.netlist).unwrap();
        // K_A = 000, K_B = 111 differs from the locked polarity (zero):
        // g(X) ∧ ¬g'(X) fires for some X.
        let key = vec![false, false, false, true, true, true];
        let corrupts = (0..16u64).any(|v| {
            let bits = bits_of(v, 4);
            lsim.eval(&bits, &key) != orig.eval(&bits, &[])
        });
        assert!(corrupts);
    }

    #[test]
    fn width_checks() {
        let nl = parity4();
        assert!(matches!(
            AntiSat::new(9).lock(&nl, &Key::from_u64(0, 18)),
            Err(LockError::KeyTooWide { .. })
        ));
        assert!(matches!(
            AntiSat::new(0).lock(&nl, &Key::default()),
            Err(LockError::TooSmall { .. })
        ));
    }

    #[test]
    fn structure_validates() {
        let nl = parity4();
        let locked = AntiSat::new(4).lock(&nl, &Key::from_u64(0xAB, 8)).unwrap();
        locked.netlist.validate().unwrap();
        // 2n Xor + And + Nand + flip And + output Xor.
        assert_eq!(locked.netlist.num_gates(), nl.num_gates() + 2 * 4 + 4);
    }

    #[allow(deprecated)]
    mod shims {
        use super::*;

        #[test]
        fn shim_returns_equal_halves_key_that_unlocks() {
            let nl = parity4();
            let mut rng = rand::rngs::StdRng::seed_from_u64(5);
            let locked = lock_antisat(&nl, &AntisatConfig::new(3), &mut rng).unwrap();
            assert_eq!(locked.key.bits()[..3], locked.key.bits()[3..]);
            let mut orig = Simulator::new(&nl).unwrap();
            let mut lsim = Simulator::new(&locked.netlist).unwrap();
            for v in 0..16u64 {
                let bits = bits_of(v, 4);
                assert_eq!(lsim.eval(&bits, locked.key.bits()), orig.eval(&bits, &[]));
            }
        }

        #[test]
        fn shim_width_checks() {
            let nl = parity4();
            let mut rng = rand::rngs::StdRng::seed_from_u64(0);
            assert!(matches!(
                lock_antisat(&nl, &AntisatConfig::new(9), &mut rng),
                Err(LockError::KeyTooWide { .. })
            ));
            assert!(matches!(
                lock_antisat(&nl, &AntisatConfig::new(0), &mut rng),
                Err(LockError::TooSmall { .. })
            ));
        }
    }
}
