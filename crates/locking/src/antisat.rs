//! Anti-SAT: complementary-block locking (Xie & Srivastava, CHES'16).
//!
//! Two complementary functions `g(X ⊕ K_A)` and `¬g(X ⊕ K_B)` are ANDed;
//! when `K_A = K_B` the AND is constantly 0 and the design is unlocked, so
//! the scheme has `2^n` functionally correct keys out of `2^{2n}` — a
//! natural stress test for key *verification* logic, since recovered keys
//! need not match the nominally "correct" one bit-for-bit.

use rand::Rng;

use polykey_netlist::{GateKind, Netlist, NodeId};

use crate::common::{key_name, require_unlocked, Key, LockError, LockedCircuit};

/// Configuration for [`lock_antisat`].
#[derive(Clone, Debug)]
pub struct AntisatConfig {
    /// Number of circuit inputs wired into each block (`n`); the total key
    /// width is `2n`.
    pub n: usize,
    /// Index of the output to corrupt; defaults to the first output.
    pub target_output: Option<usize>,
}

impl AntisatConfig {
    /// A default configuration over `n` inputs (key width `2n`).
    pub fn new(n: usize) -> AntisatConfig {
        AntisatConfig { n, target_output: None }
    }
}

/// Locks `netlist` with Anti-SAT using a random (equal-halves) correct key.
///
/// The returned key has `K_A = K_B`, which is one of the `2^n` correct keys.
///
/// # Errors
///
/// - [`LockError::AlreadyLocked`] if the netlist already has key inputs.
/// - [`LockError::KeyTooWide`] if `n` exceeds the input count.
/// - [`LockError::TooSmall`] for netlists without outputs or with `n = 0`.
pub fn lock_antisat<R: Rng>(
    netlist: &Netlist,
    config: &AntisatConfig,
    rng: &mut R,
) -> Result<LockedCircuit, LockError> {
    require_unlocked(netlist)?;
    let n = config.n;
    if n == 0 {
        return Err(LockError::TooSmall { what: "a non-zero block width" });
    }
    if n > netlist.inputs().len() {
        return Err(LockError::KeyTooWide { requested: n, available: netlist.inputs().len() });
    }
    if netlist.outputs().is_empty() {
        return Err(LockError::TooSmall { what: "at least one output" });
    }
    let target_output = config.target_output.unwrap_or(0);
    if target_output >= netlist.outputs().len() {
        return Err(LockError::TooSmall { what: "a valid target output index" });
    }

    let mut locked = netlist.clone();
    locked.set_name(format!("{}_antisat{}", netlist.name(), 2 * n));

    let keys: Vec<NodeId> = (0..2 * n)
        .map(|i| {
            let name = key_name(&locked, i);
            locked.add_key_input(name)
        })
        .collect::<Result<_, _>>()?;
    let (keys_a, keys_b) = keys.split_at(n);

    // Block A: g = AND_i (x_i ⊕ ka_i); block B: ¬g over kb.
    let taps: Vec<NodeId> = locked.inputs()[..n].to_vec();
    let mut xa = Vec::with_capacity(n);
    let mut xb = Vec::with_capacity(n);
    for i in 0..n {
        xa.push(locked.add_gate(format!("as_xa{i}"), GateKind::Xor, &[taps[i], keys_a[i]])?);
        xb.push(locked.add_gate(format!("as_xb{i}"), GateKind::Xor, &[taps[i], keys_b[i]])?);
    }
    let ga = locked.add_gate("as_ga", GateKind::And, &xa)?;
    let gb = locked.add_gate("as_gb", GateKind::Nand, &xb)?;
    let flip = locked.add_gate("as_flip", GateKind::And, &[ga, gb])?;

    let out_node = locked.outputs()[target_output];
    locked.insert_after(out_node, "as_out", GateKind::Xor, &[flip])?;

    // Any K_A = K_B is correct; return a random such key.
    let half = Key::random(n, rng);
    let key = half.concat(&half);
    Ok(LockedCircuit { netlist: locked, key })
}

#[cfg(test)]
mod tests {
    use super::*;
    use polykey_netlist::{bits_of, Simulator};
    use rand::SeedableRng;

    fn parity4() -> Netlist {
        let mut nl = Netlist::new("par4");
        let ins: Vec<NodeId> =
            (0..4).map(|i| nl.add_input(format!("x{i}")).unwrap()).collect();
        let y = nl.add_gate("y", GateKind::Xor, &ins).unwrap();
        nl.mark_output(y).unwrap();
        nl
    }

    #[test]
    fn equal_halves_unlock() {
        let nl = parity4();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let locked = lock_antisat(&nl, &AntisatConfig::new(3), &mut rng).unwrap();
        assert_eq!(locked.netlist.key_inputs().len(), 6);

        let mut orig = Simulator::new(&nl).unwrap();
        let mut lsim = Simulator::new(&locked.netlist).unwrap();
        // The returned key and *every* equal-halves key unlock.
        for half in 0..8u64 {
            let mut key = bits_of(half, 3);
            key.extend(bits_of(half, 3));
            for v in 0..16u64 {
                let bits = bits_of(v, 4);
                assert_eq!(lsim.eval(&bits, &key), orig.eval(&bits, &[]), "half {half:03b}");
            }
        }
        for v in 0..16u64 {
            let bits = bits_of(v, 4);
            assert_eq!(lsim.eval(&bits, locked.key.bits()), orig.eval(&bits, &[]));
        }
    }

    #[test]
    fn unequal_halves_corrupt_somewhere() {
        let nl = parity4();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let locked = lock_antisat(&nl, &AntisatConfig::new(3), &mut rng).unwrap();
        let mut orig = Simulator::new(&nl).unwrap();
        let mut lsim = Simulator::new(&locked.netlist).unwrap();
        // K_A = 000, K_B = 111: g(X) ∧ ¬g'(X) fires for some X.
        let key = vec![false, false, false, true, true, true];
        let corrupts = (0..16u64).any(|v| {
            let bits = bits_of(v, 4);
            lsim.eval(&bits, &key) != orig.eval(&bits, &[])
        });
        assert!(corrupts);
    }

    #[test]
    fn width_checks() {
        let nl = parity4();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        assert!(matches!(
            lock_antisat(&nl, &AntisatConfig::new(9), &mut rng),
            Err(LockError::KeyTooWide { .. })
        ));
        assert!(matches!(
            lock_antisat(&nl, &AntisatConfig::new(0), &mut rng),
            Err(LockError::TooSmall { .. })
        ));
    }

    #[test]
    fn structure_validates() {
        let nl = parity4();
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let locked = lock_antisat(&nl, &AntisatConfig::new(4), &mut rng).unwrap();
        locked.netlist.validate().unwrap();
        // 2n Xor + And + Nand + flip And + output Xor.
        assert_eq!(locked.netlist.num_gates(), nl.num_gates() + 2 * 4 + 4);
    }
}
