//! The [`LockScheme`] trait: every locking technique as an interchangeable
//! part.
//!
//! The paper's core claim — that a locked circuit falls to *any* set of
//! sub-space keys, not just *the* one key — only pays off when attacks and
//! schemes compose freely: Algorithm 1 runs unmodified against RLL,
//! SARLock, Anti-SAT, LUT insertion, or any future scheme. A scheme value
//! bundles its configuration (and, for schemes with structural randomness,
//! a placement seed), so a heterogeneous sweep is just a loop:
//!
//! ```
//! use polykey_locking::{AntiSat, LockScheme, LutLock, Rll, Sarlock};
//! use polykey_netlist::{GateKind, Netlist};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut nl = Netlist::new("toy");
//! let a = nl.add_input("a")?;
//! let b = nl.add_input("b")?;
//! let c = nl.add_input("c")?;
//! let g = nl.add_gate("g", GateKind::And, &[a, b])?;
//! let y = nl.add_gate("y", GateKind::Xor, &[g, c])?;
//! nl.mark_output(y)?;
//!
//! let schemes: Vec<Box<dyn LockScheme>> = vec![
//!     Box::new(Rll::new(2).with_seed(7)),
//!     Box::new(Sarlock::new(2)),
//!     Box::new(AntiSat::new(2)),
//!     Box::new(LutLock::new(vec![2], 0).with_seed(7)),
//! ];
//! for scheme in &schemes {
//!     let width = scheme.key_len(&nl);
//!     let locked = scheme.lock(&nl, &polykey_locking::Key::from_u64(1, width))?;
//!     assert_eq!(locked.netlist.key_inputs().len(), width);
//! }
//! # Ok(())
//! # }
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use polykey_netlist::Netlist;

use crate::common::{Key, LockError, LockedCircuit};

/// A logic-locking scheme, usable as a trait object in heterogeneous
/// sweeps (`Vec<Box<dyn LockScheme>>`).
///
/// Implementations bundle all scheme configuration. Structural choices
/// (which wires to cut, which nets to tap) are derived from a seed stored
/// on the scheme value, so [`LockScheme::lock`] is deterministic: the same
/// scheme value, netlist, and key always produce the same locked circuit.
///
/// # Examples
///
/// Locking is functionally invisible under the requested key:
///
/// ```
/// use polykey_locking::{Key, LockScheme, Rll};
/// use polykey_netlist::{GateKind, Netlist, Simulator};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut nl = Netlist::new("toy");
/// let a = nl.add_input("a")?;
/// let b = nl.add_input("b")?;
/// let g = nl.add_gate("g", GateKind::Or, &[a, b])?;
/// let y = nl.add_gate("y", GateKind::Nand, &[g, a])?;
/// nl.mark_output(y)?;
///
/// let scheme = Rll::new(2).with_seed(7);
/// let locked = scheme.lock(&nl, &Key::from_u64(0b10, scheme.key_len(&nl)))?;
/// assert_eq!(locked.netlist.key_inputs().len(), 2);
///
/// let mut orig = Simulator::new(&nl)?;
/// let mut sim = Simulator::new(&locked.netlist)?;
/// for v in 0..4u64 {
///     let bits = [v & 1 == 1, v >> 1 & 1 == 1];
///     assert_eq!(sim.eval(&bits, locked.key.bits()), orig.eval(&bits, &[]));
/// }
/// # Ok(())
/// # }
/// ```
pub trait LockScheme: Send + Sync {
    /// A short stable identifier (`"rll"`, `"sarlock"`, …) for reports and
    /// harness tables.
    fn name(&self) -> &str;

    /// The key width this scheme produces on `netlist`.
    fn key_len(&self, netlist: &Netlist) -> usize;

    /// Locks `netlist` so that `key` is a correct key.
    ///
    /// Schemes with non-unique correct keys (Anti-SAT, SARLock) make the
    /// *given* key correct; other keys may also be correct by design.
    ///
    /// # Errors
    ///
    /// - [`LockError::KeyWidthMismatch`] if `key.len()` differs from
    ///   [`LockScheme::key_len`].
    /// - Scheme-specific structural errors ([`LockError::AlreadyLocked`],
    ///   [`LockError::KeyTooWide`], [`LockError::TooSmall`]).
    fn lock(&self, netlist: &Netlist, key: &Key) -> Result<LockedCircuit, LockError>;

    /// Locks `netlist` with a key sampled uniformly from `rng`.
    ///
    /// Provided: samples [`Key::random`] of [`LockScheme::key_len`] bits
    /// and delegates to [`LockScheme::lock`].
    ///
    /// # Errors
    ///
    /// As for [`LockScheme::lock`].
    fn lock_random(
        &self,
        netlist: &Netlist,
        rng: &mut dyn Rng,
    ) -> Result<LockedCircuit, LockError> {
        let key = Key::random(self.key_len(netlist), rng);
        self.lock(netlist, &key)
    }
}

/// Derives the placement RNG a scheme uses for its structural choices.
pub(crate) fn placement_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Rejects keys whose width disagrees with the scheme's key length.
pub(crate) fn require_key_width(expected: usize, key: &Key) -> Result<(), LockError> {
    if key.len() == expected {
        Ok(())
    } else {
        Err(LockError::KeyWidthMismatch { expected, got: key.len() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AntiSat, LutLock, Rll, Sarlock};
    use polykey_netlist::{bits_of, GateKind, Simulator};

    fn sample() -> Netlist {
        let mut nl = Netlist::new("s");
        let a = nl.add_input("a").unwrap();
        let b = nl.add_input("b").unwrap();
        let c = nl.add_input("c").unwrap();
        let g1 = nl.add_gate("g1", GateKind::And, &[a, b]).unwrap();
        let g2 = nl.add_gate("g2", GateKind::Or, &[g1, c]).unwrap();
        let g3 = nl.add_gate("g3", GateKind::Xor, &[g1, g2]).unwrap();
        let g4 = nl.add_gate("g4", GateKind::Nand, &[g2, g3]).unwrap();
        nl.mark_output(g4).unwrap();
        nl
    }

    fn all_schemes() -> Vec<Box<dyn LockScheme>> {
        vec![
            Box::new(Rll::new(3).with_seed(11)),
            Box::new(Sarlock::new(3)),
            Box::new(AntiSat::new(2)),
            Box::new(LutLock::new(vec![2], 0).with_seed(5)),
        ]
    }

    #[test]
    fn every_scheme_locks_and_unlocks_with_its_key() {
        let nl = sample();
        for scheme in all_schemes() {
            let width = scheme.key_len(&nl);
            assert!(width > 0, "{}", scheme.name());
            let key = Key::from_u64(0b1011_0110 & ((1 << width) - 1), width);
            let locked = scheme.lock(&nl, &key).unwrap();
            assert_eq!(locked.key, key, "{}", scheme.name());
            assert_eq!(locked.netlist.key_inputs().len(), width, "{}", scheme.name());
            locked.netlist.validate().unwrap();

            let mut orig = Simulator::new(&nl).unwrap();
            let mut lsim = Simulator::new(&locked.netlist).unwrap();
            for v in 0..8u64 {
                let bits = bits_of(v, 3);
                assert_eq!(
                    lsim.eval(&bits, locked.key.bits()),
                    orig.eval(&bits, &[]),
                    "{} must be invisible under its key at input {v:03b}",
                    scheme.name()
                );
            }
        }
    }

    #[test]
    fn lock_is_deterministic() {
        let nl = sample();
        for scheme in all_schemes() {
            let key =
                Key::from_u64(0b101 & ((1 << scheme.key_len(&nl)) - 1), scheme.key_len(&nl));
            let a = scheme.lock(&nl, &key).unwrap();
            let b = scheme.lock(&nl, &key).unwrap();
            assert_eq!(a.key, b.key, "{}", scheme.name());
            assert_eq!(a.netlist.num_nodes(), b.netlist.num_nodes(), "{}", scheme.name());
        }
    }

    #[test]
    fn lock_random_samples_the_advertised_width() {
        let nl = sample();
        let mut rng = placement_rng(99);
        for scheme in all_schemes() {
            let locked = scheme.lock_random(&nl, &mut rng).unwrap();
            assert_eq!(locked.key.len(), scheme.key_len(&nl), "{}", scheme.name());
        }
    }

    #[test]
    fn wrong_key_width_rejected_uniformly() {
        let nl = sample();
        for scheme in all_schemes() {
            let bad = Key::from_u64(0, scheme.key_len(&nl) + 1);
            assert!(
                matches!(scheme.lock(&nl, &bad), Err(LockError::KeyWidthMismatch { .. })),
                "{}",
                scheme.name()
            );
        }
    }

    #[test]
    fn names_are_stable() {
        let names: Vec<String> = all_schemes().iter().map(|s| s.name().to_string()).collect();
        assert_eq!(names, ["rll", "sarlock", "antisat", "lut"]);
    }
}
