//! # polykey-locking: logic locking schemes
//!
//! The four locking techniques the paper's evaluation touches:
//!
//! - [`lock_rll`] — random XOR/XNOR key-gate insertion (EPIC-style), the
//!   baseline every oracle-guided attack breaks quickly;
//! - [`lock_sarlock`] — SARLock point-function locking (Table 1 and the
//!   Fig. 1(a) error distribution);
//! - [`lock_antisat`] — Anti-SAT complementary blocks, a scheme whose
//!   correct keys are non-unique by design;
//! - [`lock_lut`] — two-stage LUT insertion (Table 2), which bloats the
//!   SAT attack's miter instead of its iteration count.
//!
//! Every scheme takes a pristine netlist plus an RNG, adds `keyinput{i}`
//! ports, and returns a [`LockedCircuit`]: the locked netlist together with
//! a correct [`Key`]. Locking is functionally invisible under the correct
//! key — a property the test suites verify exhaustively on small circuits.
//!
//! # Examples
//!
//! ```
//! use rand::SeedableRng;
//! use polykey_netlist::{GateKind, Netlist, Simulator};
//! use polykey_locking::{lock_sarlock, SarlockConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut nl = Netlist::new("toy");
//! let a = nl.add_input("a")?;
//! let b = nl.add_input("b")?;
//! let y = nl.add_gate("y", GateKind::And, &[a, b])?;
//! nl.mark_output(y)?;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//! let locked = lock_sarlock(&nl, &SarlockConfig::new(2), &mut rng)?;
//! assert_eq!(locked.netlist.key_inputs().len(), 2);
//!
//! // The correct key restores the original function.
//! let mut sim = Simulator::new(&locked.netlist)?;
//! assert_eq!(sim.eval(&[true, true], locked.key.bits()), vec![true]);
//! assert_eq!(sim.eval(&[true, false], locked.key.bits()), vec![false]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod antisat;
mod common;
mod lut;
mod rll;
mod sarlock;

pub use antisat::{lock_antisat, AntisatConfig};
pub use common::{Key, LockError, LockedCircuit};
pub use lut::{lock_lut, LutConfig};
pub use rll::lock_rll;
pub use sarlock::{lock_sarlock, lock_sarlock_on_signals, lock_sarlock_with_key, SarlockConfig};
