//! # polykey-locking: logic locking schemes behind one trait
//!
//! Every locking technique the paper's evaluation touches is a value
//! implementing [`LockScheme`], so attacks, harnesses, and sweeps treat
//! schemes as interchangeable parts (`Vec<Box<dyn LockScheme>>`):
//!
//! - [`Rll`] — random XOR/XNOR key-gate insertion (EPIC-style), the
//!   baseline every oracle-guided attack breaks quickly;
//! - [`Sarlock`] — SARLock point-function locking (Table 1 and the
//!   Fig. 1(a) error distribution);
//! - [`AntiSat`] — Anti-SAT complementary blocks, a scheme whose correct
//!   keys are non-unique by design;
//! - [`LutLock`] — two-stage LUT insertion (Table 2), which bloats the
//!   SAT attack's miter instead of its iteration count.
//!
//! Every scheme adds `keyinput{i}` ports to a pristine netlist and returns
//! a [`LockedCircuit`]: the locked netlist together with a correct
//! [`Key`]. [`LockScheme::lock`] makes the *requested* key correct;
//! [`LockScheme::lock_random`] samples one. Locking is functionally
//! invisible under the correct key — a property the test suites verify
//! exhaustively on small circuits.
//!
//! The pre-0.2 free functions (`lock_rll`, `lock_sarlock`,
//! `lock_sarlock_with_key`, `lock_antisat`, `lock_lut`) remain as
//! deprecated shims for one release; new code constructs scheme values.
//! [`lock_sarlock_on_signals`] (the defense-direction variant reading
//! internal nets) stays a free function: it is parameterized by node ids,
//! which no netlist-independent scheme value can carry.
//!
//! # Examples
//!
//! ```
//! use polykey_netlist::{GateKind, Netlist, Simulator};
//! use polykey_locking::{Key, LockScheme, Sarlock};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut nl = Netlist::new("toy");
//! let a = nl.add_input("a")?;
//! let b = nl.add_input("b")?;
//! let y = nl.add_gate("y", GateKind::And, &[a, b])?;
//! nl.mark_output(y)?;
//!
//! let locked = Sarlock::new(2).lock(&nl, &Key::from_u64(0b01, 2))?;
//! assert_eq!(locked.netlist.key_inputs().len(), 2);
//!
//! // The correct key restores the original function.
//! let mut sim = Simulator::new(&locked.netlist)?;
//! assert_eq!(sim.eval(&[true, true], locked.key.bits()), vec![true]);
//! assert_eq!(sim.eval(&[true, false], locked.key.bits()), vec![false]);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod antisat;
mod common;
mod lut;
mod rll;
mod sarlock;
mod scheme;

pub use antisat::{AntiSat, AntisatConfig};
pub use common::{Key, LockError, LockedCircuit};
pub use lut::{LutConfig, LutLock};
pub use rll::Rll;
pub use sarlock::{lock_sarlock_on_signals, Sarlock, SarlockConfig};
pub use scheme::LockScheme;

#[allow(deprecated)]
pub use antisat::lock_antisat;
#[allow(deprecated)]
pub use lut::lock_lut;
#[allow(deprecated)]
pub use rll::lock_rll;
#[allow(deprecated)]
pub use sarlock::{lock_sarlock, lock_sarlock_with_key};
