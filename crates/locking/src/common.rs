//! Key material and shared locking-scheme plumbing.

use std::fmt;

use rand::{Rng, RngExt};

use polykey_netlist::{Netlist, NetlistError};

/// A key: one boolean per key input, in key-input declaration order.
///
/// # Examples
///
/// ```
/// use polykey_locking::Key;
///
/// let k = Key::from_u64(0b101, 3);
/// assert_eq!(k.len(), 3);
/// assert!(k.bit(0) && !k.bit(1) && k.bit(2));
/// assert_eq!(k.to_string(), "101");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct Key {
    bits: Vec<bool>,
}

impl Key {
    /// Creates a key from explicit bits (index 0 = first key input).
    pub fn new(bits: Vec<bool>) -> Key {
        Key { bits }
    }

    /// Creates a key from the low `len` bits of `value` (bit `i` of the
    /// integer becomes key bit `i`).
    ///
    /// # Panics
    ///
    /// Panics if `len > 64`.
    pub fn from_u64(value: u64, len: usize) -> Key {
        assert!(len <= 64);
        Key { bits: (0..len).map(|i| value >> i & 1 == 1).collect() }
    }

    /// Samples a uniformly random key of the given width.
    pub fn random<R: Rng + ?Sized>(len: usize, rng: &mut R) -> Key {
        Key { bits: (0..len).map(|_| rng.random_bool(0.5)).collect() }
    }

    /// The key width in bits.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// True for the zero-width key.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// The value of bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bit(&self, i: usize) -> bool {
        self.bits[i]
    }

    /// The bits as a slice (index 0 = first key input).
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// The key as an integer, if it fits in 64 bits.
    pub fn to_u64(&self) -> Option<u64> {
        if self.bits.len() > 64 {
            return None;
        }
        Some(self.bits.iter().enumerate().fold(0, |acc, (i, &b)| acc | (u64::from(b) << i)))
    }

    /// Concatenates two keys (`self` bits first).
    pub fn concat(&self, other: &Key) -> Key {
        let mut bits = self.bits.clone();
        bits.extend_from_slice(&other.bits);
        Key { bits }
    }
}

impl fmt::Display for Key {
    /// Bit 0 first (matching key-input declaration order).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &b in &self.bits {
            write!(f, "{}", u8::from(b))?;
        }
        Ok(())
    }
}

impl From<Vec<bool>> for Key {
    fn from(bits: Vec<bool>) -> Key {
        Key { bits }
    }
}

/// A locked netlist together with its correct key.
#[derive(Clone, Debug)]
pub struct LockedCircuit {
    /// The locked netlist: the original plus key inputs and key logic.
    pub netlist: Netlist,
    /// The correct key (one of possibly several functionally correct keys).
    pub key: Key,
}

/// Errors raised by locking schemes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockError {
    /// The input netlist already carries key inputs; schemes lock pristine
    /// netlists (stacking is out of scope).
    AlreadyLocked {
        /// The design name.
        name: String,
    },
    /// The requested key width cannot be realized on this netlist.
    KeyTooWide {
        /// Requested width.
        requested: usize,
        /// Available capacity (meaning depends on the scheme).
        available: usize,
    },
    /// A key of the wrong width was passed to [`crate::LockScheme::lock`].
    KeyWidthMismatch {
        /// The scheme's key width on this netlist.
        expected: usize,
        /// The width of the key that was passed.
        got: usize,
    },
    /// The netlist is too small for the scheme's structural needs.
    TooSmall {
        /// What was missing.
        what: &'static str,
    },
    /// Structural failure while editing the netlist.
    Netlist(NetlistError),
}

impl fmt::Display for LockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockError::AlreadyLocked { name } => {
                write!(f, "netlist `{name}` already has key inputs")
            }
            LockError::KeyTooWide { requested, available } => {
                write!(f, "key width {requested} exceeds capacity {available}")
            }
            LockError::KeyWidthMismatch { expected, got } => {
                write!(f, "key has {got} bits, scheme produces {expected}")
            }
            LockError::TooSmall { what } => write!(f, "netlist too small: needs {what}"),
            LockError::Netlist(e) => write!(f, "netlist error: {e}"),
        }
    }
}

impl std::error::Error for LockError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LockError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for LockError {
    fn from(e: NetlistError) -> LockError {
        LockError::Netlist(e)
    }
}

/// Rejects netlists that already have key inputs.
pub(crate) fn require_unlocked(netlist: &Netlist) -> Result<(), LockError> {
    if netlist.key_inputs().is_empty() {
        Ok(())
    } else {
        Err(LockError::AlreadyLocked { name: netlist.name().to_string() })
    }
}

/// The next available `keyinput{i}` name.
pub(crate) fn key_name(netlist: &Netlist, index: usize) -> String {
    let mut i = index;
    loop {
        let name = format!("keyinput{i}");
        if netlist.find(&name).is_none() {
            return name;
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn key_round_trips() {
        let k = Key::from_u64(0b1101, 4);
        assert_eq!(k.to_u64(), Some(0b1101));
        assert_eq!(k.bits(), &[true, false, true, true]);
        assert_eq!(k.to_string(), "1011", "display is bit0-first");
        assert_eq!(Key::new(vec![true, false]).len(), 2);
    }

    #[test]
    fn key_concat() {
        let a = Key::from_u64(0b01, 2);
        let b = Key::from_u64(0b1, 1);
        let c = a.concat(&b);
        assert_eq!(c.len(), 3);
        assert_eq!(c.to_u64(), Some(0b101));
    }

    #[test]
    fn random_keys_are_deterministic_per_seed() {
        let mut r1 = rand::rngs::StdRng::seed_from_u64(1);
        let mut r2 = rand::rngs::StdRng::seed_from_u64(1);
        assert_eq!(Key::random(32, &mut r1), Key::random(32, &mut r2));
    }

    #[test]
    fn empty_key() {
        let k = Key::default();
        assert!(k.is_empty());
        assert_eq!(k.to_u64(), Some(0));
    }

    #[test]
    fn oversized_key_has_no_u64() {
        let k = Key::new(vec![false; 65]);
        assert_eq!(k.to_u64(), None);
    }
}
