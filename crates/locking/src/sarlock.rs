//! SARLock: SAT-attack-resistant point-function locking (Yasin et al.,
//! HOST'16).
//!
//! A comparator raises a flip signal when the observed inputs equal the
//! applied key *and* the key is not the correct one; the flip is XOR-ed into
//! one output. Every wrong key corrupts exactly one input pattern, so each
//! SAT-attack iteration can eliminate only one key and the number of
//! distinguishing input patterns grows as `2^|K|` — the error profile shown
//! in Fig. 1(a) of the paper.

use rand::Rng;

use polykey_netlist::{GateKind, Netlist, NodeId};

use crate::common::{key_name, require_unlocked, Key, LockError, LockedCircuit};
use crate::scheme::{require_key_width, LockScheme};

/// SARLock point-function locking as a [`LockScheme`].
///
/// The comparator reads `key_bits` primary inputs (the first ones unless
/// [`Sarlock::compare_inputs`] overrides the choice) and corrupts one
/// output for every wrong key at exactly one input pattern.
///
/// # Examples
///
/// ```
/// use polykey_locking::{Key, LockScheme, Sarlock};
/// use polykey_netlist::{GateKind, Netlist};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut nl = Netlist::new("t");
/// let a = nl.add_input("a")?;
/// let b = nl.add_input("b")?;
/// let y = nl.add_gate("y", GateKind::And, &[a, b])?;
/// nl.mark_output(y)?;
///
/// let locked = Sarlock::new(2).lock(&nl, &Key::from_u64(0b10, 2))?;
/// assert_eq!(locked.netlist.key_inputs().len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
#[must_use]
pub struct Sarlock {
    /// Key width; must not exceed the number of primary inputs.
    pub key_bits: usize,
    /// Indices (into the input list) of the inputs wired to the comparator.
    /// Defaults to the first `key_bits` inputs.
    pub compare_inputs: Option<Vec<usize>>,
    /// Index (into the output list) of the output to corrupt. Defaults to
    /// the last output outside the comparator's fanin.
    pub target_output: Option<usize>,
}

impl Sarlock {
    /// A SARLock scheme with the given key width and default port choices.
    pub fn new(key_bits: usize) -> Sarlock {
        Sarlock { key_bits, compare_inputs: None, target_output: None }
    }

    /// Overrides the comparator inputs (indices into the input list).
    pub fn with_compare_inputs(mut self, compare_inputs: Vec<usize>) -> Sarlock {
        self.compare_inputs = Some(compare_inputs);
        self
    }
}

impl Default for Sarlock {
    /// A 4-bit key on the first four inputs.
    fn default() -> Sarlock {
        Sarlock::new(4)
    }
}

impl From<&SarlockConfig> for Sarlock {
    fn from(config: &SarlockConfig) -> Sarlock {
        Sarlock {
            key_bits: config.key_bits,
            compare_inputs: config.compare_inputs.clone(),
            target_output: config.target_output,
        }
    }
}

impl LockScheme for Sarlock {
    fn name(&self) -> &str {
        "sarlock"
    }

    fn key_len(&self, _netlist: &Netlist) -> usize {
        self.key_bits
    }

    fn lock(&self, netlist: &Netlist, key: &Key) -> Result<LockedCircuit, LockError> {
        require_key_width(self.key_bits, key)?;
        let kw = self.key_bits;
        if kw > netlist.inputs().len() {
            return Err(LockError::KeyTooWide {
                requested: kw,
                available: netlist.inputs().len(),
            });
        }
        let compare: Vec<usize> = match &self.compare_inputs {
            Some(list) => {
                if list.len() != kw || list.iter().any(|&i| i >= netlist.inputs().len()) {
                    return Err(LockError::KeyTooWide {
                        requested: list.len(),
                        available: netlist.inputs().len(),
                    });
                }
                list.clone()
            }
            None => (0..kw).collect(),
        };
        let signals: Vec<NodeId> = compare.iter().map(|&i| netlist.inputs()[i]).collect();
        lock_sarlock_on_signals(netlist, &signals, key, self.target_output)
    }
}

/// Configuration for the deprecated [`lock_sarlock`] shims; new code uses
/// the [`Sarlock`] scheme value directly.
#[derive(Clone, Debug)]
#[must_use]
pub struct SarlockConfig {
    /// Key width; must not exceed the number of primary inputs.
    pub key_bits: usize,
    /// Indices (into the input list) of the inputs wired to the comparator.
    /// Defaults to the first `key_bits` inputs.
    pub compare_inputs: Option<Vec<usize>>,
    /// Index (into the output list) of the output to corrupt. Defaults to
    /// the last output.
    pub target_output: Option<usize>,
}

impl SarlockConfig {
    /// A default configuration with the given key width.
    pub fn new(key_bits: usize) -> SarlockConfig {
        SarlockConfig { key_bits, compare_inputs: None, target_output: None }
    }
}

/// Locks `netlist` with SARLock using a random correct key.
///
/// # Errors
///
/// - [`LockError::AlreadyLocked`] if the netlist already has key inputs.
/// - [`LockError::KeyTooWide`] if `key_bits` exceeds the input count.
/// - [`LockError::TooSmall`] if the netlist has no outputs.
#[deprecated(
    since = "0.2.0",
    note = "use `Sarlock::new(key_bits)` with `LockScheme::lock_random`"
)]
pub fn lock_sarlock<R: Rng>(
    netlist: &Netlist,
    config: &SarlockConfig,
    rng: &mut R,
) -> Result<LockedCircuit, LockError> {
    let key = Key::random(config.key_bits, rng);
    Sarlock::from(config).lock(netlist, &key)
}

/// Locks `netlist` with SARLock using an explicit correct key.
///
/// # Errors
///
/// As for [`lock_sarlock`], plus [`LockError::KeyTooWide`] if the key width
/// disagrees with `config.key_bits`.
#[deprecated(since = "0.2.0", note = "use `Sarlock::new(key_bits)` with `LockScheme::lock`")]
pub fn lock_sarlock_with_key(
    netlist: &Netlist,
    config: &SarlockConfig,
    key: &Key,
) -> Result<LockedCircuit, LockError> {
    if key.len() != config.key_bits {
        // Preserve the historical error shape of the shim.
        return Err(LockError::KeyTooWide { requested: key.len(), available: config.key_bits });
    }
    Sarlock::from(config).lock(netlist, key)
}

/// Locks `netlist` with a SARLock-style point function whose comparator
/// reads *arbitrary nets* — internal signals included.
///
/// This is the defense direction the paper's conclusion calls for: when
/// the comparator observes internal nets instead of primary inputs,
/// pinning `N` input ports no longer bisects the comparator's domain, so
/// input-space splitting loses its `2^N` leverage (measured by the
/// `defense_probe` benchmark binary).
///
/// # Errors
///
/// - [`LockError::AlreadyLocked`] if the netlist already has key inputs.
/// - [`LockError::KeyTooWide`] if the key width disagrees with the signal
///   count.
/// - [`LockError::TooSmall`] for zero-width keys, missing outputs, invalid
///   signal ids, or when every output lies in the fanout cone of a
///   comparator signal (which would create a combinational cycle).
pub fn lock_sarlock_on_signals(
    netlist: &Netlist,
    signals: &[NodeId],
    key: &Key,
    target_output: Option<usize>,
) -> Result<LockedCircuit, LockError> {
    require_unlocked(netlist)?;
    let kw = signals.len();
    if key.len() != kw {
        return Err(LockError::KeyTooWide { requested: key.len(), available: kw });
    }
    if kw == 0 {
        return Err(LockError::TooSmall { what: "a non-zero key width" });
    }
    if netlist.outputs().is_empty() {
        return Err(LockError::TooSmall { what: "at least one output" });
    }
    for &s in signals {
        if s.index() >= netlist.num_nodes() {
            return Err(LockError::Netlist(polykey_netlist::NetlistError::InvalidNode(
                s.index() as u32,
            )));
        }
    }
    // The flip XOR is inserted after the target output; the comparator
    // signals must not read that output, or splicing would form a cycle.
    let target_output = match target_output {
        Some(t) if t >= netlist.outputs().len() => {
            return Err(LockError::TooSmall { what: "a valid target output index" });
        }
        Some(t) => t,
        None => {
            // Pick the last output whose fanout cone contains no signal.
            let safe = netlist.outputs().iter().enumerate().rev().find(|(_, &o)| {
                let cone = polykey_netlist::analysis::transitive_fanout(netlist, &[o]);
                signals.iter().all(|s| !cone[s.index()])
            });
            match safe {
                Some((t, _)) => t,
                None => {
                    return Err(LockError::TooSmall {
                        what: "an output outside the comparator signals' fanin",
                    })
                }
            }
        }
    };
    {
        let out_node = netlist.outputs()[target_output];
        let cone = polykey_netlist::analysis::transitive_fanout(netlist, &[out_node]);
        if signals.iter().any(|s| cone[s.index()]) {
            return Err(LockError::TooSmall {
                what: "comparator signals outside the corrupted output's fanout",
            });
        }
    }

    let mut locked = netlist.clone();
    locked.set_name(format!("{}_sarlock{}", netlist.name(), kw));

    // Key inputs.
    let keys: Vec<NodeId> = (0..kw)
        .map(|i| {
            let name = key_name(&locked, i);
            locked.add_key_input(name)
        })
        .collect::<Result<_, _>>()?;

    // match = AND_i Xnor(s_i, k_i): true when the observed signals equal
    // the applied key.
    let mut eq_bits = Vec::with_capacity(kw);
    for (j, &sig) in signals.iter().enumerate() {
        let eq = locked.add_gate(format!("sar_eq{j}"), GateKind::Xnor, &[sig, keys[j]])?;
        eq_bits.push(eq);
    }
    let matches = locked.add_gate("sar_match", GateKind::And, &eq_bits)?;

    // wrong = OR_i (k_i ⊕ k*_i): true when the applied key is not correct.
    // The correct key is hardwired via per-bit polarity: a comparator bit
    // that is true when k_i ≠ k*_i, built without constant nodes so the
    // masked structure stays gate-only, as in the published netlists.
    let mut diff_bits = Vec::with_capacity(kw);
    for (j, &k) in keys.iter().enumerate() {
        let diff = if key.bit(j) {
            // k*_j = 1: differs when k_j = 0.
            locked.add_gate(format!("sar_diff{j}"), GateKind::Not, &[k])?
        } else {
            // k*_j = 0: differs when k_j = 1.
            locked.add_gate(format!("sar_diff{j}"), GateKind::Buf, &[k])?
        };
        diff_bits.push(diff);
    }
    let wrong = locked.add_gate("sar_wrong", GateKind::Or, &diff_bits)?;

    // flip = match ∧ wrong, XOR-ed into the target output.
    let flip = locked.add_gate("sar_flip", GateKind::And, &[matches, wrong])?;
    let out_node = locked.outputs()[target_output];
    locked.insert_after(out_node, "sar_out", GateKind::Xor, &[flip])?;

    Ok(LockedCircuit { netlist: locked, key: key.clone() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use polykey_netlist::{bits_of, Simulator};
    use rand::SeedableRng;

    /// 3-input sample circuit: y = majority(a, b, c).
    fn majority3() -> Netlist {
        let mut nl = Netlist::new("maj3");
        let a = nl.add_input("a").unwrap();
        let b = nl.add_input("b").unwrap();
        let c = nl.add_input("c").unwrap();
        let ab = nl.add_gate("ab", GateKind::And, &[a, b]).unwrap();
        let ac = nl.add_gate("ac", GateKind::And, &[a, c]).unwrap();
        let bc = nl.add_gate("bc", GateKind::And, &[b, c]).unwrap();
        let y = nl.add_gate("y", GateKind::Or, &[ab, ac, bc]).unwrap();
        nl.mark_output(y).unwrap();
        nl
    }

    /// Builds the error-distribution table of Fig. 1(a): `table[input][key]`
    /// is true when the locked circuit errs.
    fn error_table(nl: &Netlist, locked: &LockedCircuit) -> Vec<Vec<bool>> {
        let ni = nl.inputs().len();
        let kw = locked.netlist.key_inputs().len();
        let mut orig = Simulator::new(nl).unwrap();
        let mut lsim = Simulator::new(&locked.netlist).unwrap();
        (0..1u64 << ni)
            .map(|i| {
                let ibits = bits_of(i, ni);
                let want = orig.eval(&ibits, &[]);
                (0..1u64 << kw).map(|k| lsim.eval(&ibits, &bits_of(k, kw)) != want).collect()
            })
            .collect()
    }

    #[test]
    fn fig1a_error_profile() {
        // |I| = |K| = 3, correct key 101 (bit0-first: true, false, true).
        let nl = majority3();
        let key = Key::new(vec![true, false, true]);
        let locked = Sarlock::new(3).lock(&nl, &key).unwrap();
        let table = error_table(&nl, &locked);
        let k_star = key.to_u64().unwrap();
        for (i, row) in table.iter().enumerate() {
            for (k, &errs) in row.iter().enumerate() {
                let expected = i as u64 == k as u64 && k as u64 != k_star;
                assert_eq!(errs, expected, "error profile at input {i:03b}, key {k:03b}");
            }
        }
    }

    #[test]
    fn correct_key_unlocks() {
        let nl = majority3();
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let locked = Sarlock::new(3).lock_random(&nl, &mut rng).unwrap();
        let mut orig = Simulator::new(&nl).unwrap();
        let mut lsim = Simulator::new(&locked.netlist).unwrap();
        for v in 0..8u64 {
            let bits = bits_of(v, 3);
            assert_eq!(lsim.eval(&bits, locked.key.bits()), orig.eval(&bits, &[]));
        }
    }

    #[test]
    fn every_wrong_key_errs_exactly_once() {
        let nl = majority3();
        let key = Key::new(vec![false, true, false]);
        let locked = Sarlock::new(3).lock(&nl, &key).unwrap();
        let table = error_table(&nl, &locked);
        let k_star = key.to_u64().unwrap() as usize;
        for k in 0..8usize {
            let errors: usize = table.iter().filter(|row| row[k]).count();
            if k == k_star {
                assert_eq!(errors, 0, "correct key must never err");
            } else {
                assert_eq!(errors, 1, "wrong key {k:03b} must err exactly once");
            }
        }
    }

    #[test]
    fn key_wider_than_inputs_rejected() {
        let nl = majority3();
        assert!(matches!(
            Sarlock::new(5).lock(&nl, &Key::from_u64(0, 5)),
            Err(LockError::KeyTooWide { requested: 5, available: 3 })
        ));
    }

    #[test]
    fn custom_compare_inputs() {
        let nl = majority3();
        let key = Key::from_u64(0b10, 2);
        // Compare on (c, a).
        let locked = Sarlock::new(2).with_compare_inputs(vec![2, 0]).lock(&nl, &key).unwrap();
        locked.netlist.validate().unwrap();
        // Correct key still unlocks.
        let mut orig = Simulator::new(&nl).unwrap();
        let mut lsim = Simulator::new(&locked.netlist).unwrap();
        for v in 0..8u64 {
            let bits = bits_of(v, 3);
            assert_eq!(lsim.eval(&bits, locked.key.bits()), orig.eval(&bits, &[]));
        }
    }

    #[test]
    fn zero_width_key_rejected() {
        let nl = majority3();
        let key = Key::default();
        assert!(matches!(Sarlock::new(0).lock(&nl, &key), Err(LockError::TooSmall { .. })));
    }

    #[test]
    fn structure_is_valid_and_sized() {
        let nl = majority3();
        let key = Key::from_u64(0b011, 3);
        let locked = Sarlock::new(3).lock(&nl, &key).unwrap();
        locked.netlist.validate().unwrap();
        // 3 Xnor + 3 diff + match + wrong + flip + output Xor = 10 extra.
        assert_eq!(locked.netlist.num_gates(), nl.num_gates() + 10);
        assert_eq!(locked.netlist.outputs().len(), nl.outputs().len());
    }

    #[allow(deprecated)]
    mod shims {
        use super::*;

        #[test]
        fn with_key_shim_matches_scheme_and_checks_width() {
            let nl = majority3();
            let key = Key::from_u64(0b110, 3);
            let via_shim = lock_sarlock_with_key(&nl, &SarlockConfig::new(3), &key).unwrap();
            let via_scheme = Sarlock::new(3).lock(&nl, &key).unwrap();
            assert_eq!(via_shim.key, via_scheme.key);
            assert_eq!(via_shim.netlist.num_nodes(), via_scheme.netlist.num_nodes());
            // Historical error shape on width mismatch.
            assert!(matches!(
                lock_sarlock_with_key(&nl, &SarlockConfig::new(3), &Key::from_u64(0, 2)),
                Err(LockError::KeyTooWide { requested: 2, available: 3 })
            ));
        }
    }
}

#[cfg(test)]
mod internal_signal_tests {
    use super::*;
    use polykey_netlist::{bits_of, Simulator};

    /// Two-output circuit with internal structure to tap.
    fn sample() -> Netlist {
        let mut nl = Netlist::new("s");
        let a = nl.add_input("a").unwrap();
        let b = nl.add_input("b").unwrap();
        let c = nl.add_input("c").unwrap();
        let d = nl.add_input("d").unwrap();
        let g1 = nl.add_gate("g1", GateKind::And, &[a, b]).unwrap();
        let g2 = nl.add_gate("g2", GateKind::Xor, &[c, d]).unwrap();
        let g3 = nl.add_gate("g3", GateKind::Or, &[g1, g2]).unwrap();
        let g4 = nl.add_gate("g4", GateKind::Nand, &[g1, g2]).unwrap();
        nl.mark_output(g3).unwrap();
        nl.mark_output(g4).unwrap();
        nl
    }

    #[test]
    fn internal_comparator_unlocks_with_correct_key() {
        let nl = sample();
        let g1 = nl.find("g1").unwrap();
        let g2 = nl.find("g2").unwrap();
        let key = Key::from_u64(0b10, 2);
        let locked = lock_sarlock_on_signals(&nl, &[g1, g2], &key, None).unwrap();
        locked.netlist.validate().unwrap();
        let mut orig = Simulator::new(&nl).unwrap();
        let mut lsim = Simulator::new(&locked.netlist).unwrap();
        for v in 0..16u64 {
            let bits = bits_of(v, 4);
            assert_eq!(lsim.eval(&bits, key.bits()), orig.eval(&bits, &[]), "input {v:04b}");
        }
    }

    #[test]
    fn internal_comparator_corrupts_some_wrong_key() {
        let nl = sample();
        let g1 = nl.find("g1").unwrap();
        let g2 = nl.find("g2").unwrap();
        let key = Key::from_u64(0b00, 2);
        let locked = lock_sarlock_on_signals(&nl, &[g1, g2], &key, None).unwrap();
        let mut orig = Simulator::new(&nl).unwrap();
        let mut lsim = Simulator::new(&locked.netlist).unwrap();
        // The wrong key (1,1) flips the output whenever (g1,g2) = (1,1).
        let wrong = [true, true];
        let corrupts = (0..16u64).any(|v| {
            let bits = bits_of(v, 4);
            lsim.eval(&bits, &wrong) != orig.eval(&bits, &[])
        });
        assert!(corrupts);
    }

    #[test]
    fn cycle_risk_rejected() {
        // Tapping a signal downstream of every output is impossible here
        // (outputs are sinks), but tapping the *output node itself* while
        // targeting it must be rejected.
        let nl = sample();
        let g3 = nl.find("g3").unwrap();
        let key = Key::from_u64(0, 1);
        let err = lock_sarlock_on_signals(&nl, &[g3], &key, Some(0)).unwrap_err();
        assert!(matches!(err, LockError::TooSmall { .. }));
        // Without a forced target the locker picks the other output.
        let locked = lock_sarlock_on_signals(&nl, &[g3], &key, None).unwrap();
        locked.netlist.validate().unwrap();
    }

    #[test]
    fn key_width_must_match_signals() {
        let nl = sample();
        let g1 = nl.find("g1").unwrap();
        let key = Key::from_u64(0, 2);
        assert!(matches!(
            lock_sarlock_on_signals(&nl, &[g1], &key, None),
            Err(LockError::KeyTooWide { .. })
        ));
    }
}
