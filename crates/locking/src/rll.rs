//! Random logic locking (RLL): XOR/XNOR key-gate insertion.
//!
//! The original EPIC-style scheme: pick random wires and splice a key gate
//! into each. An XOR key gate is transparent when its key bit is 0, an XNOR
//! key gate when its key bit is 1, so the inserted polarity hides the
//! correct key value from casual inspection.

use rand::{Rng, RngExt};

use polykey_netlist::{GateKind, Netlist, NodeId};

use crate::common::{key_name, require_unlocked, Key, LockError, LockedCircuit};

/// Locks `netlist` by inserting `key_bits` XOR/XNOR key gates after random
/// internal gates.
///
/// # Errors
///
/// - [`LockError::AlreadyLocked`] if the netlist already has key inputs.
/// - [`LockError::KeyTooWide`] if there are fewer internal gates than
///   requested key bits.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use polykey_netlist::{GateKind, Netlist};
/// let mut nl = Netlist::new("t");
/// let a = nl.add_input("a")?;
/// let b = nl.add_input("b")?;
/// let g = nl.add_gate("g", GateKind::And, &[a, b])?;
/// nl.mark_output(g)?;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let locked = polykey_locking::lock_rll(&nl, 1, &mut rng)?;
/// assert_eq!(locked.netlist.key_inputs().len(), 1);
/// # Ok(())
/// # }
/// ```
pub fn lock_rll<R: Rng>(
    netlist: &Netlist,
    key_bits: usize,
    rng: &mut R,
) -> Result<LockedCircuit, LockError> {
    require_unlocked(netlist)?;
    // Candidate wires: outputs of real gates (not inputs, not constants).
    let candidates: Vec<NodeId> = netlist
        .node_ids()
        .filter(|&id| {
            let kind = netlist.node(id).kind();
            !kind.is_input() && !matches!(kind, GateKind::Const(_))
        })
        .collect();
    if candidates.len() < key_bits {
        return Err(LockError::KeyTooWide {
            requested: key_bits,
            available: candidates.len(),
        });
    }

    // Sample distinct targets (partial Fisher–Yates).
    let mut pool = candidates;
    let mut targets = Vec::with_capacity(key_bits);
    for _ in 0..key_bits {
        let i = rng.random_range(0..pool.len());
        targets.push(pool.swap_remove(i));
    }

    let mut locked = netlist.clone();
    locked.set_name(format!("{}_rll{}", netlist.name(), key_bits));
    let mut key_values = Vec::with_capacity(key_bits);
    for (i, &target) in targets.iter().enumerate() {
        let use_xnor = rng.random_bool(0.5);
        let kname = key_name(&locked, i);
        let k = locked.add_key_input(kname)?;
        let gate_kind = if use_xnor { GateKind::Xnor } else { GateKind::Xor };
        let gname = format!("rll_{}_{}", if use_xnor { "xnor" } else { "xor" }, i);
        locked.insert_after(target, gname, gate_kind, &[k])?;
        // Xor(x, 0) = x and Xnor(x, 1) = x: transparent key values.
        key_values.push(use_xnor);
    }
    Ok(LockedCircuit { netlist: locked, key: Key::new(key_values) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use polykey_netlist::{bits_of, Simulator};
    use rand::SeedableRng;

    fn sample() -> Netlist {
        let mut nl = Netlist::new("s");
        let a = nl.add_input("a").unwrap();
        let b = nl.add_input("b").unwrap();
        let c = nl.add_input("c").unwrap();
        let g1 = nl.add_gate("g1", GateKind::And, &[a, b]).unwrap();
        let g2 = nl.add_gate("g2", GateKind::Or, &[g1, c]).unwrap();
        let g3 = nl.add_gate("g3", GateKind::Xor, &[g1, g2]).unwrap();
        let g4 = nl.add_gate("g4", GateKind::Nand, &[g2, g3]).unwrap();
        nl.mark_output(g4).unwrap();
        nl
    }

    #[test]
    fn correct_key_restores_function() {
        let nl = sample();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let locked = lock_rll(&nl, 3, &mut rng).unwrap();
        assert_eq!(locked.netlist.key_inputs().len(), 3);
        assert_eq!(locked.netlist.inputs().len(), 3);

        let mut orig = Simulator::new(&nl).unwrap();
        let mut lsim = Simulator::new(&locked.netlist).unwrap();
        for v in 0..8u64 {
            let bits = bits_of(v, 3);
            assert_eq!(
                lsim.eval(&bits, locked.key.bits()),
                orig.eval(&bits, &[]),
                "correct key must unlock, pattern {v:b}"
            );
        }
    }

    #[test]
    fn some_wrong_key_corrupts() {
        let nl = sample();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let locked = lock_rll(&nl, 3, &mut rng).unwrap();
        // Flipping one key bit of an XOR/XNOR chain must change the function
        // somewhere (the key gate sits on a live wire).
        let mut wrong = locked.key.bits().to_vec();
        wrong[0] = !wrong[0];
        let mut orig = Simulator::new(&nl).unwrap();
        let mut lsim = Simulator::new(&locked.netlist).unwrap();
        let corrupts = (0..8u64).any(|v| {
            let bits = bits_of(v, 3);
            lsim.eval(&bits, &wrong) != orig.eval(&bits, &[])
        });
        assert!(corrupts, "flipped key bit must corrupt at least one pattern");
    }

    #[test]
    fn too_many_key_bits_rejected() {
        let nl = sample();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        assert!(matches!(
            lock_rll(&nl, 100, &mut rng),
            Err(LockError::KeyTooWide { available: 4, .. })
        ));
    }

    #[test]
    fn relocking_rejected() {
        let nl = sample();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let once = lock_rll(&nl, 2, &mut rng).unwrap();
        assert!(matches!(
            lock_rll(&once.netlist, 1, &mut rng),
            Err(LockError::AlreadyLocked { .. })
        ));
    }

    #[test]
    fn deterministic_for_seed() {
        let nl = sample();
        let mut r1 = rand::rngs::StdRng::seed_from_u64(5);
        let mut r2 = rand::rngs::StdRng::seed_from_u64(5);
        let l1 = lock_rll(&nl, 2, &mut r1).unwrap();
        let l2 = lock_rll(&nl, 2, &mut r2).unwrap();
        assert_eq!(l1.key, l2.key);
        assert_eq!(l1.netlist.num_nodes(), l2.netlist.num_nodes());
    }

    #[test]
    fn locked_netlist_validates() {
        let nl = sample();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let locked = lock_rll(&nl, 4, &mut rng).unwrap();
        locked.netlist.validate().unwrap();
        assert_eq!(locked.netlist.num_gates(), nl.num_gates() + 4);
    }
}
