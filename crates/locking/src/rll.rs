//! Random logic locking (RLL): XOR/XNOR key-gate insertion.
//!
//! The original EPIC-style scheme: pick random wires and splice a key gate
//! into each. An XOR key gate is transparent when its key bit is 0, an XNOR
//! key gate when its key bit is 1, so the inserted polarity hides the
//! correct key value from casual inspection.
//!
//! The scheme value is [`Rll`]; the free function [`lock_rll`] is a
//! deprecated shim kept for one release.

use rand::{Rng, RngExt};

use polykey_netlist::{GateKind, Netlist, NodeId};

use crate::common::{key_name, require_unlocked, Key, LockError, LockedCircuit};
use crate::scheme::{placement_rng, require_key_width, LockScheme};

/// Random logic locking: `key_bits` XOR/XNOR key gates spliced after
/// random internal wires (chosen by `seed`).
///
/// # Examples
///
/// ```
/// use polykey_locking::{Key, LockScheme, Rll};
/// use polykey_netlist::{GateKind, Netlist};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut nl = Netlist::new("t");
/// let a = nl.add_input("a")?;
/// let b = nl.add_input("b")?;
/// let g = nl.add_gate("g", GateKind::And, &[a, b])?;
/// nl.mark_output(g)?;
///
/// let scheme = Rll::new(1).with_seed(7);
/// let locked = scheme.lock(&nl, &Key::from_u64(1, 1))?;
/// assert_eq!(locked.netlist.key_inputs().len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
#[must_use]
pub struct Rll {
    /// Number of key gates to insert.
    pub key_bits: usize,
    /// Seed driving the wire selection (same seed ⇒ same placement).
    pub seed: u64,
}

impl Rll {
    /// An RLL scheme inserting `key_bits` key gates (placement seed 0).
    pub fn new(key_bits: usize) -> Rll {
        Rll { key_bits, seed: 0 }
    }

    /// Replaces the placement seed.
    pub fn with_seed(mut self, seed: u64) -> Rll {
        self.seed = seed;
        self
    }
}

impl Default for Rll {
    /// Eight key gates, placement seed 0.
    fn default() -> Rll {
        Rll::new(8)
    }
}

impl LockScheme for Rll {
    fn name(&self) -> &str {
        "rll"
    }

    fn key_len(&self, _netlist: &Netlist) -> usize {
        self.key_bits
    }

    fn lock(&self, netlist: &Netlist, key: &Key) -> Result<LockedCircuit, LockError> {
        require_key_width(self.key_bits, key)?;
        lock_rll_with(netlist, key, &mut placement_rng(self.seed))
    }
}

/// Inserts one XOR/XNOR key gate per key bit: placement from `rng`,
/// polarity from the key (bit 1 ⇒ XNOR, so the given key is transparent).
fn lock_rll_with(
    netlist: &Netlist,
    key: &Key,
    rng: &mut dyn Rng,
) -> Result<LockedCircuit, LockError> {
    require_unlocked(netlist)?;
    let key_bits = key.len();
    // Candidate wires: outputs of real gates (not inputs, not constants).
    let candidates: Vec<NodeId> = netlist
        .node_ids()
        .filter(|&id| {
            let kind = netlist.node(id).kind();
            !kind.is_input() && !matches!(kind, GateKind::Const(_))
        })
        .collect();
    if candidates.len() < key_bits {
        return Err(LockError::KeyTooWide { requested: key_bits, available: candidates.len() });
    }

    // Sample distinct targets (partial Fisher–Yates).
    let mut pool = candidates;
    let mut targets = Vec::with_capacity(key_bits);
    for _ in 0..key_bits {
        let i = rng.random_range(0..pool.len());
        targets.push(pool.swap_remove(i));
    }

    let mut locked = netlist.clone();
    locked.set_name(format!("{}_rll{}", netlist.name(), key_bits));
    for (i, &target) in targets.iter().enumerate() {
        // Xor(x, 0) = x and Xnor(x, 1) = x: the key bit picks the
        // transparent polarity.
        let use_xnor = key.bit(i);
        let kname = key_name(&locked, i);
        let k = locked.add_key_input(kname)?;
        let gate_kind = if use_xnor { GateKind::Xnor } else { GateKind::Xor };
        let gname = format!("rll_{}_{}", if use_xnor { "xnor" } else { "xor" }, i);
        locked.insert_after(target, gname, gate_kind, &[k])?;
    }
    Ok(LockedCircuit { netlist: locked, key: key.clone() })
}

/// Locks `netlist` by inserting `key_bits` XOR/XNOR key gates after random
/// internal gates, with a random correct key.
///
/// # Errors
///
/// - [`LockError::AlreadyLocked`] if the netlist already has key inputs.
/// - [`LockError::KeyTooWide`] if there are fewer internal gates than
///   requested key bits.
#[deprecated(
    since = "0.2.0",
    note = "use `Rll::new(key_bits).with_seed(..)` with `LockScheme::lock` or `lock_random`"
)]
pub fn lock_rll<R: Rng>(
    netlist: &Netlist,
    key_bits: usize,
    rng: &mut R,
) -> Result<LockedCircuit, LockError> {
    let key = Key::random(key_bits, rng);
    lock_rll_with(netlist, &key, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polykey_netlist::{bits_of, Simulator};

    fn sample() -> Netlist {
        let mut nl = Netlist::new("s");
        let a = nl.add_input("a").unwrap();
        let b = nl.add_input("b").unwrap();
        let c = nl.add_input("c").unwrap();
        let g1 = nl.add_gate("g1", GateKind::And, &[a, b]).unwrap();
        let g2 = nl.add_gate("g2", GateKind::Or, &[g1, c]).unwrap();
        let g3 = nl.add_gate("g3", GateKind::Xor, &[g1, g2]).unwrap();
        let g4 = nl.add_gate("g4", GateKind::Nand, &[g2, g3]).unwrap();
        nl.mark_output(g4).unwrap();
        nl
    }

    #[test]
    fn correct_key_restores_function() {
        let nl = sample();
        let locked = Rll::new(3).with_seed(11).lock(&nl, &Key::from_u64(0b101, 3)).unwrap();
        assert_eq!(locked.netlist.key_inputs().len(), 3);
        assert_eq!(locked.netlist.inputs().len(), 3);

        let mut orig = Simulator::new(&nl).unwrap();
        let mut lsim = Simulator::new(&locked.netlist).unwrap();
        for v in 0..8u64 {
            let bits = bits_of(v, 3);
            assert_eq!(
                lsim.eval(&bits, locked.key.bits()),
                orig.eval(&bits, &[]),
                "correct key must unlock, pattern {v:b}"
            );
        }
    }

    #[test]
    fn every_key_value_is_lockable() {
        // The polarity trick must make *any* requested key correct.
        let nl = sample();
        let scheme = Rll::new(3).with_seed(4);
        let mut orig = Simulator::new(&nl).unwrap();
        for k in 0..8u64 {
            let key = Key::from_u64(k, 3);
            let locked = scheme.lock(&nl, &key).unwrap();
            let mut lsim = Simulator::new(&locked.netlist).unwrap();
            for v in 0..8u64 {
                let bits = bits_of(v, 3);
                assert_eq!(
                    lsim.eval(&bits, key.bits()),
                    orig.eval(&bits, &[]),
                    "key {k:03b}, pattern {v:03b}"
                );
            }
        }
    }

    #[test]
    fn some_wrong_key_corrupts() {
        let nl = sample();
        let locked = Rll::new(3).with_seed(11).lock(&nl, &Key::from_u64(0b010, 3)).unwrap();
        // Flipping one key bit of an XOR/XNOR chain must change the function
        // somewhere (the key gate sits on a live wire).
        let mut wrong = locked.key.bits().to_vec();
        wrong[0] = !wrong[0];
        let mut orig = Simulator::new(&nl).unwrap();
        let mut lsim = Simulator::new(&locked.netlist).unwrap();
        let corrupts = (0..8u64).any(|v| {
            let bits = bits_of(v, 3);
            lsim.eval(&bits, &wrong) != orig.eval(&bits, &[])
        });
        assert!(corrupts, "flipped key bit must corrupt at least one pattern");
    }

    #[test]
    fn too_many_key_bits_rejected() {
        let nl = sample();
        assert!(matches!(
            Rll::new(100).lock(&nl, &Key::new(vec![false; 100])),
            Err(LockError::KeyTooWide { available: 4, .. })
        ));
    }

    #[test]
    fn relocking_rejected() {
        let nl = sample();
        let once = Rll::new(2).lock(&nl, &Key::from_u64(1, 2)).unwrap();
        assert!(matches!(
            Rll::new(1).lock(&once.netlist, &Key::from_u64(0, 1)),
            Err(LockError::AlreadyLocked { .. })
        ));
    }

    #[test]
    fn locked_netlist_validates() {
        let nl = sample();
        let locked = Rll::new(4).with_seed(3).lock(&nl, &Key::from_u64(6, 4)).unwrap();
        locked.netlist.validate().unwrap();
        assert_eq!(locked.netlist.num_gates(), nl.num_gates() + 4);
    }

    #[allow(deprecated)]
    mod shims {
        use super::*;
        use rand::SeedableRng;

        #[test]
        fn lock_rll_is_deterministic_per_seed_and_unlocks() {
            let nl = sample();
            let mut r1 = rand::rngs::StdRng::seed_from_u64(5);
            let mut r2 = rand::rngs::StdRng::seed_from_u64(5);
            let l1 = lock_rll(&nl, 2, &mut r1).unwrap();
            let l2 = lock_rll(&nl, 2, &mut r2).unwrap();
            assert_eq!(l1.key, l2.key);
            assert_eq!(l1.netlist.num_nodes(), l2.netlist.num_nodes());

            let mut orig = Simulator::new(&nl).unwrap();
            let mut lsim = Simulator::new(&l1.netlist).unwrap();
            for v in 0..8u64 {
                let bits = bits_of(v, 3);
                assert_eq!(lsim.eval(&bits, l1.key.bits()), orig.eval(&bits, &[]));
            }
        }
    }
}
