//! LUT-based insertion: reconfigurable-logic obfuscation (Chowdhury et al.,
//! ISCAS'21 — reference [6] of the paper).
//!
//! A two-stage tree of key-programmed look-up tables is spliced into a
//! wire: stage-1 LUTs read the protected wire plus tapped nets, and a
//! stage-2 LUT combines the stage-1 outputs with further taps. Each
//! `w`-input LUT contributes `2^w` key bits, so the paper's "14-input
//! 2-stage LUT" yields a key in the 140–160 bit range (the exact internal
//! decomposition is not published; see `DESIGN.md` §3). Every LUT is built
//! as a MUX tree over its key bits, which makes the per-iteration miter CNF
//! large — the property that slows the baseline SAT attack in Table 2.
//!
//! The scheme value is [`LutLock`]; the free function [`lock_lut`] is a
//! deprecated shim kept for one release.

use rand::{Rng, RngExt};

use polykey_netlist::analysis::{levels, transitive_fanout};
use polykey_netlist::{GateKind, Netlist, NodeId};

use crate::common::{key_name, require_unlocked, Key, LockError, LockedCircuit};
use crate::scheme::{placement_rng, require_key_width, LockScheme};

/// Two-stage LUT insertion as a [`LockScheme`].
///
/// The key bits are the LUT table entries. Per-entry polarity inverters
/// (fixed at lock time) make the *requested* key program the canonical
/// identity tables, so any key of the right width is a correct key for its
/// own locked circuit — while wrong keys reprogram the tables and corrupt
/// the function.
///
/// # Examples
///
/// ```
/// use polykey_locking::{Key, LockScheme, LutLock};
/// use polykey_netlist::{GateKind, Netlist};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut nl = Netlist::new("t");
/// let a = nl.add_input("a")?;
/// let b = nl.add_input("b")?;
/// let c = nl.add_input("c")?;
/// let g = nl.add_gate("g", GateKind::And, &[a, b])?;
/// let y = nl.add_gate("y", GateKind::Xor, &[g, c])?;
/// nl.mark_output(y)?;
///
/// let scheme = LutLock::new(vec![2], 0).with_seed(3);
/// assert_eq!(scheme.key_bits(), 4 + 2);
/// let locked = scheme.lock(&nl, &Key::from_u64(0b10_1100, 6))?;
/// assert_eq!(locked.netlist.key_inputs().len(), 6);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
#[must_use]
pub struct LutLock {
    /// Input widths of the stage-1 LUTs. Each reads the protected wire (for
    /// the first LUT) or tapped nets.
    pub stage1: Vec<usize>,
    /// Number of extra direct taps into the stage-2 LUT (its width is
    /// `stage1.len() + stage2_extra`).
    pub stage2_extra: usize,
    /// Seed driving wire and tap selection (same seed ⇒ same placement).
    pub seed: u64,
}

impl LutLock {
    /// A LUT scheme with the given stage-1 widths and stage-2 extra taps.
    pub fn new(stage1: Vec<usize>, stage2_extra: usize) -> LutLock {
        LutLock { stage1, stage2_extra, seed: 0 }
    }

    /// The paper's configuration: two 6-input stage-1 LUTs and a 4-input
    /// stage-2 LUT — a 14-input two-stage module with 144 key bits
    /// (64 + 64 + 16).
    pub fn paper() -> LutLock {
        LutLock::new(vec![6, 6], 2)
    }

    /// A scaled-down configuration for quick runs: two 3-input stage-1 LUTs
    /// and a 3-input stage-2 LUT (8 + 8 + 8 = 24 key bits, 7 tapped nets).
    pub fn small() -> LutLock {
        LutLock::new(vec![3, 3], 1)
    }

    /// Replaces the placement seed.
    pub fn with_seed(mut self, seed: u64) -> LutLock {
        self.seed = seed;
        self
    }

    /// Total key bits: `Σ 2^w` over stage-1 plus `2^(len+extra)` for
    /// stage 2.
    #[must_use]
    pub fn key_bits(&self) -> usize {
        let s1: usize = self.stage1.iter().map(|w| 1usize << w).sum();
        s1 + (1usize << (self.stage1.len() + self.stage2_extra))
    }

    /// Distinct circuit nets consumed by the module (the protected wire
    /// counts as one).
    #[must_use]
    pub fn module_inputs(&self) -> usize {
        self.stage1.iter().sum::<usize>() + self.stage2_extra
    }
}

impl Default for LutLock {
    /// The scaled-down [`LutLock::small`] configuration.
    fn default() -> LutLock {
        LutLock::small()
    }
}

impl From<&LutConfig> for LutLock {
    fn from(config: &LutConfig) -> LutLock {
        LutLock::new(config.stage1.clone(), config.stage2_extra)
    }
}

impl LockScheme for LutLock {
    fn name(&self) -> &str {
        "lut"
    }

    fn key_len(&self, _netlist: &Netlist) -> usize {
        self.key_bits()
    }

    fn lock(&self, netlist: &Netlist, key: &Key) -> Result<LockedCircuit, LockError> {
        require_key_width(self.key_bits(), key)?;
        lock_lut_with(
            netlist,
            &self.stage1,
            self.stage2_extra,
            key,
            &mut placement_rng(self.seed),
        )
    }
}

/// Configuration for the deprecated [`lock_lut`] shim; new code uses the
/// [`LutLock`] scheme value directly.
#[derive(Clone, Debug)]
#[must_use]
pub struct LutConfig {
    /// Input widths of the stage-1 LUTs. Each reads the protected wire (for
    /// the first LUT) or tapped nets.
    pub stage1: Vec<usize>,
    /// Number of extra direct taps into the stage-2 LUT (its width is
    /// `stage1.len() + stage2_extra`).
    pub stage2_extra: usize,
}

impl LutConfig {
    /// The paper's configuration (see [`LutLock::paper`]).
    pub fn paper() -> LutConfig {
        LutConfig { stage1: vec![6, 6], stage2_extra: 2 }
    }

    /// The scaled-down configuration (see [`LutLock::small`]).
    pub fn small() -> LutConfig {
        LutConfig { stage1: vec![3, 3], stage2_extra: 1 }
    }

    /// Total key bits: `Σ 2^w` over stage-1 plus `2^(len+extra)` for
    /// stage 2.
    pub fn key_bits(&self) -> usize {
        LutLock::from(self).key_bits()
    }

    /// Distinct circuit nets consumed by the module (the protected wire
    /// counts as one).
    pub fn module_inputs(&self) -> usize {
        LutLock::from(self).module_inputs()
    }
}

/// Locks `netlist` by splicing a two-stage LUT module into one wire, with
/// the table programmed so `key` is correct.
///
/// The canonical (correct-key) behavior configures the first stage-1 LUT
/// as an identity on the protected wire and the stage-2 LUT as an identity
/// on that LUT's output; the remaining table entries take the key's own
/// bits, so the key is fully used. Per-entry inverters reconcile the
/// requested key with the canonical tables.
fn lock_lut_with(
    netlist: &Netlist,
    stage1: &[usize],
    stage2_extra: usize,
    key: &Key,
    rng: &mut dyn Rng,
) -> Result<LockedCircuit, LockError> {
    require_unlocked(netlist)?;
    if stage1.is_empty() {
        return Err(LockError::TooSmall { what: "at least one stage-1 lut" });
    }
    let spec = LutLock { stage1: stage1.to_vec(), stage2_extra, seed: 0 };
    let taps_needed = spec.module_inputs() - 1; // protected wire is input 0

    // Choose a protected wire: an internal gate with enough nodes outside
    // its fanout cone to serve as taps.
    let gates: Vec<NodeId> = netlist
        .node_ids()
        .filter(|&id| {
            let kind = netlist.node(id).kind();
            !kind.is_input() && !matches!(kind, GateKind::Const(_))
        })
        .collect();
    if gates.is_empty() {
        return Err(LockError::TooSmall { what: "at least one internal gate" });
    }
    let mut order: Vec<NodeId> = gates.clone();
    // Deterministic shuffle driven by the placement RNG.
    for i in (1..order.len()).rev() {
        let j = rng.random_range(0..=i);
        order.swap(i, j);
    }
    // Prefer wires with small fanout cones (output-side cones): the LUT
    // module then dominates the key-controlled influence of the tapped
    // inputs, which is both how cone-replacement locking places modules and
    // what the paper's fan-out-cone analysis assumes. Stable sort keeps the
    // shuffled order within equal cone sizes.
    let cone_size: Vec<usize> = netlist
        .node_ids()
        .map(|id| transitive_fanout(netlist, &[id]).iter().filter(|&&b| b).count())
        .collect();
    order.sort_by_key(|id| cone_size[id.index()]);
    // Tap selection. The scheme is an N-*input* LUT module: its select
    // nets come from the input side of the design (the support of the cone
    // being replaced). Tapping primary inputs directly is the faithful
    // realization — and it is what makes the multi-key attack's
    // cofactoring fold the LUT tables when split ports are pinned. When a
    // design has too few inputs, fall back to the shallowest internal nets.
    let node_levels = levels(netlist)?;
    let mut chosen: Option<(NodeId, Vec<NodeId>)> = None;
    for &target in &order {
        let cone = transitive_fanout(netlist, &[target]);
        // Primary inputs are never in an internal gate's fanout cone, so
        // they are always cycle-safe taps.
        let mut candidates: Vec<NodeId> = netlist.inputs().to_vec();
        if candidates.len() < taps_needed {
            // Fall back to shallow cycle-safe internal nets.
            let mut extra: Vec<NodeId> = netlist
                .node_ids()
                .filter(|&id| {
                    !cone[id.index()]
                        && id != target
                        && !netlist.node(id).kind().is_input()
                        && !matches!(netlist.node(id).kind(), GateKind::Const(_))
                })
                .collect();
            extra.sort_by_key(|id| node_levels[id.index()]);
            candidates.extend(extra);
        }
        if candidates.len() < taps_needed {
            continue;
        }
        candidates.truncate(taps_needed.max(netlist.inputs().len()));
        // Sample distinct taps.
        let mut taps = Vec::with_capacity(taps_needed);
        for _ in 0..taps_needed {
            let i = rng.random_range(0..candidates.len());
            taps.push(candidates.swap_remove(i));
        }
        chosen = Some((target, taps));
        break;
    }
    let (target, taps) = chosen
        .ok_or(LockError::TooSmall { what: "a wire with enough cycle-free tap candidates" })?;

    let mut locked = netlist.clone();
    locked.set_name(format!("{}_lut{}", netlist.name(), spec.key_bits()));

    // Splice preparation: insert a buffer after the protected wire FIRST, so
    // every *original* consumer reads the buffer. The LUT module (built
    // next) reads the wire directly; re-pointing the buffer at the module
    // output afterwards closes the splice without redirecting the module's
    // own select inputs (which would form a combinational cycle).
    let splice_buf = {
        let name = format!("{}_spliced", locked.node_name(target));
        locked.insert_after(target, name, GateKind::Buf, &[])?
    };

    // Allocate all key inputs up front, stage-1 tables first.
    let total_keys = spec.key_bits();
    let key_nodes: Vec<NodeId> = (0..total_keys)
        .map(|i| {
            let name = key_name(&locked, i);
            locked.add_key_input(name)
        })
        .collect::<Result<_, _>>()?;

    // Canonical (correct-key) table: LUT 0 of stage 1 = identity on its
    // top select bit (the protected wire, wired to the MSB so it feeds
    // only the tree root); other stage-1 LUTs take the key's own bits;
    // stage-2 = identity on select bit 0 (= LUT 0's output).
    let mut canonical: Vec<bool> = (0..total_keys).map(|i| key.bit(i)).collect();
    {
        let w0 = stage1[0];
        for (idx, slot) in canonical.iter_mut().enumerate().take(1usize << w0) {
            *slot = idx >> (w0 - 1) & 1 == 1; // table[i] = MSB of i
        }
        let s1_total: usize = stage1.iter().map(|w| 1usize << w).sum();
        let w2 = stage1.len() + stage2_extra;
        for idx in 0..(1usize << w2) {
            canonical[s1_total + idx] = idx & 1 == 1;
        }
    }

    // Table-entry drivers: where the requested key bit already equals the
    // canonical entry the key input drives the entry directly; elsewhere a
    // fixed inverter reconciles them, so the requested key programs the
    // canonical tables exactly.
    let entries: Vec<NodeId> = key_nodes
        .iter()
        .enumerate()
        .map(|(idx, &k)| {
            if key.bit(idx) == canonical[idx] {
                Ok(k)
            } else {
                locked.add_gate(format!("lut_inv{idx}"), GateKind::Not, &[k])
            }
        })
        .collect::<Result<_, _>>()?;

    // Build stage 1. The first LUT's selects are [taps…, target] (target
    // last = MSB); later LUTs read taps only.
    let mut tap_iter = taps.into_iter();
    let mut key_off = 0usize;
    let mut stage1_outs = Vec::with_capacity(stage1.len());
    for (li, &w) in stage1.iter().enumerate() {
        let mut selects = Vec::with_capacity(w);
        let fill = if li == 0 { w - 1 } else { w };
        while selects.len() < fill {
            selects.push(tap_iter.next().expect("tap count precomputed"));
        }
        if li == 0 {
            selects.push(target);
        }
        let table = &entries[key_off..key_off + (1 << w)];
        key_off += 1 << w;
        let out = build_mux_tree(&mut locked, &selects, table, &format!("lut{li}"))?;
        stage1_outs.push(out);
    }
    // Stage 2: selects are the stage-1 outputs plus extra taps.
    let mut selects2 = stage1_outs;
    for _ in 0..stage2_extra {
        selects2.push(tap_iter.next().expect("tap count precomputed"));
    }
    let w2 = selects2.len();
    let table2 = &entries[key_off..key_off + (1 << w2)];
    let module_out = build_mux_tree(&mut locked, &selects2, table2, "lut_s2")?;

    // Close the splice: original consumers (reading the buffer) now see the
    // module output.
    locked.replace_fanin(splice_buf, target, module_out)?;

    Ok(LockedCircuit { netlist: locked, key: key.clone() })
}

/// Locks `netlist` by splicing a two-stage LUT module into one wire, with
/// a partially random correct key.
///
/// # Errors
///
/// - [`LockError::AlreadyLocked`] if the netlist already has key inputs.
/// - [`LockError::TooSmall`] if no wire has enough cycle-free tap
///   candidates for the requested module size.
#[deprecated(
    since = "0.2.0",
    note = "use `LutLock::new(stage1, stage2_extra)` with `LockScheme::lock` or `lock_random`"
)]
pub fn lock_lut<R: Rng>(
    netlist: &Netlist,
    config: &LutConfig,
    rng: &mut R,
) -> Result<LockedCircuit, LockError> {
    if config.stage1.is_empty() {
        return Err(LockError::TooSmall { what: "at least one stage-1 lut" });
    }
    // Historical behavior: identity tables with randomized free entries.
    // Sampling the key this way makes it equal to the canonical table, so
    // no reconciling inverters are inserted.
    let total = config.key_bits();
    let mut bits: Vec<bool> = (0..total).map(|_| rng.random_bool(0.5)).collect();
    {
        let w0 = config.stage1[0];
        for (idx, slot) in bits.iter_mut().enumerate().take(1usize << w0) {
            *slot = idx >> (w0 - 1) & 1 == 1;
        }
        let s1_total: usize = config.stage1.iter().map(|w| 1usize << w).sum();
        let w2 = config.stage1.len() + config.stage2_extra;
        for idx in 0..(1usize << w2) {
            bits[s1_total + idx] = idx & 1 == 1;
        }
    }
    lock_lut_with(netlist, &config.stage1, config.stage2_extra, &Key::new(bits), rng)
}

/// Builds a `w`-input LUT as a MUX tree: `selects[j]` is select bit `j`
/// (bit 0 = fastest-varying table index), `table[i]` drives entry `i`.
/// Returns the tree's root node.
fn build_mux_tree(
    nl: &mut Netlist,
    selects: &[NodeId],
    table: &[NodeId],
    prefix: &str,
) -> Result<NodeId, LockError> {
    assert_eq!(table.len(), 1 << selects.len());
    let mut layer: Vec<NodeId> = table.to_vec();
    for (level, &sel) in selects.iter().enumerate() {
        let mut next = Vec::with_capacity(layer.len() / 2);
        for (pair, chunk) in layer.chunks(2).enumerate() {
            // Entries 2i (sel=0) and 2i+1 (sel=1).
            let m = nl.add_gate(
                format!("{prefix}_m{level}_{pair}"),
                GateKind::Mux,
                &[sel, chunk[0], chunk[1]],
            )?;
            next.push(m);
        }
        layer = next;
    }
    debug_assert_eq!(layer.len(), 1);
    Ok(layer[0])
}

#[cfg(test)]
mod tests {
    use super::*;
    use polykey_netlist::{bits_of, Simulator};
    use rand::SeedableRng;

    fn sample() -> Netlist {
        let mut nl = Netlist::new("s");
        let ins: Vec<NodeId> = (0..5).map(|i| nl.add_input(format!("x{i}")).unwrap()).collect();
        let g1 = nl.add_gate("g1", GateKind::And, &[ins[0], ins[1]]).unwrap();
        let g2 = nl.add_gate("g2", GateKind::Or, &[g1, ins[2]]).unwrap();
        let g3 = nl.add_gate("g3", GateKind::Xor, &[ins[3], ins[4]]).unwrap();
        let g4 = nl.add_gate("g4", GateKind::Nand, &[g2, g3]).unwrap();
        let g5 = nl.add_gate("g5", GateKind::Nor, &[g2, g4]).unwrap();
        nl.mark_output(g4).unwrap();
        nl.mark_output(g5).unwrap();
        nl
    }

    #[test]
    fn config_arithmetic() {
        let paper = LutLock::paper();
        assert_eq!(paper.key_bits(), 64 + 64 + 16);
        assert_eq!(paper.module_inputs(), 14);
        let small = LutLock::small();
        assert_eq!(small.key_bits(), 24);
        assert_eq!(small.module_inputs(), 7);
        // The legacy config mirrors the scheme arithmetic.
        assert_eq!(LutConfig::paper().key_bits(), paper.key_bits());
        assert_eq!(LutConfig::small().module_inputs(), small.module_inputs());
    }

    #[test]
    fn correct_key_unlocks() {
        let nl = sample();
        let scheme = LutLock::new(vec![2, 2], 0).with_seed(3);
        let key = Key::random(scheme.key_bits(), &mut rand::rngs::StdRng::seed_from_u64(9));
        let locked = scheme.lock(&nl, &key).unwrap();
        assert_eq!(locked.netlist.key_inputs().len(), scheme.key_bits());
        locked.netlist.validate().unwrap();

        let mut orig = Simulator::new(&nl).unwrap();
        let mut lsim = Simulator::new(&locked.netlist).unwrap();
        for v in 0..32u64 {
            let bits = bits_of(v, 5);
            assert_eq!(
                lsim.eval(&bits, locked.key.bits()),
                orig.eval(&bits, &[]),
                "pattern {v:05b}"
            );
        }
    }

    #[test]
    fn random_wrong_keys_usually_corrupt() {
        let nl = sample();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let scheme = LutLock::new(vec![2, 2], 0).with_seed(3);
        let locked = scheme.lock_random(&nl, &mut rng).unwrap();
        let mut orig = Simulator::new(&nl).unwrap();
        let mut lsim = Simulator::new(&locked.netlist).unwrap();
        let mut corrupting = 0;
        for _ in 0..20u64 {
            let key = Key::random(scheme.key_bits(), &mut rng);
            let wrong = (0..32u64).any(|v| {
                let bits = bits_of(v, 5);
                lsim.eval(&bits, key.bits()) != orig.eval(&bits, &[])
            });
            if wrong {
                corrupting += 1;
            }
        }
        assert!(corrupting >= 10, "most random keys corrupt, got {corrupting}/20");
    }

    #[test]
    fn several_seeds_choose_valid_splices() {
        let nl = sample();
        for seed in 0..10 {
            let scheme = LutLock::new(vec![2], 1).with_seed(seed);
            let key = Key::from_u64(seed.wrapping_mul(0x9E37) & 0x3F, scheme.key_bits());
            let locked = scheme.lock(&nl, &key).unwrap();
            locked.netlist.validate().unwrap();
            let mut orig = Simulator::new(&nl).unwrap();
            let mut lsim = Simulator::new(&locked.netlist).unwrap();
            for v in 0..32u64 {
                let bits = bits_of(v, 5);
                assert_eq!(
                    lsim.eval(&bits, locked.key.bits()),
                    orig.eval(&bits, &[]),
                    "seed {seed} pattern {v:05b}"
                );
            }
        }
    }

    #[test]
    fn too_large_module_rejected() {
        let nl = sample();
        let scheme = LutLock::paper();
        let key = Key::new(vec![false; scheme.key_bits()]);
        assert!(matches!(scheme.lock(&nl, &key), Err(LockError::TooSmall { .. })));
    }

    #[test]
    fn key_width_matches_config() {
        let nl = sample();
        let scheme = LutLock::new(vec![3], 1).with_seed(1);
        let key = Key::from_u64(0x5A5A, scheme.key_bits());
        let locked = scheme.lock(&nl, &key).unwrap();
        assert_eq!(locked.key.len(), scheme.key_bits());
        assert_eq!(locked.netlist.key_inputs().len(), scheme.key_bits());
    }

    #[allow(deprecated)]
    mod shims {
        use super::*;

        #[test]
        fn shim_key_has_identity_tables_and_unlocks() {
            let nl = sample();
            let mut rng = rand::rngs::StdRng::seed_from_u64(3);
            let cfg = LutConfig { stage1: vec![2, 2], stage2_extra: 0 };
            let locked = lock_lut(&nl, &cfg, &mut rng).unwrap();
            assert_eq!(locked.key.len(), cfg.key_bits());
            locked.netlist.validate().unwrap();
            // LUT 0 identity on MSB: entries 0,1 false and 2,3 true.
            assert_eq!(
                &locked.key.bits()[..4],
                &[false, false, true, true],
                "canonical stage-1 identity table"
            );
            let mut orig = Simulator::new(&nl).unwrap();
            let mut lsim = Simulator::new(&locked.netlist).unwrap();
            for v in 0..32u64 {
                let bits = bits_of(v, 5);
                assert_eq!(lsim.eval(&bits, locked.key.bits()), orig.eval(&bits, &[]));
            }
        }

        #[test]
        fn shim_rejects_oversized_module() {
            let nl = sample();
            let mut rng = rand::rngs::StdRng::seed_from_u64(0);
            let cfg = LutConfig { stage1: vec![6, 6], stage2_extra: 2 };
            assert!(matches!(lock_lut(&nl, &cfg, &mut rng), Err(LockError::TooSmall { .. })));
        }
    }
}
