//! Offline stand-in for the `criterion` crate.
//!
//! A minimal benchmarking harness implementing the API subset the suite's
//! benches use (see `crates/compat/README.md`). Each benchmark runs a
//! small fixed number of timed samples and prints the mean and min wall
//! time — no statistics, plots, or baselines. The number of samples set
//! via [`BenchmarkGroup::sample_size`] is capped to keep `cargo bench`
//! cheap in CI.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Upper bound on timed samples per benchmark, regardless of
/// [`BenchmarkGroup::sample_size`].
const MAX_SAMPLES: usize = 10;

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.into(), sample_size: 5 }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let id = id.into();
        run_benchmark(&id.render(), 5, f);
    }
}

/// A named identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { name: Some(name.into()), parameter: Some(parameter.to_string()) }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId { name: None, parameter: Some(parameter.to_string()) }
    }

    fn render(&self) -> String {
        match (&self.name, &self.parameter) {
            (Some(n), Some(p)) => format!("{n}/{p}"),
            (Some(n), None) => n.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::from("bench"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> BenchmarkId {
        BenchmarkId { name: Some(name.to_string()), parameter: None }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> BenchmarkId {
        BenchmarkId { name: Some(name), parameter: None }
    }
}

/// Throughput metadata (accepted and ignored by this stand-in).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A group of related benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples (capped at a small constant here).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Records throughput metadata (ignored by this stand-in).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        run_benchmark(&format!("{}/{}", self.name, id.render()), self.sample_size, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finishes the group (a no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// The per-benchmark timing handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times one sample of `f` (called once per sample by the harness).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        self.samples.push(start.elapsed());
        std::hint::black_box(out);
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let samples = sample_size.clamp(1, MAX_SAMPLES);
    let mut bencher = Bencher::default();
    // Warm-up sample (discarded).
    f(&mut bencher);
    bencher.samples.clear();
    for _ in 0..samples {
        f(&mut bencher);
    }
    if bencher.samples.is_empty() {
        println!("{label}: no samples recorded");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    println!("{label}: mean {mean:?}, min {min:?} over {} samples", bencher.samples.len());
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_counts_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3).throughput(Throughput::Elements(1));
        let mut calls = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 3).render(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("c17").render(), "c17");
        assert_eq!(BenchmarkId::from("plain").render(), "plain");
    }
}
