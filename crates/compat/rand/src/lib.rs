//! Offline stand-in for the `rand` crate.
//!
//! Implements exactly the API subset the polykey suite uses (see
//! `crates/compat/README.md`): an object-safe core [`Rng`] trait, the
//! [`RngExt`] extension with [`RngExt::random_bool`] and
//! [`RngExt::random_range`], [`SeedableRng::seed_from_u64`], and
//! [`rngs::StdRng`] — a xoshiro256\*\* generator seeded via SplitMix64.
//!
//! Everything is deterministic per seed, which is what the suite's
//! reproducible experiments rely on.
//!
//! # Examples
//!
//! ```
//! use rand::{RngExt, SeedableRng};
//!
//! let mut a = rand::rngs::StdRng::seed_from_u64(7);
//! let mut b = rand::rngs::StdRng::seed_from_u64(7);
//! assert_eq!(a.random_range(0..100u32), b.random_range(0..100u32));
//! let x = a.random_range(10..20usize);
//! assert!((10..20).contains(&x));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The object-safe core of a random-number generator: a stream of `u64`s.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of [`Rng::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Derived sampling methods, available on every [`Rng`].
pub trait RngExt: Rng {
    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, B: SampleRange<T>>(&mut self, range: B) -> T {
        range.sample(&mut || self.next_u64())
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Generators constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator deterministically from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Maps 64 random bits to a `f64` in `[0, 1)` (53-bit resolution).
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform integer in `[0, span)` by rejection sampling (no modulo bias).
fn uniform_below(span: u64, next: &mut dyn FnMut() -> u64) -> u64 {
    debug_assert!(span > 0);
    // Accept v < k*span where k = floor(2^64 / span); 2^64 mod span
    // rewritten in u64 arithmetic.
    let rem = ((u64::MAX % span) + 1) % span;
    let zone = u64::MAX - rem;
    loop {
        let v = next();
        if v <= zone {
            return v % span;
        }
    }
}

/// A range that [`RngExt::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the raw `u64` source.
    fn sample(self, next: &mut dyn FnMut() -> u64) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, next: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_below(span, next) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, next: &mut dyn FnMut() -> u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full 64-bit domain.
                    return lo.wrapping_add(next() as $t);
                }
                lo + uniform_below(span, next) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, next: &mut dyn FnMut() -> u64) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + unit_f64(next()) * (self.end - self.start)
    }
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The suite's standard generator: xoshiro256\*\* seeded via SplitMix64.
    ///
    /// Fast, high-quality, and deterministic per seed; not cryptographic.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion of the seed into the full state.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** (Blackman & Vigna).
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = rngs::StdRng::seed_from_u64(42);
        let mut b = rngs::StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = rngs::StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rngs::StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.random_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = r.random_range(0..=5u32);
            assert!(y <= 5);
            let f = r.random_range(-0.0..100.0f64);
            assert!((0.0..100.0).contains(&f));
        }
    }

    #[test]
    fn singleton_ranges() {
        let mut r = rngs::StdRng::seed_from_u64(2);
        assert_eq!(r.random_range(7..8usize), 7);
        assert_eq!(r.random_range(9..=9u64), 9);
    }

    #[test]
    fn bool_probability_extremes() {
        let mut r = rngs::StdRng::seed_from_u64(3);
        assert!((0..64).all(|_| !r.random_bool(0.0)));
        assert!((0..64).all(|_| r.random_bool(1.0)));
        // p = 0.5 should produce both values in 64 draws.
        let draws: Vec<bool> = (0..64).map(|_| r.random_bool(0.5)).collect();
        assert!(draws.iter().any(|&b| b) && draws.iter().any(|&b| !b));
    }

    #[test]
    fn works_through_mut_ref_and_dyn() {
        let mut r = rngs::StdRng::seed_from_u64(4);
        fn take_dyn(rng: &mut dyn Rng) -> u64 {
            rng.random_range(0..10u64)
        }
        let v = take_dyn(&mut r);
        assert!(v < 10);
        let by_ref = &mut r;
        let _ = by_ref.random_bool(0.5);
    }
}
