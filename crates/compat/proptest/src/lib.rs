//! Offline stand-in for the `proptest` crate.
//!
//! Implements the generation-only subset the polykey suite uses (see
//! `crates/compat/README.md`): the [`strategy::Strategy`] trait with
//! `prop_map`, [`any`], range/tuple strategies, [`collection::vec`], the
//! [`proptest!`] macro, and `prop_assert*` / `prop_assume`. There is no
//! shrinking: a failing case panics with the generated inputs' debug
//! output, which (together with the deterministic per-test RNG) is enough
//! to reproduce.
//!
//! # Examples
//!
//! ```
//! use proptest::prelude::*;
//!
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(64))]
//!     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! // (inside a test suite the fn would carry `#[test]` and run itself)
//! addition_commutes();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Test-runner plumbing: configuration, RNG, and case-level errors.
pub mod test_runner {
    /// Configuration for one `proptest!` block.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per test.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!` (not a failure).
        Reject(String),
        /// The case failed a `prop_assert*!`.
        Fail(String),
    }

    /// The deterministic per-test random source (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator seeded from the test name, so every test draws a
        /// reproducible stream independent of sibling tests.
        pub fn deterministic(test_name: &str) -> TestRng {
            // FNV-1a over the name.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A uniform value in `[0, span)`.
        pub fn below(&mut self, span: u64) -> u64 {
            assert!(span > 0);
            let rem = ((u64::MAX % span) + 1) % span;
            let zone = u64::MAX - rem;
            loop {
                let v = self.next_u64();
                if v <= zone {
                    return v % span;
                }
            }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Types with a canonical "any value" strategy (see [`super::any`]).
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_uint!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`super::any`].
    #[derive(Clone, Debug)]
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        return lo.wrapping_add(rng.next_u64() as $t);
                    }
                    lo + rng.below(span) as $t
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
}

/// Returns the canonical strategy for `T` (uniform over the whole domain).
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A length specification for [`vec()`]: a fixed size or a range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    /// The strategy returned by [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` of values drawn from `element`, with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// The strategy type of [`ANY`].
    #[derive(Clone, Copy, Debug)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// A uniform boolean.
    pub const ANY: AnyBool = AnyBool;
}

/// The glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{} ({:?} vs {:?})",
            format!($($fmt)*),
            l,
            r
        );
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {} (both {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "{} (both {:?})", format!($($fmt)*), l);
    }};
}

/// Rejects the current case (it is re-drawn, not counted as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        #[allow(clippy::redundant_closure_call)]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            // Build each strategy once; shadowed bindings stay alive, so
            // every `$arg` holds a reference to its own strategy.
            $(let __strategy = $strat; let $arg = &__strategy;)+
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            while accepted < config.cases {
                $(let $arg = $crate::strategy::Strategy::generate($arg, &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                match outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        assert!(
                            rejected <= config.cases.saturating_mul(16).max(1024),
                            "too many prop_assume rejections in `{}`",
                            stringify!($name)
                        );
                    }
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property `{}` failed on case {}: {}",
                            stringify!($name),
                            accepted,
                            msg
                        );
                    }
                }
            }
        }
    )*};
}
