//! # polykey — the multi-key SAT attack on logic locking
//!
//! A complete Rust reproduction of the DAC 2024 late-breaking paper
//! *"On the One-Key Premise of Logic Locking"* (Hu, Cherupalli, Borza,
//! Sherlekar — Synopsys), including every substrate the paper relies on:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`sat`] | `polykey-sat` | CDCL SAT solver (MiniSat-class), CNF, DIMACS |
//! | [`netlist`] | `polykey-netlist` | gate-level IR, `.bench` I/O, simulation, analysis, re-synthesis passes |
//! | [`encode`] | `polykey-encode` | Tseitin encoding, miters, equivalence checking |
//! | [`locking`] | `polykey-locking` | the [`locking::LockScheme`] trait: RLL, SARLock, Anti-SAT, LUT insertion |
//! | [`circuits`] | `polykey-circuits` | ISCAS'85 stand-ins, arithmetic generators |
//! | [`attack`] | `polykey-attack` | [`attack::AttackSession`]: the SAT attack, Algorithm 1 (multi-key), Fig. 1(b) recombination, key verification |
//!
//! ## The idea, in one example
//!
//! Logic locking is traditionally judged by how hard it is to recover *the*
//! correct key. The paper breaks that premise: split the input space on a
//! few well-chosen ports, attack each sub-space independently (in
//! parallel), and recombine the recovered — individually *incorrect* —
//! keys with a MUX tree into a fully functional design. One builder drives
//! every scenario, and schemes are interchangeable values:
//!
//! ```
//! use polykey::attack::{AttackSession, SimOracle};
//! use polykey::circuits::c17;
//! use polykey::encode::{check_equivalence, EquivResult};
//! use polykey::locking::{Key, LockScheme, Sarlock};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let original = c17();
//! let locked = Sarlock::new(4).lock(&original, &Key::from_u64(9, 4))?;
//!
//! // Algorithm 1 with N = 2: four parallel sub-attacks over one oracle.
//! let mut oracle = SimOracle::new(&original)?;
//! let report = AttackSession::builder()
//!     .oracle(&mut oracle)
//!     .split_effort(2)
//!     .build()?
//!     .run(&locked.netlist)?;
//! assert!(report.is_complete());
//!
//! // Fig. 1(b): the sub-keys collectively restore the design.
//! let unlocked = report.recombine(&locked.netlist)?;
//! assert_eq!(check_equivalence(&original, &unlocked)?, EquivResult::Equivalent);
//! # Ok(())
//! # }
//! ```
//!
//! See `README.md` for the quickstart and crate map, `DESIGN.md` for the
//! system inventory, and `EXPERIMENTS.md` for the paper-vs-measured
//! comparison of every table and figure.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use polykey_attack as attack;
pub use polykey_circuits as circuits;
pub use polykey_encode as encode;
pub use polykey_locking as locking;
pub use polykey_netlist as netlist;
pub use polykey_sat as sat;

/// Compiles and runs every fenced Rust block in `README.md` under
/// `cargo test`, so the README's end-to-end example cannot rot.
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
struct ReadmeDoctests;
