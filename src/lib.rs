//! # polykey — the multi-key SAT attack on logic locking
//!
//! A complete Rust reproduction of the DAC 2024 late-breaking paper
//! *"On the One-Key Premise of Logic Locking"* (Hu, Cherupalli, Borza,
//! Sherlekar — Synopsys), including every substrate the paper relies on:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`sat`] | `polykey-sat` | CDCL SAT solver (MiniSat-class), CNF, DIMACS |
//! | [`netlist`] | `polykey-netlist` | gate-level IR, `.bench` I/O, simulation, analysis, re-synthesis passes |
//! | [`encode`] | `polykey-encode` | Tseitin encoding, miters, equivalence checking |
//! | [`locking`] | `polykey-locking` | RLL, SARLock, Anti-SAT, LUT-based insertion |
//! | [`circuits`] | `polykey-circuits` | ISCAS'85 stand-ins, arithmetic generators |
//! | [`attack`] | `polykey-attack` | the SAT attack, Algorithm 1 (multi-key), Fig. 1(b) recombination, key verification |
//!
//! ## The idea, in one example
//!
//! Logic locking is traditionally judged by how hard it is to recover *the*
//! correct key. The paper breaks that premise: split the input space on a
//! few well-chosen ports, attack each sub-space independently (in
//! parallel), and recombine the recovered — individually *incorrect* —
//! keys with a MUX tree into a fully functional design:
//!
//! ```
//! use polykey::attack::{multi_key_attack, recombine_multikey, MultiKeyConfig};
//! use polykey::circuits::c17;
//! use polykey::encode::{check_equivalence, EquivResult};
//! use polykey::locking::{lock_sarlock_with_key, Key, SarlockConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let original = c17();
//! let locked = lock_sarlock_with_key(&original, &SarlockConfig::new(4), &Key::from_u64(9, 4))?;
//!
//! // Algorithm 1 with N = 2: four parallel sub-attacks.
//! let outcome = multi_key_attack(&locked.netlist, &original, &MultiKeyConfig::with_split_effort(2))?;
//! assert!(outcome.is_complete());
//!
//! // Fig. 1(b): the sub-keys collectively restore the design.
//! let unlocked = recombine_multikey(&locked.netlist, &outcome.split_inputs, &outcome.keys)?;
//! assert_eq!(check_equivalence(&original, &unlocked)?, EquivResult::Equivalent);
//! # Ok(())
//! # }
//! ```
//!
//! See `README.md` for the quickstart, `DESIGN.md` for the system
//! inventory, and `EXPERIMENTS.md` for the paper-vs-measured comparison of
//! every table and figure.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use polykey_attack as attack;
pub use polykey_circuits as circuits;
pub use polykey_encode as encode;
pub use polykey_locking as locking;
pub use polykey_netlist as netlist;
pub use polykey_sat as sat;
